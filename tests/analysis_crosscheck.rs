//! Cross-validation of the two reaching-probability implementations: the
//! empirical windowed measurement and the analytical Markov solve must
//! agree on structured programs, including the real workload suite.

use specmt::analysis::{BasicBlocks, BlockStream, DynCfg, MarkovReach, ReachingAnalysis};
use specmt::trace::Trace;
use specmt::workloads::{Scale, SUITE_NAMES};
use specmt::Bench;

/// On every suite benchmark, for pairs with solid empirical support, the
/// analytical reaching probability tracks the empirical one.
#[test]
fn markov_and_empirical_probabilities_agree_on_the_suite() {
    for name in SUITE_NAMES {
        let bench = Bench::load(name, Scale::Tiny).expect("traces");
        let bbs = BasicBlocks::of(bench.trace().program());
        let stream = BlockStream::new(bench.trace(), &bbs);
        let mut cfg = DynCfg::build(&stream, &bbs);
        cfg.prune_to_coverage(0.9);
        let kept = cfg.kept_blocks();
        let reach = ReachingAnalysis::compute(&stream, &kept);
        let markov = MarkovReach::new(&cfg);

        let mut checked = 0;
        for &i in &kept {
            // Only statistically solid sources.
            if reach.occurrences(i) < 50 {
                continue;
            }
            for &j in &kept {
                let emp = reach.prob(i, j);
                if emp < 0.2 {
                    continue;
                }
                let ana = markov.prob(i, j);
                // A first-order Markov chain cannot capture call/return
                // pairing (the paper's matrix formulation shares this
                // limitation), so recursion-heavy mid-probability pairs
                // diverge; the high-probability pairs that selection acts
                // on must agree tightly.
                let tolerance = if emp >= 0.9 { 0.1 } else { 0.35 };
                assert!(
                    (emp - ana).abs() < tolerance,
                    "{name}: pair ({i},{j}) empirical {emp:.3} vs analytical {ana:.3}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{name}: no well-supported pairs to check");
    }
}

/// On a deterministic nested loop the two distance estimates coincide
/// almost exactly.
#[test]
fn distances_agree_on_a_deterministic_nest() {
    use specmt::isa::{ProgramBuilder, Reg};
    let mut b = ProgramBuilder::new();
    let outer = b.fresh_label("outer");
    let inner = b.fresh_label("inner");
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 50);
    b.bind(outer);
    b.li(Reg::R3, 0);
    b.li(Reg::R4, 6);
    b.bind(inner);
    b.addi(Reg::R5, Reg::R5, 1);
    b.addi(Reg::R3, Reg::R3, 1);
    b.blt(Reg::R3, Reg::R4, inner);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, outer);
    b.halt();
    let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
    let bbs = BasicBlocks::of(trace.program());
    let stream = BlockStream::new(&trace, &bbs);
    let cfg = DynCfg::build(&stream, &bbs);
    let reach = ReachingAnalysis::compute(&stream, &cfg.kept_blocks());
    let markov = MarkovReach::new(&cfg);

    // Outer head block: starts at @2 (li R3).
    let outer_head = bbs.block_of(specmt::isa::Pc(2));
    let (p, d) = markov.pair(outer_head, outer_head);
    let emp_p = reach.prob(outer_head, outer_head);
    let emp_d = reach.avg_distance(outer_head, outer_head);
    assert!((p - emp_p).abs() < 1e-6, "prob {p} vs {emp_p}");
    // One outer iteration: 2 setup + 6 * 3 inner + 2 latch = 22 instructions.
    assert!((emp_d - 22.0).abs() < 1e-9, "empirical distance {emp_d}");
    assert!((d - emp_d).abs() < 0.5, "markov distance {d} vs {emp_d}");
}

/// Pruning must not change analytical probabilities for surviving hot
/// pairs by much (the splice redistributes weight proportionally).
#[test]
fn pruning_preserves_hot_pair_probabilities() {
    let bench = Bench::load("gcc", Scale::Tiny).expect("traces");
    let bbs = BasicBlocks::of(bench.trace().program());
    let stream = BlockStream::new(bench.trace(), &bbs);

    let full_cfg = DynCfg::build(&stream, &bbs);
    let mut pruned_cfg = DynCfg::build(&stream, &bbs);
    pruned_cfg.prune_to_coverage(0.9);

    let full = MarkovReach::new(&full_cfg);
    let pruned = MarkovReach::new(&pruned_cfg);
    let mut checked = 0;
    for &i in &pruned_cfg.kept_blocks() {
        for &j in &pruned_cfg.kept_blocks() {
            let a = full.prob(i, j);
            if a < 0.5 {
                continue;
            }
            let b = pruned.prob(i, j);
            assert!(
                (a - b).abs() < 0.2,
                "pair ({i},{j}): full {a:.3} vs pruned {b:.3}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0);
}
