//! Cross-validation of the reaching-probability implementations: the
//! word-parallel production kernel against its naive scalar reference
//! (which must be *bit-identical*), and the empirical windowed measurement
//! against the analytical Markov solve (which must agree within tolerance)
//! — on structured programs, random programs, and the real workload suite.

use proptest::prelude::*;
use specmt::analysis::{BasicBlocks, BlockStream, DynCfg, MarkovReach, ReachingAnalysis};
use specmt::isa::{ProgramBuilder, Reg};
use specmt::trace::Trace;
use specmt::workloads::{Scale, SUITE_NAMES};
use specmt::Bench;

/// Both reaching implementations expose only integer-derived state, so
/// equality here is exact — down to the f64 divisions coming out equal.
fn assert_reach_identical(a: &ReachingAnalysis, b: &ReachingAnalysis) {
    assert_eq!(a.tracked(), b.tracked());
    for &i in a.tracked() {
        assert_eq!(a.occurrences(i), b.occurrences(i), "occurrences({i})");
        for &j in a.tracked() {
            assert_eq!(a.prob(i, j), b.prob(i, j), "prob({i},{j})");
            assert_eq!(
                a.avg_distance(i, j),
                b.avg_distance(i, j),
                "avg_distance({i},{j})"
            );
        }
    }
    // The candidate-pair extraction (counts included) must agree too.
    assert_eq!(a.pairs(0.0, 0.0), b.pairs(0.0, 0.0));
    assert_eq!(a.pairs(0.95, 32.0), b.pairs(0.95, 32.0));
}

/// On every suite benchmark the word-parallel kernel reproduces the naive
/// reference exactly, both on the full block set and on the pruned set the
/// selector actually uses.
#[test]
fn word_parallel_matches_naive_on_the_suite() {
    for name in SUITE_NAMES {
        let bench = Bench::load(name, Scale::Tiny).expect("traces");
        let bbs = BasicBlocks::of(bench.trace().program());
        let stream = BlockStream::new(bench.trace(), &bbs);

        let all: Vec<u32> = (0..bbs.num_blocks() as u32).collect();
        assert_reach_identical(
            &ReachingAnalysis::compute(&stream, &all),
            &ReachingAnalysis::compute_naive(&stream, &all),
        );

        let mut cfg = DynCfg::build(&stream, &bbs);
        cfg.prune_to_coverage(0.9);
        let kept = cfg.kept_blocks();
        assert_reach_identical(
            &ReachingAnalysis::compute(&stream, &kept),
            &ReachingAnalysis::compute_naive(&stream, &kept),
        );
    }
}

/// A compact random program shape: straight ALU blocks and counted loops,
/// enough to produce varied block streams (including nested repetition)
/// while always terminating.
#[derive(Debug, Clone)]
enum Seg {
    Block(u8),
    Loop { trips: u8, body: u8 },
}

fn build_random_program(segs: &[Seg]) -> specmt::isa::Program {
    let mut b = ProgramBuilder::new();
    for (si, seg) in segs.iter().enumerate() {
        match *seg {
            Seg::Block(len) => {
                for k in 0..len {
                    b.addi(Reg::R1, Reg::R1, i64::from(k) + 1);
                }
            }
            Seg::Loop { trips, body } => {
                let top = b.fresh_label(&format!("l{si}"));
                b.li(Reg::R2, 0);
                b.li(Reg::R3, i64::from(trips));
                b.bind(top);
                for k in 0..body {
                    b.addi(Reg::R1, Reg::R1, i64::from(k) + 1);
                }
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
        }
    }
    b.halt();
    b.build().expect("generated program is structurally valid")
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    prop_oneof![
        (1u8..8).prop_map(Seg::Block),
        (2u8..20, 1u8..6).prop_map(|(trips, body)| Seg::Loop { trips, body }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test: on arbitrary generated programs, tracking either
    /// every block or a random subset, the word-parallel kernel and the
    /// naive reference are bit-identical.
    #[test]
    fn word_parallel_matches_naive_on_random_programs(
        segs in prop::collection::vec(seg_strategy(), 1..12),
        subset_seed in any::<u64>(),
    ) {
        let program = build_random_program(&segs);
        let trace = Trace::generate(program, 200_000).expect("generated programs halt");
        let bbs = BasicBlocks::of(trace.program());
        let stream = BlockStream::new(&trace, &bbs);

        let all: Vec<u32> = (0..bbs.num_blocks() as u32).collect();
        assert_reach_identical(
            &ReachingAnalysis::compute(&stream, &all),
            &ReachingAnalysis::compute_naive(&stream, &all),
        );

        // A pseudo-random (but never empty) subset of tracked blocks.
        let subset: Vec<u32> = all
            .iter()
            .copied()
            .filter(|&b| b == 0 || (subset_seed >> (b % 64)) & 1 == 1)
            .collect();
        assert_reach_identical(
            &ReachingAnalysis::compute(&stream, &subset),
            &ReachingAnalysis::compute_naive(&stream, &subset),
        );
    }
}

/// On every suite benchmark, for pairs with solid empirical support, the
/// analytical reaching probability tracks the empirical one.
#[test]
fn markov_and_empirical_probabilities_agree_on_the_suite() {
    for name in SUITE_NAMES {
        let bench = Bench::load(name, Scale::Tiny).expect("traces");
        let bbs = BasicBlocks::of(bench.trace().program());
        let stream = BlockStream::new(bench.trace(), &bbs);
        let mut cfg = DynCfg::build(&stream, &bbs);
        cfg.prune_to_coverage(0.9);
        let kept = cfg.kept_blocks();
        let reach = ReachingAnalysis::compute(&stream, &kept);
        let markov = MarkovReach::new(&cfg);

        let mut checked = 0;
        for &i in &kept {
            // Only statistically solid sources.
            if reach.occurrences(i) < 50 {
                continue;
            }
            for &j in &kept {
                let emp = reach.prob(i, j);
                if emp < 0.2 {
                    continue;
                }
                let ana = markov.prob(i, j);
                // A first-order Markov chain cannot capture call/return
                // pairing (the paper's matrix formulation shares this
                // limitation), so recursion-heavy mid-probability pairs
                // diverge; the high-probability pairs that selection acts
                // on must agree tightly.
                let tolerance = if emp >= 0.9 { 0.1 } else { 0.35 };
                assert!(
                    (emp - ana).abs() < tolerance,
                    "{name}: pair ({i},{j}) empirical {emp:.3} vs analytical {ana:.3}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{name}: no well-supported pairs to check");
    }
}

/// On a deterministic nested loop the two distance estimates coincide
/// almost exactly.
#[test]
fn distances_agree_on_a_deterministic_nest() {
    use specmt::isa::{ProgramBuilder, Reg};
    let mut b = ProgramBuilder::new();
    let outer = b.fresh_label("outer");
    let inner = b.fresh_label("inner");
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 50);
    b.bind(outer);
    b.li(Reg::R3, 0);
    b.li(Reg::R4, 6);
    b.bind(inner);
    b.addi(Reg::R5, Reg::R5, 1);
    b.addi(Reg::R3, Reg::R3, 1);
    b.blt(Reg::R3, Reg::R4, inner);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, outer);
    b.halt();
    let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
    let bbs = BasicBlocks::of(trace.program());
    let stream = BlockStream::new(&trace, &bbs);
    let cfg = DynCfg::build(&stream, &bbs);
    let reach = ReachingAnalysis::compute(&stream, &cfg.kept_blocks());
    let markov = MarkovReach::new(&cfg);

    // Outer head block: starts at @2 (li R3).
    let outer_head = bbs.block_of(specmt::isa::Pc(2));
    let (p, d) = markov.pair(outer_head, outer_head);
    let emp_p = reach.prob(outer_head, outer_head);
    let emp_d = reach.avg_distance(outer_head, outer_head);
    assert!((p - emp_p).abs() < 1e-6, "prob {p} vs {emp_p}");
    // One outer iteration: 2 setup + 6 * 3 inner + 2 latch = 22 instructions.
    assert!((emp_d - 22.0).abs() < 1e-9, "empirical distance {emp_d}");
    assert!((d - emp_d).abs() < 0.5, "markov distance {d} vs {emp_d}");
}

/// Pruning must not change analytical probabilities for surviving hot
/// pairs by much (the splice redistributes weight proportionally).
#[test]
fn pruning_preserves_hot_pair_probabilities() {
    let bench = Bench::load("gcc", Scale::Tiny).expect("traces");
    let bbs = BasicBlocks::of(bench.trace().program());
    let stream = BlockStream::new(bench.trace(), &bbs);

    let full_cfg = DynCfg::build(&stream, &bbs);
    let mut pruned_cfg = DynCfg::build(&stream, &bbs);
    pruned_cfg.prune_to_coverage(0.9);

    let full = MarkovReach::new(&full_cfg);
    let pruned = MarkovReach::new(&pruned_cfg);
    let mut checked = 0;
    for &i in &pruned_cfg.kept_blocks() {
        for &j in &pruned_cfg.kept_blocks() {
            let a = full.prob(i, j);
            if a < 0.5 {
                continue;
            }
            let b = pruned.prob(i, j);
            assert!(
                (a - b).abs() < 0.2,
                "pair ({i},{j}): full {a:.3} vs pruned {b:.3}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0);
}
