//! Property-based tests for the observability layer: on *arbitrary*
//! generated programs under adversarial spawn tables,
//!
//! * the event stream always audits cleanly and reproduces the run's own
//!   totals (the conservation laws hold off the curated suite too),
//! * the Chrome `trace_event` export is a serde fixed point — serialising,
//!   reparsing and reserialising yields the identical string — and
//! * within every `(pid, tid)` lane of the export, timestamps are monotone
//!   non-decreasing in array order.
//!
//! The program/table strategies mirror `random_program_invariants.rs`:
//! straight-line blocks and counted loops over random ALU/memory ops, with
//! spawn tables drawn from arbitrary program points.

use std::collections::BTreeMap;

use proptest::prelude::*;

use serde_json::Value;
use specmt::isa::{Pc, Program, ProgramBuilder, Reg};
use specmt::obs::{audit, chrome, EventLog};
use specmt::sim::{SimConfig, Simulator};
use specmt::spawn::{PairOrigin, SpawnPair, SpawnTable};
use specmt::trace::Trace;

const DATA: i64 = 0x2_0000;

#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8, u8, u8), // kind, dst, a, b
    Load(u8, u8),  // dst, slot
    Store(u8, u8), // src, slot
}

#[derive(Debug, Clone)]
enum Segment {
    Block(Vec<Op>),
    /// Counted loop: `trips` iterations over the body.
    Loop(u8, Vec<Op>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u8..9, 1u8..9, 1u8..9).prop_map(|(k, d, a, b)| Op::Alu(k, d, a, b)),
        (1u8..9, 0u8..32).prop_map(|(d, s)| Op::Load(d, s)),
        (1u8..9, 0u8..32).prop_map(|(s, slot)| Op::Store(s, slot)),
    ]
}

fn segment_strategy() -> impl Strategy<Value = Segment> {
    prop_oneof![
        prop::collection::vec(op_strategy(), 1..10).prop_map(Segment::Block),
        (2u8..8, prop::collection::vec(op_strategy(), 1..8))
            .prop_map(|(t, body)| Segment::Loop(t, body)),
    ]
}

fn reg(i: u8) -> Reg {
    Reg::new(i).expect("generated registers are in range")
}

fn emit_op(b: &mut ProgramBuilder, op: &Op) {
    use specmt::isa::AluOp;
    let kinds = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And, AluOp::Or];
    match op {
        Op::Alu(k, d, a, x) => {
            b.alu(kinds[*k as usize], reg(*d), reg(*a), reg(*x));
        }
        Op::Load(d, slot) => {
            b.ld(reg(*d), Reg::R26, *slot as i64 * 8);
        }
        Op::Store(s, slot) => {
            b.st(reg(*s), Reg::R26, *slot as i64 * 8);
        }
    }
}

fn build_program(segments: &[Segment]) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R26, DATA);
    for (si, seg) in segments.iter().enumerate() {
        match seg {
            Segment::Block(ops) => {
                for op in ops {
                    emit_op(&mut b, op);
                }
            }
            Segment::Loop(trips, body) => {
                let top = b.fresh_label(&format!("loop{si}"));
                b.li(Reg::R27, 0);
                b.li(Reg::R28, *trips as i64);
                b.bind(top);
                for op in body {
                    emit_op(&mut b, op);
                }
                b.addi(Reg::R27, Reg::R27, 1);
                b.blt(Reg::R27, Reg::R28, top);
            }
        }
    }
    b.halt();
    b.build().expect("generated program is structurally valid")
}

/// Random spawn tables over arbitrary program points.
fn table_strategy(len: usize) -> impl Strategy<Value = SpawnTable> {
    prop::collection::vec((0..len as u32, 0..len as u32, 0.0f64..100.0), 0..8).prop_map(|raw| {
        SpawnTable::from_pairs(
            raw.into_iter()
                .map(|(sp, cqip, score)| SpawnPair {
                    sp: Pc(sp),
                    cqip: Pc(cqip),
                    prob: 1.0,
                    avg_dist: 40.0,
                    score,
                    origin: PairOrigin::Profile,
                })
                .collect(),
        )
    })
}

fn number(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) => u64::try_from(*i).expect("non-negative"),
        other => panic!("`{key}` is not an integer: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn event_streams_audit_and_exports_round_trip(
        segments in prop::collection::vec(segment_strategy(), 1..4),
        seed_table in (0usize..1).prop_flat_map(|_| table_strategy(400)),
        tus in 2usize..9,
    ) {
        let program = build_program(&segments);
        let len = program.len();
        let trace = Trace::generate(program, 50_000).expect("generated programs halt");
        // Clamp generated pcs into the program.
        let table = SpawnTable::from_pairs(
            seed_table
                .iter()
                .map(|p| SpawnPair { sp: Pc(p.sp.0 % len as u32), cqip: Pc(p.cqip.0 % len as u32), ..*p })
                .collect(),
        );

        let mut log = EventLog::new();
        let r = Simulator::with_table(&trace, SimConfig::paper(tus), &table)
            .run_with_sink(&mut log)
            .expect("simulation");

        // Conservation laws hold on arbitrary programs too.
        let report = audit(log.events()).expect("stream is well-formed");
        prop_assert!(report.verify(&r.observed_totals()).is_ok());

        // The Chrome export is a serde fixed point: serialise, reparse,
        // reserialise, compare strings (Value-level equality would mask
        // Int/UInt re-typing introduced by the parser).
        let s = chrome::trace_string(log.events()).expect("serialise");
        let reparsed: Value = serde_json::from_str(&s).expect("the export must reparse");
        let s2 = serde_json::to_string_pretty(&reparsed).expect("reserialise");
        prop_assert_eq!(&s, &s2, "export is not a serde fixed point");

        // Per-(pid, tid) lane, timestamps never go backwards.
        let doc = chrome::trace(log.events());
        let Some(Value::Array(rows)) = doc.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        prop_assert!(!rows.is_empty(), "at least the root thread must appear");
        let mut last: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for row in rows {
            let lane = (number(row, "pid"), number(row, "tid"));
            let ts = number(row, "ts");
            if let Some(prev) = last.insert(lane, ts) {
                prop_assert!(
                    ts >= prev,
                    "lane {:?} went backwards: {} -> {}", lane, prev, ts
                );
            }
        }
    }
}
