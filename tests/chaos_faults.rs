//! Seeded chaos suite: the simulator's hard invariants must survive any
//! valid fault plan on any workload.
//!
//! Every suite workload is run under a storm of randomly-drawn (but fully
//! deterministic) [`FaultPlan`]s. Whatever the injector drops, squashes,
//! corrupts or delays, the simulation must return `Ok` — the engine's own
//! post-run audit enforces the window-partition, commit-completeness and
//! unit-accounting invariants — and the committed stream must equal the
//! sequential trace. The storm runs through `run_with_sink`, so every run
//! additionally streams its lifecycle events and the independent
//! event-stream auditor ([`specmt::obs::audit`]) re-derives and verifies
//! the engine's totals from the events alone. The same seed must also
//! reproduce the same result, bit for bit.

use specmt::obs::{audit, EventLog};
use specmt::predict::ValuePredictorKind;
use specmt::sim::{FaultPlan, RemovalPolicy, SimConfig, Simulator};
use specmt::spawn::{profile_pairs, ProfileConfig, SpawnTable};
use specmt::trace::Trace;
use specmt::workloads::Scale;

/// Plans drawn per workload; 8 workloads x 13 plans = 104 total (>= 100).
const PLANS_PER_WORKLOAD: u64 = 13;

/// splitmix64, used only to derive plan parameters from a master seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A random-but-valid plan: every rate in [0, cap], jitter in 0..=7.
fn random_plan(state: &mut u64) -> FaultPlan {
    FaultPlan {
        seed: mix(state),
        squash_rate: unit(state) * 0.3,
        drop_spawn_rate: unit(state) * 0.3,
        corrupt_value_rate: unit(state) * 0.5,
        cache_jitter: mix(state) % 8,
        remove_pair_rate: unit(state) * 0.1,
    }
}

/// A config that exercises the fault hooks broadly: a realistic predictor
/// (so value corruption has something to corrupt) on odd plans and a
/// removal policy (so forced removals interact with reinstatement) on
/// every third one.
fn config_for(plan_index: u64, plan: FaultPlan) -> SimConfig {
    let mut cfg = SimConfig::paper(8).with_faults(plan);
    if plan_index % 2 == 1 {
        cfg = cfg.with_value_predictor(ValuePredictorKind::Stride);
    }
    if plan_index.is_multiple_of(3) {
        cfg = cfg.with_removal(RemovalPolicy {
            alone_cycles: 50,
            occurrences: 1,
            reinstate_after: Some(500),
            max_companions: 0,
        });
    }
    cfg
}

fn suite_traces() -> Vec<(&'static str, Trace, SpawnTable)> {
    specmt::workloads::suite(Scale::Tiny)
        .into_iter()
        .map(|w| {
            let trace =
                Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
            let table = profile_pairs(&trace, &ProfileConfig::default()).table;
            (w.name, trace, table)
        })
        .collect()
}

#[test]
fn invariants_survive_one_hundred_fault_storms() {
    let mut state = 0x000c_5a05_u64;
    let mut total_plans = 0u64;
    let mut any_fault_fired = false;
    for (name, trace, table) in &suite_traces() {
        for i in 0..PLANS_PER_WORKLOAD {
            let plan = random_plan(&mut state);
            total_plans += 1;
            let cfg = config_for(i, plan);
            let mut log = EventLog::new();
            let r = Simulator::with_table(trace, cfg, table)
                .run_with_sink(&mut log)
                .unwrap_or_else(|e| panic!("{name} under {plan:?}: {e}"));
            assert_eq!(
                r.committed_instructions,
                trace.len() as u64,
                "{name} under {plan:?}: committed stream != sequential trace"
            );
            assert_eq!(
                r.threads_committed + r.threads_squashed,
                r.threads_spawned + 1,
                "{name} under {plan:?}: thread accounting leak"
            );
            // The event stream must independently reproduce those totals.
            let report = audit(log.events())
                .unwrap_or_else(|e| panic!("{name} under {plan:?}: {e}"));
            report
                .verify(&r.observed_totals())
                .unwrap_or_else(|e| panic!("{name} under {plan:?}: {e}"));
            any_fault_fired |= r.fault_dropped_spawns
                + r.fault_forced_squashes
                + r.fault_corrupted_values
                + r.fault_jitter_cycles
                + r.fault_forced_removals
                > 0;
        }
    }
    assert!(total_plans >= 100, "only {total_plans} plans drawn");
    assert!(
        any_fault_fired,
        "no plan injected anything -- the storm is a no-op"
    );
}

#[test]
fn same_seed_reproduces_identical_results() {
    let mut state = 0xdead_beef_u64;
    for (name, trace, table) in &suite_traces() {
        for i in 0..2 {
            let plan = random_plan(&mut state);
            let cfg = config_for(i + 1, plan); // odd index: stride predictor
            let a = Simulator::with_table(trace, cfg.clone(), table)
                .run()
                .expect("simulation");
            let b = Simulator::with_table(trace, cfg, table)
                .run()
                .expect("simulation");
            assert_eq!(a, b, "{name} under {plan:?}: same seed, different result");
        }
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Not an invariant, but a sanity check that the injector actually does
    // something: on a workload with spawns, two disjoint seeds with heavy
    // rates should not produce the same timing.
    let (_, trace, table) = &suite_traces()[0];
    let heavy = |seed| FaultPlan {
        seed,
        squash_rate: 0.25,
        drop_spawn_rate: 0.25,
        cache_jitter: 5,
        ..FaultPlan::default()
    };
    let run = |plan| {
        Simulator::with_table(trace, SimConfig::paper(8).with_faults(plan), table)
            .run()
            .expect("simulation")
    };
    let a = run(heavy(1));
    let b = run(heavy(2));
    assert_ne!((a.cycles, a.fault_jitter_cycles), (b.cycles, b.fault_jitter_cycles));
}

#[test]
fn faultless_plan_changes_nothing() {
    let (_, trace, table) = &suite_traces()[0];
    let plain = Simulator::with_table(trace, SimConfig::paper(8), table)
        .run()
        .expect("simulation");
    let with_inactive = Simulator::with_table(
        trace,
        SimConfig::paper(8).with_faults(FaultPlan::with_seed(7)),
        table,
    )
    .run()
    .expect("simulation");
    assert_eq!(plain, with_inactive);
}

// ---------------------------------------------------------------------------
// Executor-level chaos: the supervised batch pool one level above the
// simulator. Whatever a plan kills, wedges or poisons, every storm must end
// in a returned `BatchReport` — degraded, never a process abort — whose
// per-cell outcomes are accurate, whose completed cells still carry
// bit-identical results, and whose event stream passes the batch
// conservation auditor.
// ---------------------------------------------------------------------------

use std::sync::Arc;
use std::time::Duration;

use specmt::exec::{BatchStatus, CellOutcome, ExecChaosPlan, ExecConfig, Executor, Task};
use specmt::obs::{audit_batch, TaskLog};

/// One simulation task per suite workload, each a pure closure over its
/// `Arc`'d trace and spawn table (re-runnable for retries).
fn sim_cells() -> (Vec<Task<specmt::sim::SimResult>>, Vec<specmt::sim::SimResult>) {
    let mut tasks = Vec::new();
    let mut reference = Vec::new();
    for (name, trace, table) in suite_traces() {
        let trace = Arc::new(trace);
        let table = Arc::new(table);
        reference.push(
            Simulator::with_table(&trace, SimConfig::paper(4), &table)
                .run()
                .expect("reference run"),
        );
        tasks.push(Task::new(name, move || {
            Simulator::with_table(&trace, SimConfig::paper(4), &table)
                .run()
                .expect("storm cell sim")
        }));
    }
    (tasks, reference)
}

/// Run one executor storm and check the universal laws: the batch returns
/// degraded (the pinned faults guarantee at least one casualty), completed
/// cells are bit-identical to the unfaulted reference, and the task-event
/// stream audits cleanly against the report's own totals.
fn check_storm(cfg: ExecConfig, desc: &str) {
    let (tasks, reference) = sim_cells();
    let log = Arc::new(TaskLog::new());
    let out = Executor::new(cfg).with_log(Arc::clone(&log)).run_batch(tasks);
    assert_eq!(out.report.status, BatchStatus::Degraded, "{desc}: expected degradation");
    for (i, value) in out.values.iter().enumerate() {
        match value {
            Some(r) => {
                assert!(out.report.cells[i].outcome.is_ok(), "{desc}: value without Ok outcome");
                assert_eq!(r, &reference[i], "{desc}: chaos changed a completed cell's result");
            }
            None => assert!(
                out.report.cells[i].outcome.is_degraded(),
                "{desc}: missing value without a degraded outcome"
            ),
        }
    }
    let audit = audit_batch(&log.events()).unwrap_or_else(|e| panic!("{desc}: {e}"));
    audit
        .verify(&out.report.totals())
        .unwrap_or_else(|e| panic!("{desc}: {e}"));
}

#[test]
fn executor_storms_degrade_but_never_abort() {
    let mut state = 0xe5ec_c405_u64;
    for storm in 0..12u64 {
        let plan = ExecChaosPlan {
            seed: mix(&mut state),
            poison_rate: unit(&mut state) * 0.3,
            wedge_rate: unit(&mut state) * 0.15,
            kill_worker_rate: unit(&mut state) * 0.4,
            // Pin one poisoned and one wedged cell so every storm is
            // guaranteed to exercise both exhaustion paths.
            poison_cells: vec![mix(&mut state) % 8],
            wedge_cells: vec![mix(&mut state) % 8],
        };
        let cfg = ExecConfig {
            jobs: 1 + (mix(&mut state) % 4) as usize,
            // Generous against the ~5-40ms debug-build cells, so only
            // chaos-wedged attempts time out, never honest work.
            deadline: Some(Duration::from_millis(300)),
            max_retries: (mix(&mut state) % 3) as u32,
            backoff_base: Duration::from_millis(1),
            chaos: Some(plan.clone()),
            ..ExecConfig::default()
        };
        check_storm(cfg, &format!("storm {storm} ({plan:?})"));
    }
}

#[test]
fn repeated_panic_cell_exhausts_with_accurate_accounting() {
    let (tasks, _) = sim_cells();
    let log = Arc::new(TaskLog::new());
    let out = Executor::new(ExecConfig {
        jobs: 2,
        max_retries: 3,
        backoff_base: Duration::from_millis(1),
        chaos: Some(ExecChaosPlan { poison_cells: vec![2], ..ExecChaosPlan::default() }),
        ..ExecConfig::default()
    })
    .with_log(Arc::clone(&log))
    .run_batch(tasks);
    assert_eq!(out.report.status, BatchStatus::Degraded);
    assert!(
        matches!(out.report.cells[2].outcome, CellOutcome::Panicked { attempts: 4, .. }),
        "retries must be exhausted before degrading: {:?}",
        out.report.cells[2].outcome
    );
    assert_eq!(out.report.retries, 3);
    assert_eq!(out.report.errors.len(), 4, "every failed attempt leaves a TaskError");
    assert!(out.report.errors.iter().all(|e| e.cell == 2));
    let audit = audit_batch(&log.events()).expect("stream well-formed");
    audit.verify(&out.report.totals()).expect("conservation laws hold");
}

#[test]
fn delay_past_deadline_times_out_without_poisoning_the_pool() {
    let (tasks, reference) = sim_cells();
    let log = Arc::new(TaskLog::new());
    let out = Executor::new(ExecConfig {
        jobs: 2,
        deadline: Some(Duration::from_millis(400)),
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        chaos: Some(ExecChaosPlan { wedge_cells: vec![0], ..ExecChaosPlan::default() }),
        ..ExecConfig::default()
    })
    .with_log(Arc::clone(&log))
    .run_batch(tasks);
    assert_eq!(out.report.cells[0].outcome, CellOutcome::TimedOut { attempts: 2 });
    assert!(out.report.workers_lost >= 2, "both wedged attempts abandon their worker");
    for (i, want) in reference.iter().enumerate().skip(1) {
        assert_eq!(out.values[i].as_ref(), Some(want));
    }
    let audit = audit_batch(&log.events()).expect("stream well-formed");
    audit.verify(&out.report.totals()).expect("conservation laws hold");
}

#[test]
fn worker_kill_storm_still_completes_every_cell() {
    let (tasks, reference) = sim_cells();
    let n = tasks.len() as u64;
    let log = Arc::new(TaskLog::new());
    let out = Executor::new(ExecConfig {
        jobs: 3,
        chaos: Some(ExecChaosPlan { kill_worker_rate: 1.0, ..ExecChaosPlan::default() }),
        ..ExecConfig::default()
    })
    .with_log(Arc::clone(&log))
    .run_batch(tasks);
    assert_eq!(out.report.status, BatchStatus::Complete);
    assert_eq!(out.report.workers_lost, n, "every attempt takes its worker with it");
    for (i, r) in reference.iter().enumerate() {
        assert_eq!(out.values[i].as_ref(), Some(r));
    }
    let audit = audit_batch(&log.events()).expect("stream well-formed");
    audit.verify(&out.report.totals()).expect("conservation laws hold");
}
