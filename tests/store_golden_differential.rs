//! The store-on/store-off differential, pinned to the committed golden
//! capture: a cold run that *populates* a fresh store and a warm run served
//! *from* that store must both render every figure bit-identically to the
//! store-off capture in `tests/golden/figures_tiny.txt` (the same file
//! `figure_golden.rs` checks against a disabled store). Equality of both
//! passes against the same capture proves store-on ≡ store-off by
//! transitivity, without a third full pipeline pass.
//!
//! The warm pass additionally asserts its store-hit counters cover every
//! namespace with zero misses — i.e. the store really served everything,
//! rather than silently recomputing identical results.

use std::collections::BTreeMap;
use std::fs;
use std::sync::Arc;

use specmt::bench::{figures, Harness};
use specmt::store::{Namespace, Store, StoreConfig, StoreHandle};
use specmt::workloads::Scale;

const GOLDEN: &str = include_str!("golden/figures_tiny.txt");

fn blocks(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for raw in text.split("=== ") {
        if raw.trim().is_empty() {
            continue;
        }
        let id = raw
            .split_whitespace()
            .next()
            .expect("block starts with an id")
            .to_owned();
        out.insert(id, format!("=== {raw}"));
    }
    out
}

fn render_all(store: StoreHandle) -> BTreeMap<String, String> {
    let h = Harness::load_at_with(Scale::Tiny, store).expect("suite loads at tiny scale");
    let figs = figures::all(&h).expect("all figures build");
    figs.iter()
        .map(|f| (f.id.clone(), f.render_block()))
        .collect()
}

fn assert_matches_golden(pass: &str, rendered: &BTreeMap<String, String>) {
    let golden = blocks(GOLDEN);
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        rendered.keys().collect::<Vec<_>>(),
        "{pass}: figure ids must match the golden capture"
    );
    for (id, want) in &golden {
        assert_eq!(
            &rendered[id], want,
            "{pass}: {id} diverged from the golden (store-off) capture"
        );
    }
}

#[test]
fn cold_and_warm_store_runs_match_the_store_off_golden() {
    let dir = std::env::temp_dir().join(format!("specmt-store-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // Cold pass: populates the store while producing golden output.
    let cold_store = Store::open(StoreConfig::at(&dir));
    assert_matches_golden("cold", &render_all(Arc::clone(&cold_store)));
    for ns in [
        Namespace::Trace,
        Namespace::Profile,
        Namespace::SpawnTable,
        Namespace::Analysis,
        Namespace::SimResult,
    ] {
        assert!(cold_store.stores(ns) > 0, "cold pass must populate {ns:?}");
    }

    // Warm pass: a fresh handle over the populated directory must serve
    // every artifact — trace, profile, spawn tables, baselines, simulation
    // results — and still render the identical figures.
    let warm_store = Store::open(StoreConfig::at(&dir));
    assert_matches_golden("warm", &render_all(Arc::clone(&warm_store)));
    for ns in [
        Namespace::Trace,
        Namespace::Profile,
        Namespace::SpawnTable,
        Namespace::Analysis,
        Namespace::SimResult,
    ] {
        assert_eq!(
            warm_store.misses(ns),
            0,
            "warm pass must serve every {ns:?} artifact from the store"
        );
        assert!(warm_store.hits(ns) > 0, "warm pass must hit {ns:?}");
    }
    assert_eq!(
        warm_store.stores(Namespace::SimResult),
        0,
        "a warm pass recomputes no simulation result"
    );

    let _ = fs::remove_dir_all(&dir);
}
