//! Property-based tests for the store's stage keys: over *arbitrary*
//! configurations,
//!
//! * fingerprints are deterministic (same inputs, same 128-bit key),
//! * perturbing any fingerprinted field of a stage input re-keys that
//!   stage, and
//! * stages that do not read the perturbed input keep their keys
//!   bit-for-bit — the invariant that makes invalidation *incremental*
//!   rather than whole-pipeline.
//!
//! The exhaustive one-field-at-a-time sweep lives in
//! `crates/bench/tests/key_sensitivity.rs`; this file drives the same
//! invariant with randomly drawn values and randomly chosen fields.

use proptest::prelude::*;

use specmt::bench::cache;
use specmt::sim::SimConfig;
use specmt::spawn::{OrderCriterion, ProfileConfig, SchemeParams};
use specmt::store::{Fingerprint, KeyBuilder, StageKey};

/// An arbitrary (synthetic) trace-stage key: the root of every chain.
fn trace_key_strategy() -> impl Strategy<Value = StageKey> {
    (any::<u64>(), any::<u64>(), 1u64..1_000_000).prop_map(|(a, b, budget)| {
        KeyBuilder::new("trace")
            .component("program", [a.to_le_bytes(), b.to_le_bytes()].concat().as_slice())
            .component("step-budget", &budget)
            .component("checksum", &(a ^ b))
            .code_rev(1)
            .finish()
    })
}

fn profile_config_strategy() -> impl Strategy<Value = ProfileConfig> {
    (
        (0.0f64..1.0, 1.0f64..512.0, prop::option::of(32.0f64..4096.0), 0.0f64..1.0),
        (0usize..3, any::<bool>(), 1usize..64, 1usize..512),
    )
        .prop_map(
            |((min_prob, min_distance, max_distance, coverage), (crit, rp, samples, window))| {
                ProfileConfig {
                    min_prob,
                    min_distance,
                    max_distance,
                    coverage,
                    criterion: [
                        OrderCriterion::MaxDistance,
                        OrderCriterion::Independent,
                        OrderCriterion::Predictable,
                    ][crit],
                    include_return_pairs: rp,
                    dep_samples: samples,
                    max_score_window: window,
                }
            },
        )
}

fn sim_config_strategy() -> impl Strategy<Value = SimConfig> {
    (1usize..32, 1u32..16, 1u64..64, 1u64..64).prop_map(
        |(units, fetch, init_overhead, squash_penalty)| {
            let mut cfg = SimConfig::paper(units);
            cfg.fetch_width = fetch;
            cfg.init_overhead = init_overhead;
            cfg.squash_penalty = squash_penalty;
            cfg
        },
    )
}

proptest! {
    #[test]
    fn fingerprints_are_deterministic(cfg in profile_config_strategy(), t in trace_key_strategy()) {
        prop_assert_eq!(cfg.digest(), cfg.digest());
        let a = cache::profile_stage(&t, &cfg);
        let b = cache::profile_stage(&t, &cfg);
        prop_assert_eq!(a.key, b.key);
        // The component breakdown is deterministic too (it feeds the
        // invalidation diffs).
        prop_assert_eq!(a.components.len(), b.components.len());
        for (x, y) in a.components.iter().zip(&b.components) {
            prop_assert_eq!(x.name, y.name);
            prop_assert_eq!(x.digest, y.digest);
        }
    }

    #[test]
    fn profile_field_perturbations_rekey_profile_only(
        cfg in profile_config_strategy(),
        t in trace_key_strategy(),
        field in 0usize..8,
    ) {
        let mut other = cfg.clone();
        match field {
            0 => other.min_prob = (other.min_prob + 0.125) % 1.0,
            1 => other.min_distance += 1.0,
            2 => other.max_distance = match other.max_distance {
                Some(d) => Some(d + 1.0),
                None => Some(64.0),
            },
            3 => other.coverage = (other.coverage + 0.125) % 1.0,
            4 => other.criterion = match other.criterion {
                OrderCriterion::MaxDistance => OrderCriterion::Independent,
                OrderCriterion::Independent => OrderCriterion::Predictable,
                OrderCriterion::Predictable => OrderCriterion::MaxDistance,
            },
            5 => other.include_return_pairs = !other.include_return_pairs,
            6 => other.dep_samples += 1,
            _ => other.max_score_window += 1,
        }
        // The perturbed stage re-keys...
        prop_assert!(
            cache::profile_stage(&t, &cfg).key != cache::profile_stage(&t, &other).key,
            "perturbing field {field} did not re-key the profile stage"
        );
        // ...and the stages that do not read ProfileConfig keep their keys.
        prop_assert_eq!(cache::baseline_stage(&t).key, cache::baseline_stage(&t).key);
        let params = SchemeParams::default();
        prop_assert_eq!(
            cache::table_stage(&t, "builtin/heuristics", &params).key,
            cache::table_stage(&t, "builtin/heuristics", &params).key
        );
    }

    #[test]
    fn sim_config_rekeys_simulate_but_not_profile(
        a in sim_config_strategy(),
        b in sim_config_strategy(),
        cfg in profile_config_strategy(),
        t in trace_key_strategy(),
    ) {
        let table = specmt::spawn::SpawnTable::empty();
        let ka = cache::sim_stage(&t, &table, &a);
        let kb = cache::sim_stage(&t, &table, &b);
        // Distinct fingerprints iff distinct keys (no collisions observed,
        // no spurious separations).
        prop_assert_eq!(a.digest() == b.digest(), ka.key == kb.key);
        // The profile stage is independent of either simulator config.
        prop_assert_eq!(
            cache::profile_stage(&t, &cfg).key,
            cache::profile_stage(&t, &cfg).key
        );
    }

    #[test]
    fn distinct_trace_keys_chain_into_distinct_downstream_keys(
        t1 in trace_key_strategy(),
        t2 in trace_key_strategy(),
        cfg in profile_config_strategy(),
    ) {
        if t1.key == t2.key {
            // Colliding synthetic roots carry no information; skip the case.
            return Ok(());
        }
        prop_assert!(
            cache::profile_stage(&t1, &cfg).key != cache::profile_stage(&t2, &cfg).key,
            "distinct trace keys must chain into distinct profile keys"
        );
        prop_assert!(
            cache::baseline_stage(&t1).key != cache::baseline_stage(&t2).key,
            "distinct trace keys must chain into distinct baseline keys"
        );
    }
}
