//! Supervised-executor integration tests over the real harness.
//!
//! The acceptance bar for the executor is determinism under supervision:
//!
//! * an experiment grid run at `--jobs 1` and `--jobs 8` produces
//!   bit-identical `SimResult`s (the executor moves *scheduling*, never
//!   *results*),
//! * a cell re-run after an injected panic or timeout reproduces the
//!   unfaulted first attempt bit-for-bit (proptest over benchmarks,
//!   thread-unit counts and fault kinds),
//! * `BatchReport` round-trips through serde for arbitrary outcome mixes,
//!   and its totals always partition the batch.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use specmt::bench::{ExperimentSpec, Harness, Variant};
use specmt::exec::{
    BatchReport, BatchStatus, CellOutcome, CellReport, ExecConfig, Executor, SkipReason, Task,
};
use specmt::obs::{audit_batch, TaskLog};
use specmt::sim::{SimConfig, SimResult};
use specmt::workloads::Scale;

/// The tiny suite, loaded once for the whole test binary.
fn tiny() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| Harness::load_at(Scale::Tiny).expect("tiny suite loads"))
}

#[test]
fn grid_results_bit_identical_across_jobs() {
    let spec = ExperimentSpec::new(
        SimConfig::paper(4),
        vec![
            Variant::speedup("profile", "profile", vec![]),
            Variant::speedup("heuristics", "heuristics", vec![]),
        ],
    );
    let run_at = |jobs: usize| {
        let mut h = Harness::load_at(Scale::Tiny).expect("tiny suite loads");
        h.exec.jobs = jobs;
        spec.run(&h).expect("grid runs")
    };
    let serial = run_at(1);
    let wide = run_at(8);
    assert_eq!(serial.results, wide.results, "SimResults must not depend on --jobs");
    assert_eq!(serial.values, wide.values);
    assert_eq!(serial.means, wide.means);
}

/// One simulation cell on the supervised executor, with `fault_first`
/// making the first attempt panic or wedge. Returns the batch outcome of
/// the cell plus its (possibly retried) value.
fn run_cell_with_fault(
    bench_ix: usize,
    tus: usize,
    fault_first: Option<&'static str>,
    log: &Arc<TaskLog>,
) -> (CellOutcome, Option<SimResult>) {
    let h = tiny();
    let ctx = Arc::clone(&h.benches[bench_ix % h.benches.len()]);
    let table = Arc::new(ctx.profile.table.clone());
    let cfg = SimConfig::paper(tus);
    let attempts = Arc::new(AtomicU32::new(0));
    let task = Task::new(ctx.bench.name(), move || {
        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
            match fault_first {
                Some("panic") => panic!("injected first-attempt panic"),
                Some("wedge") => std::thread::sleep(Duration::from_millis(800)),
                _ => {}
            }
        }
        ctx.sim(cfg.clone(), &table).expect("tiny sim runs")
    });
    let exec = Executor::new(ExecConfig {
        jobs: 1,
        // Generous against the ~5-40ms debug-build cells: only the
        // injected wedge may time out, never the honest retry.
        deadline: Some(Duration::from_millis(400)),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        ..ExecConfig::default()
    })
    .with_log(Arc::clone(log));
    let mut batch = exec.run_batch(vec![task]);
    (batch.report.cells[0].outcome.clone(), batch.values[0].take())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A cell that faults once (panic or deadline) and is retried must
    /// reproduce the unfaulted run bit-for-bit: supervision may move
    /// *when* a cell runs, never *what* it computes.
    #[test]
    fn rerun_after_fault_is_bit_identical(
        bench_ix in 0usize..8,
        tus in 2usize..6,
        fault in prop_oneof![Just("panic"), Just("wedge")],
    ) {
        let h = tiny();
        let ctx = &h.benches[bench_ix % h.benches.len()];
        let want = ctx
            .sim(SimConfig::paper(tus), &ctx.profile.table)
            .expect("unfaulted reference run");

        let log = Arc::new(TaskLog::new());
        let (outcome, got) = run_cell_with_fault(bench_ix, tus, Some(fault), &log);

        prop_assert_eq!(outcome, CellOutcome::Retried { retries: 1 });
        prop_assert_eq!(got.as_ref(), Some(&want));
        let audit = audit_batch(&log.events()).expect("stream well-formed");
        prop_assert_eq!(audit.completed, 1);
        prop_assert_eq!(audit.retries, 1);
    }
}

fn outcome_strategy() -> impl Strategy<Value = CellOutcome> {
    prop_oneof![
        Just(CellOutcome::Ok),
        (1u32..6).prop_map(|retries| CellOutcome::Retried { retries }),
        (1u32..6).prop_map(|attempts| CellOutcome::TimedOut { attempts }),
        (1u32..6, prop::collection::vec(0x20u8..0x7f, 0..24))
            .prop_map(|(attempts, bytes)| CellOutcome::Panicked {
                attempts,
                // Printable ASCII, so quotes and backslashes exercise the
                // JSON escaping path.
                message: bytes.into_iter().map(char::from).collect(),
            }),
        Just(CellOutcome::Skipped { reason: SkipReason::BudgetExhausted }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `BatchReport` is serde-stable for arbitrary outcome mixes (panic
    /// messages include quotes and backslashes), and its derived totals
    /// always partition the submitted batch.
    #[test]
    fn batch_report_round_trips_and_partitions(
        outcomes in prop::collection::vec(outcome_strategy(), 0..12),
        retries in 0u64..20,
        workers_lost in 0u64..8,
        elapsed_ms in 0u64..100_000,
    ) {
        let degraded = outcomes.iter().any(CellOutcome::is_degraded);
        let report = BatchReport {
            status: if degraded { BatchStatus::Degraded } else { BatchStatus::Complete },
            jobs: 4,
            cells: outcomes
                .iter()
                .enumerate()
                .map(|(i, outcome)| CellReport {
                    label: format!("cell-{i}"),
                    outcome: outcome.clone(),
                })
                .collect(),
            retries,
            workers_lost,
            errors: Vec::new(),
            elapsed_ms,
        };
        let text = serde_json::to_string(&report).expect("serialize");
        let back: BatchReport = serde_json::from_str(&text).expect("deserialize");
        prop_assert_eq!(&back, &report);

        let t = report.totals();
        prop_assert_eq!(t.submitted, outcomes.len() as u64);
        prop_assert_eq!(
            t.completed + t.timed_out + t.panicked + t.skipped,
            t.submitted,
            "outcomes must partition the batch"
        );
        prop_assert_eq!(report.completed() + report.degraded(), t.submitted);
        prop_assert_eq!(report.is_degraded(), degraded);
    }
}

#[test]
fn harness_sweeps_share_executor_supervision() {
    // `run_scheme` goes through the same supervised path as the grids; a
    // jobs=1 and a wide run must agree exactly.
    let narrow = {
        let mut h = Harness::load_at(Scale::Tiny).expect("tiny suite loads");
        h.exec.jobs = 1;
        h.run_scheme(&SimConfig::paper(4), "profile").expect("runs")
    };
    let wide = {
        let mut h = Harness::load_at(Scale::Tiny).expect("tiny suite loads");
        h.exec.jobs = 8;
        h.run_scheme(&SimConfig::paper(4), "profile").expect("runs")
    };
    assert_eq!(narrow, wide);
}
