//! Differential test: observation is free, behaviourally.
//!
//! The observability layer promises that turning metrics/event collection
//! on never changes what the simulator computes — only what it records.
//! This pins that promise two ways, next to `figure_golden.rs` in spirit:
//!
//! * the **full figure registry** (paper figures and extras) at tiny scale
//!   produces bit-identical rendered tables and JSON with observation
//!   forced on via [`Harness::set_observe`], and
//! * every suite workload's raw [`SimResult`] is bit-identical across the
//!   three run modes (plain, `observe = true` with the metrics snapshot
//!   stripped, and `run_with_sink`), including under an active fault plan
//!   whose RNG draws would expose any divergence in the instrumented
//!   paths.

use std::collections::BTreeMap;

use specmt::bench::{figures, Harness};
use specmt::obs::EventLog;
use specmt::predict::ValuePredictorKind;
use specmt::sim::{FaultPlan, SimConfig, SimResult, Simulator};
use specmt::spawn::{profile_pairs, ProfileConfig};
use specmt::store::Store;
use specmt::trace::Trace;
use specmt::workloads::Scale;

/// `(id, rendered block, JSON)` for every attempted figure definition.
fn registry_output(h: &Harness) -> (Vec<String>, Vec<(String, String)>) {
    let defs: Vec<&figures::FigureDef> = figures::registry().iter().collect();
    let outcome = figures::run_defs(h, &defs, false);
    assert!(
        outcome.errors.is_empty(),
        "registry must build cleanly at tiny scale: {:?}",
        outcome.errors.iter().map(|(id, e)| format!("{id}: {e}")).collect::<Vec<_>>()
    );
    let summary = outcome
        .summary
        .iter()
        .map(|v| serde_json::to_string(v).expect("summary entry serialises"))
        .collect();
    let blocks = outcome
        .figures
        .iter()
        .map(|f| (f.id.clone(), f.render_block()))
        .collect();
    (summary, blocks)
}

#[test]
fn figure_registry_is_bit_identical_with_observation_on() {
    // Run against a disabled store so this test neither depends on nor
    // pollutes shared state (same discipline as figure_golden.rs).
    let h = Harness::load_at_with(Scale::Tiny, Store::disabled())
        .expect("suite loads at tiny scale");

    let (summary_off, blocks_off) = registry_output(&h);
    h.set_observe(true);
    let (summary_on, blocks_on) = registry_output(&h);

    assert_eq!(
        blocks_off.len(),
        blocks_on.len(),
        "observation changed the number of figures built"
    );
    for ((id, off), (id_on, on)) in blocks_off.iter().zip(&blocks_on) {
        assert_eq!(id, id_on, "observation reordered the registry");
        assert_eq!(off, on, "{id}: rendered table changed with observation on");
    }
    assert_eq!(
        summary_off, summary_on,
        "figure JSON changed with observation on"
    );
}

/// Strips the metrics snapshot (the one field allowed to differ) and
/// asserts it was actually populated first.
fn stripped(label: &str, mut r: SimResult) -> SimResult {
    assert!(r.metrics.is_some(), "{label}: observe = true produced no metrics snapshot");
    r.metrics = None;
    r
}

#[test]
fn sim_results_are_bit_identical_across_run_modes() {
    // An active plan with every hook hot: any extra or missing RNG draw on
    // the instrumented paths shifts the whole downstream sequence.
    let plan = FaultPlan {
        seed: 0xfeed_f00d,
        squash_rate: 0.15,
        drop_spawn_rate: 0.15,
        corrupt_value_rate: 0.25,
        cache_jitter: 4,
        remove_pair_rate: 0.05,
    };
    let configs: Vec<(&str, SimConfig)> = vec![
        ("paper16", SimConfig::paper(16)),
        (
            "paper8+faults+stride",
            SimConfig::paper(8)
                .with_faults(plan)
                .with_value_predictor(ValuePredictorKind::Stride),
        ),
    ];

    let mut per_workload: BTreeMap<&'static str, u64> = BTreeMap::new();
    for w in specmt::workloads::suite(Scale::Tiny) {
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        let table = profile_pairs(&trace, &ProfileConfig::default()).table;
        for (cfg_name, cfg) in &configs {
            let label = format!("{}/{cfg_name}", w.name);
            let plain = Simulator::with_table(&trace, cfg.clone(), &table)
                .run()
                .expect("plain run");

            let observed = Simulator::with_table(&trace, cfg.clone().with_observe(true), &table)
                .run()
                .expect("observed run");
            assert_eq!(
                plain,
                stripped(&label, observed),
                "{label}: observe = true changed the result"
            );

            let mut log = EventLog::new();
            let sunk = Simulator::with_table(&trace, cfg.clone(), &table)
                .run_with_sink(&mut log)
                .expect("sink run");
            assert_eq!(plain, sunk, "{label}: streaming events changed the result");
            assert!(!log.is_empty(), "{label}: sink run emitted nothing");
            per_workload.insert(w.name, plain.cycles);
        }
    }
    assert_eq!(per_workload.len(), 8, "all suite workloads covered");
}
