//! Property-based tests: the toolkit's invariants must hold on *arbitrary*
//! programs, not just the curated workloads.
//!
//! A proptest strategy generates random-but-always-terminating programs
//! (sequences of straight-line blocks and counted loops over random ALU and
//! memory instructions), then checks:
//!
//! * the emulator halts and the dependence graph is causally ordered,
//! * the block stream tiles the trace and the CFG conserves edge weight,
//! * reaching probabilities are probabilities,
//! * and — the big one — the simulator commits exactly the sequential
//!   trace under *adversarial* spawn tables built from random program
//!   points, with random policies enabled.

use proptest::prelude::*;

use specmt::analysis::{BasicBlocks, BlockStream, DynCfg, ReachingAnalysis};
use specmt::isa::{Pc, Program, ProgramBuilder, Reg};
use specmt::predict::ValuePredictorKind;
use specmt::sim::{RemovalPolicy, SimConfig, Simulator};
use specmt::spawn::{PairOrigin, SpawnPair, SpawnTable};
use specmt::trace::{DepGraph, Trace, NO_PRODUCER};

const DATA: i64 = 0x2_0000;

/// One generated instruction for a loop/block body.
#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8, u8, u8), // kind, dst, a, b
    AluImm(u8, u8, u8, i8),
    Load(u8, u8),  // dst, slot
    Store(u8, u8), // src, slot
}

#[derive(Debug, Clone)]
enum Segment {
    Block(Vec<Op>),
    /// Counted loop: `trips` iterations over the body.
    Loop(u8, Vec<Op>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u8..9, 1u8..9, 1u8..9).prop_map(|(k, d, a, b)| Op::Alu(k, d, a, b)),
        (0u8..6, 1u8..9, 1u8..9, any::<i8>()).prop_map(|(k, d, a, i)| Op::AluImm(k, d, a, i)),
        (1u8..9, 0u8..32).prop_map(|(d, s)| Op::Load(d, s)),
        (1u8..9, 0u8..32).prop_map(|(s, slot)| Op::Store(s, slot)),
    ]
}

fn segment_strategy() -> impl Strategy<Value = Segment> {
    prop_oneof![
        prop::collection::vec(op_strategy(), 1..12).prop_map(Segment::Block),
        (2u8..9, prop::collection::vec(op_strategy(), 1..10))
            .prop_map(|(t, body)| Segment::Loop(t, body)),
    ]
}

fn reg(i: u8) -> Reg {
    Reg::new(i).expect("generated registers are in range")
}

fn emit_op(b: &mut ProgramBuilder, op: &Op) {
    use specmt::isa::AluOp;
    let kinds = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
    ];
    match op {
        Op::Alu(k, d, a, x) => {
            b.alu(kinds[*k as usize], reg(*d), reg(*a), reg(*x));
        }
        Op::AluImm(k, d, a, i) => {
            b.alu_imm(kinds[*k as usize], reg(*d), reg(*a), *i as i64);
        }
        Op::Load(d, slot) => {
            b.ld(reg(*d), Reg::R26, *slot as i64 * 8);
        }
        Op::Store(s, slot) => {
            b.st(reg(*s), Reg::R26, *slot as i64 * 8);
        }
    }
}

/// Lowers the generated segments to a program that always halts.
fn build_program(segments: &[Segment]) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R26, DATA);
    for (si, seg) in segments.iter().enumerate() {
        match seg {
            Segment::Block(ops) => {
                for op in ops {
                    emit_op(&mut b, op);
                }
            }
            Segment::Loop(trips, body) => {
                let top = b.fresh_label(&format!("loop{si}"));
                b.li(Reg::R27, 0);
                b.li(Reg::R28, *trips as i64);
                b.bind(top);
                for op in body {
                    emit_op(&mut b, op);
                }
                b.addi(Reg::R27, Reg::R27, 1);
                b.blt(Reg::R27, Reg::R28, top);
            }
        }
    }
    b.halt();
    b.build().expect("generated program is structurally valid")
}

/// Random spawn tables over arbitrary program points — far more hostile
/// than anything the selectors produce.
fn table_strategy(len: usize) -> impl Strategy<Value = SpawnTable> {
    prop::collection::vec((0..len as u32, 0..len as u32, 0.0f64..100.0), 0..8).prop_map(|raw| {
        SpawnTable::from_pairs(
            raw.into_iter()
                .map(|(sp, cqip, score)| SpawnPair {
                    sp: Pc(sp),
                    cqip: Pc(cqip),
                    prob: 1.0,
                    avg_dist: 40.0,
                    score,
                    origin: PairOrigin::Profile,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn emulator_and_dependences_are_causal(segments in prop::collection::vec(segment_strategy(), 1..5)) {
        let program = build_program(&segments);
        let trace = Trace::generate(program, 50_000).expect("generated programs halt");
        prop_assert!(trace.len() >= 2);
        let deps = DepGraph::build(&trace);
        for k in 0..trace.len() {
            for s in 0..2 {
                let p = deps.reg_producer(k, s);
                if p != NO_PRODUCER {
                    prop_assert!((p as usize) < k, "producer after consumer");
                }
            }
            let m = deps.mem_producer(k);
            if m != NO_PRODUCER {
                prop_assert!((m as usize) < k);
                prop_assert!(trace.inst(m as usize).is_store());
                prop_assert_eq!(trace.record(m as usize).unwrap().addr, trace.record(k).unwrap().addr);
            }
        }
    }

    #[test]
    fn analysis_invariants_hold(segments in prop::collection::vec(segment_strategy(), 1..5), coverage in 0.5f64..1.0) {
        let program = build_program(&segments);
        let trace = Trace::generate(program, 50_000).expect("halts");
        let bbs = BasicBlocks::of(trace.program());
        let stream = BlockStream::new(&trace, &bbs);
        // Events tile the trace.
        let total: u64 = stream.events().iter().map(|e| e.len as u64).sum();
        prop_assert_eq!(total, trace.len() as u64);
        // Pruning conserves (never creates) edge weight.
        let mut cfg = DynCfg::build(&stream, &bbs);
        let summary = cfg.prune_to_coverage(coverage);
        prop_assert!(summary.coverage >= coverage - 1e-9 || summary.pruned == 0);
        prop_assert!(cfg.check_weight_sanity(1e-6));
        // Reaching probabilities are probabilities.
        let reach = ReachingAnalysis::compute(&stream, &cfg.kept_blocks());
        for &i in reach.tracked() {
            for &j in reach.tracked() {
                let p = reach.prob(i, j);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
                prop_assert!(reach.avg_distance(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn simulator_commits_the_trace_under_adversarial_tables(
        segments in prop::collection::vec(segment_strategy(), 1..5),
        seed_table in (0usize..1).prop_flat_map(|_| table_strategy(400)),
        tus in 1usize..9,
        removal in proptest::bool::ANY,
        reassign in proptest::bool::ANY,
        min_size in proptest::option::of(8u32..64),
        predictor in prop_oneof![
            Just(ValuePredictorKind::Perfect),
            Just(ValuePredictorKind::Stride),
            Just(ValuePredictorKind::None),
        ],
    ) {
        let program = build_program(&segments);
        let len = program.len();
        let trace = Trace::generate(program, 50_000).expect("halts");
        // Clamp generated pcs into the program.
        let table = SpawnTable::from_pairs(
            seed_table
                .iter()
                .map(|p| SpawnPair {
                    sp: Pc(p.sp.0 % len as u32),
                    cqip: Pc(p.cqip.0 % len as u32),
                    ..*p
                })
                .collect(),
        );
        let mut cfg = SimConfig::paper(tus).with_value_predictor(predictor);
        if removal {
            cfg = cfg.with_removal(RemovalPolicy { alone_cycles: 20, occurrences: 2, reinstate_after: None, max_companions: 0 });
        }
        cfg.reassign = reassign;
        cfg.min_observed_size = min_size;
        let r = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        prop_assert_eq!(r.committed_instructions, trace.len() as u64);
        prop_assert!(r.cycles > 0);
        // Sequential semantics imply the cycle count is at least the
        // depth-bound of the fetch stage.
        prop_assert!(r.cycles as usize >= trace.len() / (4 * tus.max(1)) / 2);
    }
}
