//! End-to-end integration tests across all crates: the complete paper
//! pipeline (workload → trace → profile → spawn table → simulation) on
//! every benchmark of the synthetic suite.

use specmt::isa::Reg;
use specmt::predict::ValuePredictorKind;
use specmt::sim::{RemovalPolicy, SimConfig, Simulator};
use specmt::spawn::{HeuristicSet, PairOrigin, ProfileConfig};
use specmt::workloads::{Scale, SUITE_NAMES};
use specmt::Bench;

/// Every workload's emulated checksum must match its Rust reference — the
/// emulator and the workload generators validate each other.
#[test]
fn all_workload_checksums_match_references() {
    for bench in Bench::suite(Scale::Tiny).expect("suite traces") {
        assert_eq!(
            bench.trace().final_reg(Reg::R10),
            bench.workload().expected_checksum,
            "{} checksum mismatch",
            bench.name()
        );
    }
}

/// Profile-selected pairs respect the configured thresholds on every
/// benchmark.
#[test]
fn selected_pairs_respect_thresholds() {
    let config = ProfileConfig::default();
    for bench in Bench::suite(Scale::Small).expect("suite traces") {
        let result = bench.profile_table(&config);
        for pair in result.table.iter() {
            assert!(
                (0.0..=1.0).contains(&pair.prob),
                "{}: prob {} out of range",
                bench.name(),
                pair.prob
            );
            match pair.origin {
                PairOrigin::Profile => {
                    assert!(
                        pair.prob >= config.min_prob,
                        "{}: pair {}->{} prob {}",
                        bench.name(),
                        pair.sp,
                        pair.cqip,
                        pair.prob
                    );
                    assert!(pair.avg_dist >= config.min_distance);
                    if let Some(max) = config.max_distance {
                        assert!(pair.avg_dist <= max);
                    }
                }
                PairOrigin::ReturnPair => {
                    assert!(pair.avg_dist >= config.min_distance);
                    assert_eq!(pair.cqip, pair.sp.next(), "return point follows the call");
                }
                _ => panic!("profile selection produced a heuristic pair"),
            }
        }
    }
}

/// The core correctness invariant: however aggressive the speculation
/// policies, every simulation commits exactly the sequential trace.
#[test]
fn committed_instructions_always_equal_the_trace() {
    for bench in Bench::suite(Scale::Tiny).expect("suite traces") {
        let profile = bench.profile_table(&ProfileConfig::default());
        let heur = bench.heuristic_table(HeuristicSet::all());
        let configs = vec![
            SimConfig::single_threaded(),
            SimConfig::paper(4),
            SimConfig::paper(16),
            SimConfig::paper(16).with_value_predictor(ValuePredictorKind::Stride),
            SimConfig::paper(16).with_value_predictor(ValuePredictorKind::None),
            SimConfig::paper(8)
                .with_removal(RemovalPolicy::aggressive())
                .with_init_overhead(8),
            {
                let mut c = SimConfig::paper(8);
                c.min_observed_size = Some(32);
                c.reassign = true;
                c
            },
        ];
        for cfg in configs {
            for table in [&profile.table, &heur] {
                let r = bench.run(cfg.clone(), table).expect("simulation");
                assert_eq!(
                    r.committed_instructions,
                    bench.trace().len() as u64,
                    "{} under {:?}",
                    bench.name(),
                    cfg
                );
                assert!(r.cycles > 0);
            }
        }
    }
}

/// Speculation with the profile policy never loses to the sequential
/// baseline under ideal assumptions on this suite.
#[test]
fn ideal_speculation_is_never_slower() {
    for bench in Bench::suite(Scale::Small).expect("suite traces") {
        let profile = bench.profile_table(&ProfileConfig::default());
        let r = bench.run(SimConfig::paper(16), &profile.table).expect("simulation");
        let speedup = bench.speedup(&r).expect("baseline simulation");
        assert!(
            speedup >= 0.99,
            "{}: ideal speculative run slower than baseline ({speedup:.2})",
            bench.name()
        );
    }
}

/// An empty spawn table behaves exactly like the single-threaded baseline,
/// whatever the unit count.
#[test]
fn no_pairs_means_single_threaded_timing() {
    let bench = Bench::load("go", Scale::Tiny).expect("traces");
    let base = Simulator::new(bench.trace(), SimConfig::single_threaded())
        .run()
        .expect("simulation");
    for tus in [2usize, 4, 16] {
        let r = Simulator::new(bench.trace(), SimConfig::paper(tus))
            .run()
            .expect("simulation");
        assert_eq!(r.cycles, base.cycles);
        assert_eq!(r.threads_committed, 1);
    }
}

/// Perfect value prediction dominates the stride predictor, which dominates
/// no prediction, across the suite (ideal information can only help).
#[test]
fn value_prediction_quality_orders_speedups() {
    for name in ["ijpeg", "li", "compress"] {
        let bench = Bench::load(name, Scale::Small).expect("traces");
        let table = bench.profile_table(&ProfileConfig::default()).table;
        let cycles = |kind| {
            bench
                .run(SimConfig::paper(8).with_value_predictor(kind), &table)
                .expect("simulation")
                .cycles
        };
        let perfect = cycles(ValuePredictorKind::Perfect);
        let stride = cycles(ValuePredictorKind::Stride);
        let none = cycles(ValuePredictorKind::None);
        assert!(
            perfect <= stride,
            "{name}: perfect {perfect} > stride {stride}"
        );
        assert!(
            stride <= none + none / 10,
            "{name}: stride {stride} much worse than none {none}"
        );
    }
}

/// The figure harness runs end to end at tiny scale.
#[test]
fn suite_names_are_loadable() {
    for name in SUITE_NAMES {
        let bench = Bench::load(name, Scale::Tiny).expect("traces");
        assert_eq!(bench.name(), name);
        assert!(bench.trace().len() > 1_000, "{name} trace too short");
    }
}

/// Thread-unit scaling is monotone (more units never hurt) for the regular
/// benchmark under ideal assumptions.
#[test]
fn unit_scaling_is_monotone_for_ijpeg() {
    let bench = Bench::load("ijpeg", Scale::Small).expect("traces");
    let table = bench.profile_table(&ProfileConfig::default()).table;
    let mut last = u64::MAX;
    for tus in [1usize, 2, 4, 8, 16] {
        let r = bench.run(SimConfig::paper(tus), &table).expect("simulation");
        assert!(
            r.cycles <= last,
            "ijpeg slowed down going to {tus} units: {} > {last}",
            r.cycles
        );
        last = r.cycles;
    }
}
