//! Window-boundary edge cases for the batched pass-per-section engine.
//!
//! The windowed pipeline (DESIGN §16) claims bit-identity with the
//! instruction-at-a-time reference path *at every batch size*, including
//! the degenerate ones where every pathology lands on a seam:
//!
//! * batches smaller than the fetch width (1–3 slots against a 4-wide
//!   front end), where fetch-cycle state must carry across every seam,
//! * a squash/restart (memory-order violation) landing on the last slot
//!   of a batch, with the restart redirect crossing into the next batch,
//! * spawn gates (confidence / scoreboard) firing mid-window, where the
//!   gate must read adaptive state that batching could have staled,
//! * fault plans injecting at window seams (fault windows drain through
//!   the scalar path; the handoff must not disturb RNG draw order).
//!
//! `Simulator::with_batch_slots` forces the pipeline on at the given batch
//! size with no short-stretch scalar fallback, so every seam the dispatch
//! would normally avoid is exercised deliberately. A proptest sweep then
//! drives random programs and adversarial spawn tables through random
//! batch sizes against the reference.

use proptest::prelude::*;

use specmt::isa::{Pc, ProgramBuilder, Reg};
use specmt::predict::ValuePredictorKind;
use specmt::sim::{FaultPlan, RemovalPolicy, SimConfig, SimResult, Simulator};
use specmt::spawn::{
    PairOrigin, SchemeParams, SchemeRegistry, SpawnPair, SpawnTable, BUILTIN_SCHEME_NAMES,
};
use specmt::trace::Trace;
use specmt::workloads::Scale;

/// Forced-pipeline run at `batch` slots vs the scalar reference.
fn diff(
    label: &str,
    trace: &Trace,
    cfg: &SimConfig,
    table: &SpawnTable,
    batch: usize,
) -> SimResult {
    let windowed = Simulator::with_table(trace, cfg.clone(), table)
        .with_batch_slots(batch)
        .run()
        .unwrap_or_else(|e| panic!("{label}[batch={batch}]: windowed run failed: {e}"));
    let reference = Simulator::with_table(trace, cfg.clone(), table)
        .run_reference()
        .unwrap_or_else(|e| panic!("{label}[batch={batch}]: reference run failed: {e}"));
    assert_eq!(
        windowed, reference,
        "{label}: batch={batch} diverges from the reference path"
    );
    reference
}

/// Batches of 1–3 slots against the paper machine's 4-wide fetch: every
/// window is smaller than the fetch width, so partially-consumed fetch
/// cycles cross every seam. 256 is the production size for contrast.
#[test]
fn batches_smaller_than_fetch_width_are_bit_identical() {
    let registry = SchemeRegistry::builtin();
    let params = SchemeParams::default();
    for w in specmt::workloads::suite(Scale::Tiny) {
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        let table = registry.select("profile", &trace, &params).expect("profile selects");
        for batch in [1usize, 2, 3, 7, 256] {
            diff(w.name, &trace, &SimConfig::paper(16), &table, batch);
        }
    }
}

/// A two-thread program whose speculative thread's load races a store in
/// the parent: sweeping the batch size walks the violating load across
/// every batch position, including the last slot of a batch, where the
/// squash's restart state must survive the seam into the next batch.
#[test]
fn violation_squash_on_every_batch_position_is_bit_identical() {
    use specmt::isa::AluOp;
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    b.li(Reg::R14, 0x10000);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 24);
    b.bind(top);
    b.shli(Reg::R3, Reg::R1, 3);
    b.add(Reg::R3, Reg::R14, Reg::R3);
    b.ld(Reg::R4, Reg::R3, 0); // early: reads the slot the PREVIOUS iteration stores
    b.add(Reg::R5, Reg::R5, Reg::R4);
    b.alu(AluOp::Mul, Reg::R6, Reg::R6, Reg::R2); // serial mul chain delays...
    b.alu(AluOp::Mul, Reg::R6, Reg::R6, Reg::R2);
    b.alu(AluOp::Mul, Reg::R6, Reg::R6, Reg::R2);
    b.st(Reg::R6, Reg::R3, 8); // ...the store to the NEXT iteration's slot
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    let trace = Trace::generate(b.build().expect("program builds"), 10_000).expect("traces");

    // One spawn pair per loop iteration: the child starts at the next
    // iteration's top, its early load racing the parent's late store.
    let (sp, cqip) = (Pc(3), Pc(3));
    let table = SpawnTable::from_pairs(vec![SpawnPair {
        sp,
        cqip,
        prob: 1.0,
        avg_dist: 7.0,
        score: 10.0,
        origin: PairOrigin::Profile,
    }]);

    let mut any_violation = 0u64;
    for batch in 1..=9usize {
        let r = diff("violation-sweep", &trace, &SimConfig::paper(4), &table, batch);
        any_violation += r.violations;
    }
    assert!(any_violation > 0, "the racing pair never violated; the sweep is vacuous");
}

/// Adaptive schemes gate spawns mid-window from state (confidence
/// registers, the pair scoreboard) that scalar draining keeps exact;
/// forcing the pipeline must bail those spawn slots out without staling
/// the gate's reads, at any batch size.
#[test]
fn adaptive_gates_mid_window_are_bit_identical() {
    let registry = SchemeRegistry::builtin();
    let params = SchemeParams::default();
    let mut policies = SimConfig::paper(8).with_value_predictor(ValuePredictorKind::Stride);
    policies.min_observed_size = Some(16);
    let mut any_gated = 0u64;
    for w in specmt::workloads::suite(Scale::Tiny) {
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        for scheme in ["conf-gated", "scoreboard"] {
            let table = registry.select(scheme, &trace, &params).expect("scheme selects");
            for batch in [1usize, 5, 64] {
                let label = format!("{}/{scheme}", w.name);
                let r = diff(&label, &trace, &policies, &table, batch);
                any_gated += r.spawns_gated + r.pairs_demoted;
            }
        }
    }
    assert!(any_gated > 0, "no adaptive gate ever fired; mid-window coverage is vacuous");
}

/// Fault plans draw RNG per instruction, so fault windows route through
/// the scalar path even when batching is forced; the handoff at the seam
/// must leave the draw order — and so every downstream decision —
/// untouched.
#[test]
fn fault_plans_at_window_seams_are_bit_identical() {
    let plan = FaultPlan {
        seed: 0x5ea_5ea1,
        squash_rate: 0.15,
        drop_spawn_rate: 0.10,
        corrupt_value_rate: 0.25,
        cache_jitter: 2,
        remove_pair_rate: 0.05,
    };
    let registry = SchemeRegistry::builtin();
    let params = SchemeParams::default();
    let cfg = SimConfig::paper(8)
        .with_value_predictor(ValuePredictorKind::Stride)
        .with_removal(RemovalPolicy::relaxed())
        .with_faults(plan);
    let mut any_fault = 0u64;
    for w in specmt::workloads::suite(Scale::Tiny) {
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        for &scheme in BUILTIN_SCHEME_NAMES.iter().take(3) {
            let table = registry.select(scheme, &trace, &params).expect("scheme selects");
            for batch in [1usize, 3, 256] {
                let label = format!("{}/{scheme}/faulted", w.name);
                let r = diff(&label, &trace, &cfg, &table, batch);
                any_fault += r.fault_forced_squashes + r.fault_dropped_spawns;
            }
        }
    }
    assert!(any_fault > 0, "no fault ever landed; seam coverage is vacuous");
}

/// Random straight-line/loop programs with adversarial spawn tables: the
/// production dispatch (`run`) and the forced pipeline at a random batch
/// size must both reproduce the reference exactly. Raw pair coordinates
/// are drawn from a fixed range and wrapped onto the generated program, so
/// shrinking stays meaningful.
fn adversarial_table(raw: &[(u32, u32, f64)], len: usize) -> SpawnTable {
    SpawnTable::from_pairs(
        raw.iter()
            .map(|&(sp, cqip, score)| SpawnPair {
                sp: Pc(sp % len as u32),
                cqip: Pc(cqip % len as u32),
                prob: 1.0,
                avg_dist: 40.0,
                score,
                origin: PairOrigin::Profile,
            })
            .collect(),
    )
}

fn random_program() -> impl Strategy<Value = specmt::isa::Program> {
    prop::collection::vec(
        (2u8..7, prop::collection::vec((0u8..4, 1u8..9, 0u8..24), 1..8)),
        1..4,
    )
    .prop_map(|loops| {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R26, 0x2_0000);
        for (li, (trips, body)) in loops.iter().enumerate() {
            let top = b.fresh_label(&format!("l{li}"));
            b.li(Reg::R27, 0);
            b.li(Reg::R28, i64::from(*trips));
            b.bind(top);
            for &(kind, r, slot) in body {
                let (r, slot) = (Reg::new(r).expect("in range"), i64::from(slot) * 8);
                match kind {
                    0 => b.ld(r, Reg::R26, slot),
                    1 => b.st(r, Reg::R26, slot),
                    2 => b.addi(r, r, 1),
                    _ => b.add(r, r, Reg::R27),
                };
            }
            b.addi(Reg::R27, Reg::R27, 1);
            b.blt(Reg::R27, Reg::R28, top);
        }
        b.halt();
        b.build().expect("generated program is structurally valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_programs_windowed_equals_reference(
        program in random_program(),
        raw_pairs in prop::collection::vec((0u32..256, 0u32..256, 0.0f64..100.0), 0..6),
        batch in 1usize..16,
        units in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let trace = Trace::generate(program, 50_000).expect("generated trace");
        let table = adversarial_table(&raw_pairs, trace.program().len().max(1));
        let cfg = SimConfig::paper(units);

        let reference = Simulator::with_table(&trace, cfg.clone(), &table)
            .run_reference()
            .expect("reference runs");
        let production = Simulator::with_table(&trace, cfg.clone(), &table)
            .run()
            .expect("production runs");
        prop_assert_eq!(&production, &reference, "production dispatch diverged");
        let forced = Simulator::with_table(&trace, cfg, &table)
            .with_batch_slots(batch)
            .run()
            .expect("forced pipeline runs");
        prop_assert_eq!(&forced, &reference, "forced batch={} diverged", batch);
    }
}
