//! The figure pipeline is deterministic end to end: trace generation,
//! pair selection, and the timing model are all integer/f64 computations
//! over seeded synthetic workloads, so every figure's rendered table is
//! reproducible bit for bit. This test pins the full tiny-scale output of
//! every paper figure against a committed golden file, guarding the whole
//! stack — the scheme registry, the `ExperimentSpec` runner, and the
//! figure builders — against silent behavioural drift.
//!
//! The golden file was captured from the pre-registry per-figure binaries,
//! so it also certifies that the consolidated `specmt bench` path
//! reproduces the original binaries' tables exactly.
//!
//! To regenerate after an *intentional* protocol change:
//!
//! ```text
//! cargo run --release -p specmt --bin specmt -- bench all --scale tiny \
//!     > tests/golden/figures_tiny.txt
//! ```
//!
//! (stdout carries only the figure blocks; progress lines go to stderr).

use std::collections::BTreeMap;

use specmt::bench::{figures, Harness};
use specmt::store::Store;
use specmt::workloads::Scale;

const GOLDEN: &str = include_str!("golden/figures_tiny.txt");

/// Splits concatenated `render_block` output into per-figure blocks keyed
/// by id. Order-insensitive so the registry may reorder figures without
/// invalidating the capture.
fn blocks(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for raw in text.split("=== ") {
        if raw.trim().is_empty() {
            continue;
        }
        let id = raw
            .split_whitespace()
            .next()
            .expect("block starts with an id")
            .to_owned();
        out.insert(id, format!("=== {raw}"));
    }
    out
}

#[test]
fn every_paper_figure_matches_golden_output() {
    // Run against a disabled store so this test neither depends on nor
    // pollutes shared state (tests/store_golden_differential.rs covers the
    // store-on path against the same capture).
    let h = Harness::load_at_with(Scale::Tiny, Store::disabled())
        .expect("suite loads at tiny scale");
    let figs = figures::all(&h).expect("all figures build");

    let golden = blocks(GOLDEN);
    let mut rendered = BTreeMap::new();
    for fig in &figs {
        rendered.insert(fig.id.clone(), fig.render_block());
    }

    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        rendered.keys().collect::<Vec<_>>(),
        "figure ids must match the golden capture"
    );
    for (id, want) in &golden {
        let got = &rendered[id];
        assert_eq!(
            got, want,
            "{id} diverged from the golden capture; if intentional, regenerate \
             tests/golden/figures_tiny.txt (see the module docs)"
        );
    }
}

// ---------------------------------------------------------------------------
// The adaptation drift study (Extra group, so `bench all` skips it)
// ---------------------------------------------------------------------------

const ADAPT_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig_adaptation_tiny.txt"
);
const ADAPT_GOLDEN: &str = include_str!("golden/fig_adaptation_tiny.txt");

fn num(v: &serde_json::Value) -> f64 {
    match v {
        serde_json::Value::Float(f) => *f,
        serde_json::Value::Int(i) => *i as f64,
        serde_json::Value::UInt(u) => *u as f64,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// Pins the online-adaptation figure to its own committed capture — its
/// claim (an online scheme recovers a drifted input that static profile
/// pairs mishandle) is exactly the kind of number that must not move
/// silently — and asserts the claim itself from the structured payload.
///
/// To regenerate after an intentional change:
///
/// ```text
/// SPECMT_REGEN_ADAPT_GOLDEN=1 cargo test --release --test figure_golden adaptation
/// ```
#[test]
fn adaptation_figure_matches_golden_and_wins_under_drift() {
    let h = Harness::load_at_with(Scale::Tiny, Store::disabled())
        .expect("suite loads at tiny scale");
    let figs = figures::fig_adaptation(&h).expect("adaptation figure builds");
    let rendered: String = figs.iter().map(|f| f.render_block()).collect();

    if std::env::var_os("SPECMT_REGEN_ADAPT_GOLDEN").is_some() {
        std::fs::write(ADAPT_GOLDEN_PATH, &rendered).expect("golden written");
        panic!("regenerated {ADAPT_GOLDEN_PATH}; rerun without SPECMT_REGEN_ADAPT_GOLDEN");
    }
    assert_eq!(
        rendered, ADAPT_GOLDEN,
        "fig_adaptation diverged from its capture; if intentional, regenerate \
         tests/golden/fig_adaptation_tiny.txt (see the test docs)"
    );

    // The committed capture shows at least one drifted input where an
    // adaptive scheme beats static profile by a real margin (>5 %).
    let json = &figs[0].json;
    let Some(serde_json::Value::Array(rows)) = json.get("rows") else {
        panic!("fig_adaptation json carries a rows array");
    };
    assert!(rows.len() >= 4, "the drift study must cover >= 4 cross-input pairs");
    let wins = rows
        .iter()
        .filter(|row| {
            let profile = num(row.get("profile").expect("profile column"));
            let best = num(row.get("scoreboard").expect("scoreboard column"))
                .max(num(row.get("conf_gated").expect("conf_gated column")));
            best > 1.05 * profile
        })
        .count();
    assert!(wins >= 1, "no adaptive scheme beat static profile on any drifted input");
}
