//! The figure pipeline is deterministic end to end: trace generation,
//! pair selection, and the timing model are all integer/f64 computations
//! over seeded synthetic workloads, so every figure's rendered table is
//! reproducible bit for bit. This test pins the full tiny-scale output of
//! every paper figure against a committed golden file, guarding the whole
//! stack — the scheme registry, the `ExperimentSpec` runner, and the
//! figure builders — against silent behavioural drift.
//!
//! The golden file was captured from the pre-registry per-figure binaries,
//! so it also certifies that the consolidated `specmt bench` path
//! reproduces the original binaries' tables exactly.
//!
//! To regenerate after an *intentional* protocol change:
//!
//! ```text
//! cargo run --release -p specmt --bin specmt -- bench all --scale tiny \
//!     > tests/golden/figures_tiny.txt
//! ```
//!
//! (stdout carries only the figure blocks; progress lines go to stderr).

use std::collections::BTreeMap;

use specmt::bench::{figures, Harness};
use specmt::store::Store;
use specmt::workloads::Scale;

const GOLDEN: &str = include_str!("golden/figures_tiny.txt");

/// Splits concatenated `render_block` output into per-figure blocks keyed
/// by id. Order-insensitive so the registry may reorder figures without
/// invalidating the capture.
fn blocks(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for raw in text.split("=== ") {
        if raw.trim().is_empty() {
            continue;
        }
        let id = raw
            .split_whitespace()
            .next()
            .expect("block starts with an id")
            .to_owned();
        out.insert(id, format!("=== {raw}"));
    }
    out
}

#[test]
fn every_paper_figure_matches_golden_output() {
    // Run against a disabled store so this test neither depends on nor
    // pollutes shared state (tests/store_golden_differential.rs covers the
    // store-on path against the same capture).
    let h = Harness::load_at_with(Scale::Tiny, Store::disabled())
        .expect("suite loads at tiny scale");
    let figs = figures::all(&h).expect("all figures build");

    let golden = blocks(GOLDEN);
    let mut rendered = BTreeMap::new();
    for fig in &figs {
        rendered.insert(fig.id.clone(), fig.render_block());
    }

    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        rendered.keys().collect::<Vec<_>>(),
        "figure ids must match the golden capture"
    );
    for (id, want) in &golden {
        let got = &rendered[id];
        assert_eq!(
            got, want,
            "{id} diverged from the golden capture; if intentional, regenerate \
             tests/golden/figures_tiny.txt (see the module docs)"
        );
    }
}
