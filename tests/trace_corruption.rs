//! Fuzz the two untrusted input surfaces: the binary trace reader and the
//! assembly parser. Whatever bytes arrive, they must return an error —
//! never panic, and never allocate proportionally to a length field an
//! attacker controls rather than to the input itself.

use proptest::prelude::*;

use specmt::isa::{parse_program, ProgramBuilder, Reg};
use specmt::trace::Trace;

/// A small but real trace, serialized.
fn serialized_trace() -> Vec<u8> {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 20);
    b.li(Reg::R3, 0x1000);
    b.bind(top);
    b.st(Reg::R1, Reg::R3, 0);
    b.ld(Reg::R4, Reg::R3, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    let trace = Trace::generate(b.build().expect("program"), 1000).expect("trace");
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize");
    bytes
}

proptest! {
    /// Arbitrary garbage: the reader returns Ok or Err, never panics.
    #[test]
    fn read_from_arbitrary_bytes_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Trace::read_from(&data[..]);
    }

    /// Point mutations of a genuine trace: still no panic, and anything the
    /// reader accepts must satisfy the trace's structural invariant.
    #[test]
    fn read_from_mutated_trace_never_panics(
        flips in prop::collection::vec((any::<u64>(), any::<u8>()), 1..8)
    ) {
        let mut data = serialized_trace();
        for (idx, x) in flips {
            let i = idx as usize % data.len();
            data[i] ^= x;
        }
        if let Ok(trace) = Trace::read_from(&data[..]) {
            trace.validate().expect("accepted trace must be structurally valid");
        }
    }

    /// Truncations at every length: no panic, no bogus success beyond the
    /// container header.
    #[test]
    fn read_from_truncated_trace_never_panics(cut in any::<u64>()) {
        let data = serialized_trace();
        let n = cut as usize % data.len();
        let _ = Trace::read_from(&data[..n]);
    }

    /// Mutated assembly text: the parser errors, it does not panic.
    #[test]
    fn parse_program_never_panics_on_mutated_assembly(
        flips in prop::collection::vec((any::<u64>(), 0u32..0x11_0000), 1..6)
    ) {
        let mut text = String::from(
            "start:\n  li r1, 0\n  li r2, 9\nloop:\n  addi r1, r1, 1\n  blt r1, r2, loop\n  halt\n",
        );
        for (idx, raw) in flips {
            let c = char::from_u32(raw).unwrap_or('\u{fffd}');
            let mut chars: Vec<char> = text.chars().collect();
            let i = idx as usize % chars.len();
            chars[i] = c;
            text = chars.into_iter().collect();
        }
        let _ = parse_program(&text);
    }

    /// Arbitrary text through the parser, for good measure.
    #[test]
    fn parse_program_never_panics_on_arbitrary_text(
        bytes in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_program(&text);
    }
}

/// A crafted header claiming u64::MAX records must be rejected up front —
/// before `Vec::with_capacity` turns the length field into an allocation.
#[test]
fn huge_record_count_is_rejected_without_allocating() {
    let data = serialized_trace();
    // Locate the count field: magic(4) + version(4) + plen(4) + program + count(8).
    let plen = u32::from_le_bytes([data[8], data[9], data[10], data[11]]) as usize;
    let count_at = 12 + plen;
    let mut evil = data.clone();
    evil[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = Trace::read_from(&evil[..]).expect_err("absurd count must not parse");
    assert!(
        err.to_string().contains("count"),
        "unexpected error: {err}"
    );
}
