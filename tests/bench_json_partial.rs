//! Regression test for `specmt bench --json` partial results: a figure
//! definition that fails must not abort the run or silently vanish from
//! the JSON summary — it stays in the summary as an `"error"` entry and
//! every later definition still runs.
//!
//! (The original bug: `bench all --json` built figures through a
//! fail-fast path, so one aborting figure dropped *all* entries — its own
//! and every later one — from the written summary.)

use serde_json::Value;
use specmt::bench::figures::{self, FigureDef, FigureGroup};
use specmt::bench::{Harness, HarnessError};
use specmt::store::Store;
use specmt::workloads::Scale;

fn str_field<'v>(v: &'v Value, key: &str) -> &'v str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("`{key}` is not a string: {other:?}"),
    }
}

#[test]
fn failing_figure_keeps_partial_results_in_the_summary() {
    // Run against a disabled store so this test neither depends on nor
    // pollutes shared state.
    let h = Harness::load_at_with(Scale::Tiny, Store::disabled())
        .expect("suite loads at tiny scale");

    let boom = FigureDef {
        id: "boom",
        summary: "always fails (test-only)",
        group: FigureGroup::Extra,
        build: |_| {
            Err(HarnessError::Scale {
                value: "synthetic failure".to_owned(),
            })
        },
    };
    let fig2 = figures::by_id("fig2").expect("fig2 is registered");
    let fig3 = figures::by_id("fig3").expect("fig3 is registered");
    let outcome = figures::run_defs(&h, &[fig2, &boom, fig3], false);

    // Definitions after the failure still ran.
    let built: Vec<&str> = outcome.figures.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(built, ["fig2", "fig3"], "later figures must still run");

    // The summary covers every *attempted* definition, in order, with the
    // failure recorded rather than omitted.
    assert_eq!(outcome.summary.len(), 3, "one summary entry per attempted figure");
    assert_eq!(str_field(&outcome.summary[0], "id"), "fig2");
    assert_eq!(str_field(&outcome.summary[1], "id"), "boom");
    assert_eq!(str_field(&outcome.summary[2], "id"), "fig3");
    assert!(
        str_field(&outcome.summary[1], "error").contains("synthetic failure"),
        "failed entry must carry the error message"
    );
    for ok in [&outcome.summary[0], &outcome.summary[2]] {
        assert!(ok.get("error").is_none(), "successful entries carry no error field");
        assert!(ok.get("data").is_some(), "successful entries carry their figure data");
    }

    // And the failure is surfaced to the caller so the CLI can still exit
    // non-zero after writing the partial summary.
    assert_eq!(outcome.errors.len(), 1);
    assert_eq!(outcome.errors[0].0, "boom");

    // The document the CLI writes from this summary round-trips with the
    // error entry intact.
    let doc = serde_json::json!({ "scale": "tiny", "figures": outcome.summary.clone() });
    let s = serde_json::to_string(&doc).expect("serialise");
    let back: Value = serde_json::from_str(&s).expect("reparse");
    let Some(Value::Array(entries)) = back.get("figures") else {
        panic!("figures array survives serialisation");
    };
    assert_eq!(entries.len(), 3);
    assert!(entries[1].get("error").is_some());
}
