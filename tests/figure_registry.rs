//! The figure registry must stay complete and honest: every figure of the
//! paper resolves by name, ids are unique, and `specmt bench --list`
//! reports exactly the registry — no stale entries, nothing missing.

use std::process::Command;

use specmt::bench::figures::{self, FigureGroup};

/// Every figure of the paper's §4 evaluation (5 and 7 have two panels, 9
/// and 10 two parts).
const PAPER_FIGURES: [&str; 15] = [
    "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig8", "fig9a", "fig9b",
    "fig10a", "fig10b", "fig11", "fig12",
];

#[test]
fn every_paper_figure_resolves_by_name() {
    for id in PAPER_FIGURES {
        let def = figures::by_id(id).unwrap_or_else(|| panic!("{id} must be registered"));
        assert_eq!(def.id, id);
        assert_eq!(
            def.group,
            FigureGroup::Paper,
            "{id} must be in the paper group"
        );
        assert!(!def.summary.is_empty(), "{id} needs a --list summary");
    }
}

#[test]
fn registry_ids_are_unique_and_paper_group_is_exactly_the_paper() {
    let mut ids: Vec<&str> = figures::registry().iter().map(|d| d.id).collect();
    let total = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), total, "registry ids must be unique");

    let paper: Vec<&str> = figures::registry()
        .iter()
        .filter(|d| d.group == FigureGroup::Paper)
        .map(|d| d.id)
        .collect();
    assert_eq!(paper, PAPER_FIGURES, "paper group must list §4 in order");
}

#[test]
fn unknown_ids_do_not_resolve() {
    for id in ["fig1", "fig13", "all", "", "FIG3"] {
        assert!(figures::by_id(id).is_none(), "{id:?} must not resolve");
    }
}

#[test]
fn bench_list_output_matches_registry_exactly() {
    let out = Command::new(env!("CARGO_BIN_EXE_specmt"))
        .args(["bench", "--list"])
        .output()
        .expect("specmt bench --list runs");
    assert!(
        out.status.success(),
        "--list must exit 0, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let listed: Vec<&str> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_whitespace().next().expect("id column"))
        .collect();
    let registered: Vec<&str> = figures::registry().iter().map(|d| d.id).collect();
    assert_eq!(
        listed, registered,
        "--list must report exactly the registry, in order"
    );
    // Each line also carries the group and the summary.
    for (line, def) in stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .zip(figures::registry())
    {
        let group = match def.group {
            FigureGroup::Paper => "paper",
            FigureGroup::Extra => "extra",
        };
        assert!(
            line.contains(group),
            "line {line:?} must name the {group} group"
        );
        let first_word = def.summary.split_whitespace().next().expect("summary");
        assert!(
            line.contains(first_word),
            "line {line:?} must carry the summary"
        );
    }
}

#[test]
fn bench_rejects_unknown_figures() {
    let out = Command::new(env!("CARGO_BIN_EXE_specmt"))
        .args(["bench", "fig99"])
        .output()
        .expect("specmt bench fig99 runs");
    assert!(!out.status.success(), "unknown figure must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fig99") && stderr.contains("--list"),
        "error must name the id and point at --list, got: {stderr}"
    );
}
