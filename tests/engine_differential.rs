//! Differential suite for the arena/SoA engine core.
//!
//! The engine refactor (flat per-pair runtime tables, CSR spawn-point
//! index, hot/cold thread-unit split, batched cache model) promises
//! *bit-identical* [`SimResult`]s: only the representation of the hot
//! state changed, never what it computes. This suite pins that promise
//! against a golden capture taken from the pre-refactor
//! `BTreeMap`/`HashMap` engine:
//!
//! * every suite workload × every built-in spawning scheme × a grid of
//!   policy configurations (paper machine, removal + minimum-size +
//!   stride prediction + reassign) must reproduce the captured
//!   [`SimResult`] exactly, and
//! * the same holds under seeded fault plans, whose RNG draws would
//!   expose any added, dropped or reordered decision on the spawn and
//!   policy paths.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! SPECMT_REGEN_ENGINE_GOLDEN=1 cargo test --release --test engine_differential
//! ```
//!
//! (The regeneration run rewrites `tests/golden/engine_results_tiny.json`
//! and then fails, so a stale golden can never be committed by accident.)

use std::collections::BTreeMap;

use specmt::sim::{FaultPlan, RemovalPolicy, SimConfig, SimResult, Simulator};
use specmt::spawn::{SchemeParams, SchemeRegistry, SpawnTable, BUILTIN_SCHEME_NAMES};
use specmt::predict::ValuePredictorKind;
use specmt::trace::Trace;
use specmt::workloads::Scale;

// Tests in this workspace run with the package dir (crates/core) as CWD.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/engine_results_tiny.json"
);
const GOLDEN: &str = include_str!("golden/engine_results_tiny.json");

/// The configuration grid: each entry exercises a different set of engine
/// decision paths (spawn conflicts, removal policies, minimum-size
/// sweeps, value prediction, reassignment, fault injection).
fn config_grid() -> Vec<(&'static str, SimConfig)> {
    let fault_a = FaultPlan {
        seed: 0xdead_beef,
        squash_rate: 0.10,
        drop_spawn_rate: 0.10,
        corrupt_value_rate: 0.20,
        cache_jitter: 3,
        remove_pair_rate: 0.02,
    };
    let fault_b = FaultPlan {
        seed: 0x1234_5678,
        squash_rate: 0.02,
        drop_spawn_rate: 0.30,
        corrupt_value_rate: 0.05,
        cache_jitter: 0,
        remove_pair_rate: 0.10,
    };
    let mut policies = SimConfig::paper(8)
        .with_value_predictor(ValuePredictorKind::Stride)
        .with_removal(RemovalPolicy {
            alone_cycles: 50,
            occurrences: 2,
            reinstate_after: Some(500),
            max_companions: 1,
        });
    policies.min_observed_size = Some(16);
    policies.reassign = true;
    vec![
        ("paper16", SimConfig::paper(16)),
        ("paper8-policies", policies),
        (
            "paper8-faultA",
            SimConfig::paper(8)
                .with_value_predictor(ValuePredictorKind::Stride)
                .with_faults(fault_a),
        ),
        (
            "paper4-faultB",
            SimConfig::paper(4)
                .with_removal(RemovalPolicy::relaxed())
                .with_faults(fault_b),
        ),
    ]
}

/// Runs the full grid and returns `label -> SimResult` in a stable order.
fn run_grid() -> BTreeMap<String, SimResult> {
    let registry = SchemeRegistry::builtin();
    let params = SchemeParams::default();
    let configs = config_grid();
    let mut out = BTreeMap::new();
    for w in specmt::workloads::suite(Scale::Tiny) {
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        let tables: Vec<(&str, SpawnTable)> = BUILTIN_SCHEME_NAMES
            .iter()
            .map(|&name| {
                (
                    name,
                    registry.select(name, &trace, &params).expect("scheme selects"),
                )
            })
            .collect();
        for (scheme, table) in &tables {
            for (cfg_name, cfg) in &configs {
                let label = format!("{}/{scheme}/{cfg_name}", w.name);
                let r = Simulator::with_table(&trace, cfg.clone(), table)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                out.insert(label, r);
            }
        }
    }
    out
}

/// The online (`scoreboard` / `conf-gated`) schemes keep all their runtime
/// state — pair scoreboard, per-unit confidence registers — inside the
/// engine, so they must stay bit-identical when the experiment grid is
/// scheduled on 1 vs 8 executor workers, and when the same seeded grid is
/// simply run twice.
#[test]
fn adaptive_schemes_bit_identical_across_jobs_and_reruns() {
    use specmt::bench::{ExperimentSpec, Harness, Variant};

    let spec = ExperimentSpec::new(
        SimConfig::paper(8).with_value_predictor(ValuePredictorKind::Stride),
        vec![
            Variant::speedup("scoreboard", "scoreboard", vec![]),
            Variant::speedup("conf-gated", "conf-gated", vec![]),
        ],
    );
    let run_at = |jobs: usize| {
        let mut h = Harness::load_at(Scale::Tiny).expect("tiny suite loads");
        h.exec.jobs = jobs;
        spec.run(&h).expect("adaptive grid runs")
    };
    let serial = run_at(1);
    let wide = run_at(8);
    assert_eq!(
        serial.results, wide.results,
        "adaptive SimResults must not depend on --jobs"
    );
    assert_eq!(serial.values, wide.values);
    assert_eq!(serial.means, wide.means);

    // Two same-seed runs at the same width are the degenerate rerun case.
    let again = run_at(8);
    assert_eq!(wide.results, again.results, "same-seed adaptive rerun diverged");
    assert_eq!(wide.values, again.values);

    // The determinism claim is vacuous if the gates never fired: across
    // the suite at least one spawn must have been gated or pair demoted.
    let influenced: u64 = serial
        .results
        .iter()
        .flatten()
        .map(|r| r.spawns_gated + r.pairs_demoted)
        .sum();
    assert!(influenced > 0, "adaptive grid never gated a spawn or demoted a pair");
}

#[test]
fn sim_results_match_pre_refactor_golden() {
    let results = run_grid();
    assert_eq!(
        results.len(),
        8 * BUILTIN_SCHEME_NAMES.len() * config_grid().len(),
        "grid covers all workloads x schemes x configs"
    );

    // The vendored serde has no map impls, so the golden is stored as a
    // sorted list of (label, result) pairs.
    if std::env::var_os("SPECMT_REGEN_ENGINE_GOLDEN").is_some() {
        let pairs: Vec<(String, SimResult)> = results.into_iter().collect();
        let json = serde_json::to_string_pretty(&pairs).expect("golden serialises");
        std::fs::write(GOLDEN_PATH, json + "\n").expect("golden written");
        panic!("regenerated {GOLDEN_PATH}; rerun without SPECMT_REGEN_ENGINE_GOLDEN");
    }

    let golden: BTreeMap<String, SimResult> = serde_json::from_str::<Vec<(String, SimResult)>>(GOLDEN)
        .expect("golden parses")
        .into_iter()
        .collect();
    assert_eq!(
        golden.len(),
        results.len(),
        "golden and grid cover the same cells"
    );
    let mut diffs = Vec::new();
    for (label, want) in &golden {
        match results.get(label) {
            None => diffs.push(format!("{label}: missing from run")),
            Some(got) if got != want => diffs.push(format!(
                "{label}: diverged\n  golden: {want:?}\n  got:    {got:?}"
            )),
            Some(_) => {}
        }
    }
    assert!(
        diffs.is_empty(),
        "{} of {} cells diverged from the pre-refactor engine:\n{}",
        diffs.len(),
        golden.len(),
        diffs.join("\n")
    );
}
