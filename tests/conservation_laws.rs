//! Conservation-law suite: the event stream emitted by the engine must
//! balance, for every workload under every registered spawning scheme, and
//! must keep balancing when the fault injector is tearing threads down.
//!
//! The laws (checked by [`specmt::obs::audit`] plus
//! [`AuditReport::verify`] against the run's own `SimResult` totals):
//!
//! * `spawned == committed + squashed + in_flight_at_end`, with
//!   `in_flight_at_end == 0` for a completed run,
//! * squash reasons partition the squashes
//!   (`control + fault == squashed`),
//! * per-thread committed sizes sum to the committed instruction count,
//!   which equals the sequential trace length,
//! * and the stream's totals equal the simulator's ad-hoc counters
//!   (spawns, commits, squashes, violations) exactly.
//!
//! The same run's [`Metrics`] snapshot is cross-checked against both the
//! audit report and the `SimResult`, so the three accounting systems —
//! engine counters, event stream, metrics registry — can only drift
//! together, which the trace-length check rules out.

use std::sync::OnceLock;

use specmt::obs::{audit, AuditReport, EventLog, Metrics};
use specmt::predict::ValuePredictorKind;
use specmt::sim::{FaultPlan, SimConfig, SimResult, Simulator};
use specmt::spawn::{SchemeParams, SchemeRegistry, SpawnTable, BUILTIN_SCHEME_NAMES};
use specmt::trace::Trace;
use specmt::workloads::Scale;

/// One workload with a spawn table per registered scheme, built once and
/// shared by every test in this binary.
struct Case {
    name: &'static str,
    trace: Trace,
    tables: Vec<(&'static str, SpawnTable)>,
}

fn cases() -> &'static [Case] {
    static CASES: OnceLock<Vec<Case>> = OnceLock::new();
    CASES.get_or_init(|| {
        let registry = SchemeRegistry::builtin();
        let params = SchemeParams::default();
        specmt::workloads::suite(Scale::Tiny)
            .into_iter()
            .map(|w| {
                let trace =
                    Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
                let tables = BUILTIN_SCHEME_NAMES
                    .iter()
                    .map(|&scheme| {
                        let table = registry
                            .select(scheme, &trace, &params)
                            .unwrap_or_else(|e| panic!("{}/{scheme}: {e}", w.name));
                        (scheme, table)
                    })
                    .collect();
                Case { name: w.name, trace, tables }
            })
            .collect()
    })
}

/// Runs one observed simulation and applies every conservation law; returns
/// the audit report and result for any further scenario-specific checks.
fn check(
    label: &str,
    trace: &Trace,
    cfg: SimConfig,
    table: &SpawnTable,
) -> (AuditReport, SimResult) {
    let mut log = EventLog::new();
    let r = Simulator::with_table(trace, cfg.with_observe(true), table)
        .run_with_sink(&mut log)
        .unwrap_or_else(|e| panic!("{label}: simulation failed: {e}"));
    let report = audit(log.events()).unwrap_or_else(|e| panic!("{label}: {e}"));

    // Law 1: every spawned thread retired, and the lifecycle balances.
    assert_eq!(report.in_flight_at_end, 0, "{label}: threads leaked");
    assert_eq!(
        report.committed + report.squashed + report.in_flight_at_end,
        report.spawned,
        "{label}: spawned != committed + squashed + in-flight"
    );

    // Law 2: squash reasons partition the squashes.
    assert_eq!(
        report.squashed_control + report.squashed_fault,
        report.squashed,
        "{label}: squash reasons do not partition"
    );

    // Law 3: committed window sizes tile the sequential trace.
    assert_eq!(
        report.committed_size_sum,
        trace.len() as u64,
        "{label}: committed sizes do not sum to the trace length"
    );

    // Laws 4..: the stream reproduces the simulator's own totals.
    report
        .verify(&r.observed_totals())
        .unwrap_or_else(|e| panic!("{label}: {e}"));

    // The metrics registry is a third, independent accounting of the same
    // stream; it must agree with both.
    let m = r.metrics.clone().unwrap_or_else(|| panic!("{label}: observe=true lost metrics"));
    check_metrics(label, &m, &report, &r);

    (report, r)
}

fn check_metrics(label: &str, m: &Metrics, report: &AuditReport, r: &SimResult) {
    assert_eq!(m.counter("threads_spawned"), report.spawned, "{label}: metrics spawned");
    assert_eq!(
        m.counter("speculative_spawns"),
        r.threads_spawned,
        "{label}: metrics speculative spawns"
    );
    assert_eq!(m.counter("threads_committed"), r.threads_committed, "{label}: metrics commits");
    assert_eq!(m.counter("threads_squashed"), r.threads_squashed, "{label}: metrics squashes");
    assert_eq!(
        m.counter("squashed_control_misspeculation") + m.counter("squashed_injected_fault"),
        m.counter("threads_squashed"),
        "{label}: metrics squash reasons do not partition"
    );
    assert_eq!(m.counter("violations"), r.violations, "{label}: metrics violations");
    assert_eq!(m.counter("cache_hits"), r.cache_hits, "{label}: metrics cache hits");
    assert_eq!(m.counter("cache_misses"), r.cache_misses, "{label}: metrics cache misses");
    assert_eq!(m.counter("threads_in_flight"), 0, "{label}: metrics in-flight at end");
    assert_eq!(
        m.counter("fault_forced_squashes"),
        r.fault_forced_squashes,
        "{label}: metrics forced squashes"
    );
    assert_eq!(
        m.counter("fault_jitter_cycles"),
        r.fault_jitter_cycles,
        "{label}: metrics jitter cycles"
    );
    assert_eq!(m.counter("spawns_gated"), r.spawns_gated, "{label}: metrics gated spawns");
    assert_eq!(m.counter("pairs_demoted"), r.pairs_demoted, "{label}: metrics demoted pairs");
    assert_eq!(
        m.counter("gated_low_confidence") + m.counter("gated_demoted"),
        m.counter("spawns_gated"),
        "{label}: gate reasons do not partition the gated spawns"
    );

    let sizes = m.histogram("thread_size").unwrap_or_else(|| panic!("{label}: no size histogram"));
    assert_eq!(sizes.count, r.threads_committed, "{label}: size histogram count");
    assert_eq!(sizes.sum, r.committed_instructions, "{label}: size histogram sum");
    assert_eq!(
        sizes.buckets,
        r.thread_size_histogram,
        "{label}: size histogram buckets diverge from SimResult's"
    );
    let lat = m
        .histogram("spawn_to_commit_cycles")
        .unwrap_or_else(|| panic!("{label}: no latency histogram"));
    assert_eq!(lat.count, r.threads_committed, "{label}: latency histogram count");
    assert_eq!(
        lat.sum, r.thread_lifetime_cycles,
        "{label}: spawn-to-commit cycles diverge from thread_lifetime_cycles"
    );
}

#[test]
fn every_workload_and_scheme_conserves() {
    let mut speculative_runs = 0u64;
    for case in cases() {
        for (scheme, table) in &case.tables {
            let label = format!("{}/{scheme}", case.name);
            let (report, _) = check(&label, &case.trace, SimConfig::paper(16), table);
            assert_eq!(report.spawned, report.speculative_spawned + 1, "{label}: one root");
            speculative_runs += u64::from(report.speculative_spawned > 0);
        }
    }
    // The suite exercises real speculation, not 72 single-threaded runs.
    assert!(speculative_runs > 20, "only {speculative_runs} runs ever spawned");
}

/// The windowed engine buffers event emission through a per-window scratch
/// flushed at batch boundaries; this pins the *order* of the stream, not
/// just its totals: the windowed run's event sequence must equal the
/// instruction-at-a-time reference's element for element, alongside the
/// result itself.
#[test]
fn windowed_event_stream_matches_reference_order() {
    for case in cases() {
        for (scheme, table) in &case.tables {
            let label = format!("{}/{scheme}", case.name);
            let cfg = SimConfig::paper(16).with_observe(true);

            let mut windowed = EventLog::new();
            let rw = Simulator::with_table(&case.trace, cfg.clone(), table)
                .run_with_sink(&mut windowed)
                .unwrap_or_else(|e| panic!("{label}: windowed run failed: {e}"));
            let mut reference = EventLog::new();
            let rr = Simulator::with_table(&case.trace, cfg, table)
                .run_reference_with_sink(&mut reference)
                .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));

            assert_eq!(rw, rr, "{label}: windowed result diverges from reference");
            assert_eq!(
                windowed.events().len(),
                reference.events().len(),
                "{label}: stream lengths diverge"
            );
            for (i, (w, r)) in windowed.events().iter().zip(reference.events()).enumerate() {
                assert_eq!(w, r, "{label}: stream diverges at event {i}");
            }
        }
    }
}

/// splitmix64, used only to derive plan parameters from a master seed
/// (same discipline as `tests/chaos_faults.rs`).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn random_plan(state: &mut u64) -> FaultPlan {
    FaultPlan {
        seed: mix(state),
        squash_rate: unit(state) * 0.3,
        drop_spawn_rate: unit(state) * 0.3,
        corrupt_value_rate: unit(state) * 0.5,
        cache_jitter: mix(state) % 8,
        remove_pair_rate: unit(state) * 0.1,
    }
}

/// The adaptive schemes add two event kinds, and both come with laws:
/// every `SpawnGated` is one declined spawn (so gated <= declined, and the
/// stream's count equals the engine's counter exactly), and `PairDemoted`
/// events match the scoreboard's final demotion count (the engine audits
/// its own scoreboard; here the *stream* must agree with the counter the
/// auditor verified). Ten seeded fault storms keep the squash pressure
/// high enough that both gates actually fire.
#[test]
fn adaptive_gates_conserve_under_ten_fault_plans() {
    let cases = cases();
    let adaptive: Vec<(&Case, &(&'static str, SpawnTable))> = cases
        .iter()
        .flat_map(|c| {
            c.tables
                .iter()
                .filter(|(s, _)| *s == "scoreboard" || *s == "conf-gated")
                .map(move |t| (c, t))
        })
        .collect();
    assert_eq!(adaptive.len(), 2 * cases.len(), "both adaptive schemes built per workload");

    let mut state = 0xada9_71ce_u64;
    let mut any_gated = false;
    let mut any_demoted = false;
    for i in 0..10usize {
        let plan = random_plan(&mut state);
        let (case, (scheme, table)) = &adaptive[(i * 3) % adaptive.len()];
        let label = format!("{}/{scheme} under {plan:?}", case.name);
        let mut cfg = SimConfig::paper(8).with_faults(plan);
        if i % 2 == 1 {
            cfg = cfg.with_value_predictor(ValuePredictorKind::Stride);
        }
        let (report, r) = check(&label, &case.trace, cfg, table);

        // Every SpawnGated is exactly one declined spawn: the stream count
        // matches the engine's gate counter (check() already verified
        // that), and gated spawns are a subset of the declines.
        assert_eq!(report.spawns_gated, r.spawns_gated, "{label}: stream vs gate counter");
        assert!(
            r.spawns_gated <= r.spawns_declined,
            "{label}: {} gated spawns but only {} declines",
            r.spawns_gated,
            r.spawns_declined
        );

        // PairDemoted events match the scoreboard's final state: the
        // engine's own audit pins `pairs_demoted` to the scoreboard's
        // demotion count, and `verify` pinned the stream to the counter —
        // assert the endpoints directly for a readable failure.
        assert_eq!(report.pairs_demoted, r.pairs_demoted, "{label}: stream vs scoreboard");
        if *scheme == "conf-gated" {
            assert_eq!(r.pairs_demoted, 0, "{label}: gate-only scheme demoted a pair");
        }

        any_gated |= r.spawns_gated > 0;
        any_demoted |= r.pairs_demoted > 0;
    }
    assert!(any_gated, "no storm ever gated a spawn; the gate laws are vacuous");
    assert!(any_demoted, "no storm ever demoted a pair; the scoreboard laws are vacuous");
}

#[test]
fn conservation_survives_twenty_five_fault_plans() {
    let cases = cases();
    let mut state = 0x0b5e_7a11_u64;
    let mut any_fault_fired = false;
    let mut any_forced_squash = false;
    for i in 0..25usize {
        let plan = random_plan(&mut state);
        let case = &cases[i % cases.len()];
        let (scheme, table) = &case.tables[i % case.tables.len()];
        let label = format!("{}/{scheme} under {plan:?}", case.name);
        let mut cfg = SimConfig::paper(8).with_faults(plan);
        if i % 2 == 1 {
            // A realistic predictor gives corrupt_value_rate something to
            // corrupt (perfect prediction bypasses the corruptible path).
            cfg = cfg.with_value_predictor(ValuePredictorKind::Stride);
        }
        let (report, r) = check(&label, &case.trace, cfg, table);
        let m = r.metrics.as_ref().expect("observed run has metrics");
        // Every FaultInjected event is one of the five kinds, and the four
        // kinds `SimResult` counts directly must match its counters (jitter
        // events have no SimResult counter; the metrics registry's count of
        // them closes the partition).
        assert_eq!(
            report.faults_injected,
            r.fault_dropped_spawns
                + r.fault_forced_squashes
                + r.fault_corrupted_values
                + r.fault_forced_removals
                + m.counter("fault_cache_jitters"),
            "{label}: fault events diverge from fault counters"
        );
        any_fault_fired |= report.faults_injected > 0;
        any_forced_squash |= report.squashed_fault > 0;
    }
    assert!(any_fault_fired, "no plan injected anything -- the storm is a no-op");
    assert!(any_forced_squash, "no plan ever forced a squash; reason partition untested");
}
