//! Property suite for the online (adaptive) spawning layer.
//!
//! Two promises make the adaptive schemes safe to trust:
//!
//! * **Demotion is monotone in the squash history.** The scoreboard's two
//!   transition functions (`saturating_add` on squash, floored decrement
//!   on commit) are monotone in the current counter, so splicing *extra*
//!   squashes into any pair's event sequence can only demote it sooner —
//!   never rescue it, never demote a *different* pair, and never leave its
//!   final counter lower. A "more squashes somehow raised a pair's
//!   priority" bug would falsify one of these.
//! * **An inactive gate is exactly no gate.** `conf-gated` with threshold
//!   0 must produce bit-identical [`SimResult`]s to its base scheme on
//!   arbitrary workloads and machine shapes: the policy changes the
//!   table's fingerprint (the store must re-key it) but may not perturb a
//!   single engine decision.

use proptest::prelude::*;

use specmt::predict::ValuePredictorKind;
use specmt::sim::{SimConfig, Simulator};
use specmt::spawn::{AdaptivePolicy, AdaptiveState, SchemeParams, SchemeRegistry};
use specmt::store::Fingerprint;
use specmt::trace::Trace;
use specmt::workloads::Scale;

/// One scoreboard input: which pair, and what happened to its thread.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Spawn(usize),
    Squash(usize),
    Commit(usize),
}

fn ev_strategy(num_pairs: usize) -> impl Strategy<Value = Ev> {
    let pair = 0..num_pairs;
    prop_oneof![
        pair.clone().prop_map(Ev::Spawn),
        pair.clone().prop_map(Ev::Squash),
        pair.prop_map(Ev::Commit),
    ]
}

fn replay(num_pairs: usize, threshold: u8, seq: &[Ev]) -> AdaptiveState {
    let mut sb = AdaptiveState::new(num_pairs, threshold);
    for &ev in seq {
        match ev {
            Ev::Spawn(p) => sb.record_spawn(p),
            Ev::Squash(p) => {
                sb.record_squash(p);
            }
            Ev::Commit(p) => sb.record_commit(p),
        }
    }
    sb
}

proptest! {
    /// Splicing extra squashes of one pair into an arbitrary event
    /// sequence never un-demotes anything, never raises any other pair's
    /// state, and leaves the spliced pair at least as demoted (and at
    /// least as hot a counter) as before.
    #[test]
    fn scoreboard_demotion_is_monotone_in_squashes(
        num_pairs in 1usize..6,
        threshold in 1u8..5,
        seq in prop::collection::vec(ev_strategy(5), 0..60),
        splice_at in 0usize..61,
        extra in 1usize..4,
        target in 0usize..5,
    ) {
        let seq: Vec<Ev> = seq.into_iter()
            .map(|ev| match ev {
                Ev::Spawn(p) => Ev::Spawn(p % num_pairs),
                Ev::Squash(p) => Ev::Squash(p % num_pairs),
                Ev::Commit(p) => Ev::Commit(p % num_pairs),
            })
            .collect();
        let target = target % num_pairs;
        let at = splice_at.min(seq.len());
        let mut spliced = seq.clone();
        for _ in 0..extra {
            spliced.insert(at, Ev::Squash(target));
        }

        let base = replay(num_pairs, threshold, &seq);
        let more = replay(num_pairs, threshold, &spliced);

        for p in 0..num_pairs {
            // Demotion is permanent and monotone: nothing demoted under
            // the base history survives the harsher one.
            prop_assert!(
                !base.is_demoted(p) || more.is_demoted(p),
                "pair {p} was rescued by extra squashes"
            );
            if p != target {
                // Pairs are independent: untouched pairs end identically.
                prop_assert_eq!(base.is_demoted(p), more.is_demoted(p));
                prop_assert_eq!(base.counter(p), more.counter(p));
                prop_assert_eq!(base.tallies(p), more.tallies(p));
            }
        }
        // The spliced pair's counter never ends *lower* than before.
        prop_assert!(
            more.counter(target) >= base.counter(target),
            "extra squashes cooled pair {target}: {} < {}",
            more.counter(target),
            base.counter(target)
        );
        prop_assert!(more.demotions() >= base.demotions());
    }
}

proptest! {
    // Simulation-backed cases are slow; a handful across the workload x
    // machine grid is plenty to pin the "threshold 0 is a no-op" promise.
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// `conf-gated` with gate threshold 0 is bit-identical to its base
    /// scheme, for any suite workload, unit count and value predictor —
    /// even though the attached policy re-fingerprints the table.
    #[test]
    fn zero_threshold_gate_is_bit_identical_to_base(
        bench_ix in 0usize..8,
        tus_ix in 0usize..3,
        predictor_ix in 0usize..3,
    ) {
        let tus = [2usize, 4, 8][tus_ix];
        let predictor = [
            ValuePredictorKind::Perfect,
            ValuePredictorKind::Stride,
            ValuePredictorKind::None,
        ][predictor_ix];
        let suite = specmt::workloads::suite(Scale::Tiny);
        let w = &suite[bench_ix % suite.len()];
        let trace = Trace::generate(w.program.clone(), w.step_budget).expect("suite trace");
        let registry = SchemeRegistry::builtin();
        let base = registry
            .select("profile", &trace, &SchemeParams::default())
            .expect("profile selects");
        let gated = base.clone().with_adaptive(AdaptivePolicy {
            demote_threshold: None,
            confidence_threshold: Some(0),
        });
        prop_assert!(
            base.digest().hex() != gated.digest().hex(),
            "the policy must re-key the table even when inactive"
        );

        let cfg = SimConfig::paper(tus).with_value_predictor(predictor);
        let a = Simulator::with_table(&trace, cfg.clone(), &base)
            .run()
            .expect("base runs");
        let b = Simulator::with_table(&trace, cfg, &gated)
            .run()
            .expect("gated runs");
        prop_assert_eq!(a, b, "{}: threshold-0 gate perturbed the simulation", w.name);
    }
}
