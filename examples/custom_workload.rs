//! Custom workload: bring your own program to the toolkit.
//!
//! Builds a small program from scratch with [`ProgramBuilder`] — a
//! producer/consumer pipeline over an array — then runs the entire paper
//! pipeline on it: trace, profile analysis, pair selection, and simulation.
//! Use this as the template for studying thread-level speculation on your
//! own kernels.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! [`ProgramBuilder`]: specmt::isa::ProgramBuilder

use specmt::analysis::{BasicBlocks, BlockStream, DynCfg, MarkovReach};
use specmt::isa::{ProgramBuilder, Reg};
use specmt::sim::{SimConfig, Simulator};
use specmt::spawn::{profile_pairs, ProfileConfig};
use specmt::trace::Trace;

const N: i64 = 4_000;
const IN: i64 = 0x10_000;
const OUT: i64 = 0x90_000;

/// A two-phase kernel: a produce loop filling an array from a recurrence,
/// then an independent consume loop transforming each element.
fn build_program() -> specmt::isa::Program {
    let mut b = ProgramBuilder::new();
    let produce = b.fresh_label("produce");
    let consume = b.fresh_label("consume");

    // Phase 1: in[i] = 7*i ^ (i >> 3)  (no loop-carried data dependence).
    b.li(Reg::R14, IN);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, N);
    b.bind(produce);
    b.muli(Reg::R3, Reg::R1, 7);
    b.shri(Reg::R4, Reg::R1, 3);
    b.xor(Reg::R3, Reg::R3, Reg::R4);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R5, Reg::R14, Reg::R5);
    b.st(Reg::R3, Reg::R5, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, produce);

    // Phase 2: out[i] = f(in[i]) with a longer, still independent body.
    b.li(Reg::R15, OUT);
    b.li(Reg::R1, 0);
    b.bind(consume);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R6, Reg::R14, Reg::R5);
    b.ld(Reg::R3, Reg::R6, 0);
    for _ in 0..12 {
        b.muli(Reg::R4, Reg::R3, 3);
        b.shri(Reg::R3, Reg::R3, 5);
        b.xor(Reg::R3, Reg::R4, Reg::R3);
    }
    b.add(Reg::R6, Reg::R15, Reg::R5);
    b.st(Reg::R3, Reg::R6, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, consume);
    b.halt();
    b.build().expect("valid program")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_program();
    let trace = Trace::generate(program, 2_000_000)?;
    println!("custom kernel: {} dynamic instructions", trace.len());

    // Inspect the control structure the analyses see.
    let bbs = BasicBlocks::of(trace.program());
    let stream = BlockStream::new(&trace, &bbs);
    let cfg = DynCfg::build(&stream, &bbs);
    let markov = MarkovReach::new(&cfg);
    println!(
        "{} basic blocks; per-block reaching probabilities of interest:",
        bbs.num_blocks()
    );
    for (id, start, _) in bbs.iter() {
        let p = markov.prob(id, id);
        if p > 0.5 {
            println!("  block {id} (at {start}): self-reaching probability {p:.3}");
        }
    }

    // Select pairs and simulate.
    let profile = profile_pairs(&trace, &ProfileConfig::default());
    println!("\nselected {} spawning pairs:", profile.table.num_pairs());
    for p in profile.table.iter() {
        println!(
            "  {} -> {}  prob {:.3}  distance {:.1}",
            p.sp, p.cqip, p.prob, p.avg_dist
        );
    }

    let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run()?;
    for tus in [4usize, 16] {
        let r = Simulator::with_table(&trace, SimConfig::paper(tus), &profile.table).run()?;
        println!(
            "{tus:>2} thread units: {:.2}x ({} threads, avg size {:.0} instructions)",
            baseline.cycles as f64 / r.cycles as f64,
            r.threads_committed,
            r.avg_thread_size()
        );
    }
    Ok(())
}
