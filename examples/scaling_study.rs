//! Scaling study: speed-up vs thread-unit count and value predictor.
//!
//! Sweeps the processor from 1 to 16 thread units under perfect, stride and
//! no value prediction — extending the paper's Figure 12 (which reports 4
//! and 16 units) into a full scaling curve, rendered as ASCII bar charts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study [workload]
//! ```

use specmt::predict::ValuePredictorKind;
use specmt::sim::SimConfig;
use specmt::spawn::ProfileConfig;
use specmt::stats::BarChart;
use specmt::workloads::Scale;
use specmt::Bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ijpeg".into());
    let bench = Bench::load(&name, Scale::Medium)?;
    let table = bench.profile_table(&ProfileConfig::default()).table;

    println!(
        "{}: {} dynamic instructions, {} spawning pairs, baseline {} cycles\n",
        bench.name(),
        bench.trace().len(),
        table.num_pairs(),
        bench.baseline_cycles()?
    );

    for kind in [
        ValuePredictorKind::Perfect,
        ValuePredictorKind::Stride,
        ValuePredictorKind::None,
    ] {
        let mut chart = BarChart::new(&format!("speed-up, {kind} value prediction"), 40);
        for tus in [1usize, 2, 4, 8, 16] {
            let mut cfg = SimConfig::paper(tus).with_value_predictor(kind);
            cfg.min_observed_size = Some(32);
            let r = bench.run(cfg, &table)?;
            chart.bar(&format!("{tus:>2} TUs"), bench.speedup(&r)?);
        }
        println!("{}", chart.render());
    }
    Ok(())
}
