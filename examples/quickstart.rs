//! Quickstart: the paper's headline experiment on one benchmark.
//!
//! Generates the `ijpeg` workload, mines spawning pairs with the
//! profile-based scheme (§3.1 of the paper), simulates the Clustered
//! Speculative Multithreaded Processor with 16 thread units, and reports
//! the speed-up over single-threaded execution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use specmt::sim::SimConfig;
use specmt::spawn::ProfileConfig;
use specmt::workloads::Scale;
use specmt::Bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the workload and record its dynamic trace (the profile).
    let bench = Bench::load("ijpeg", Scale::Medium)?;
    println!(
        "workload: {} ({} static / {} dynamic instructions)",
        bench.name(),
        bench.workload().program.len(),
        bench.trace().len()
    );

    // 2. Mine spawning pairs: reaching probability >= 0.95, expected
    //    distance >= 32 instructions, CQIPs ranked by distance.
    let profile = bench.profile_table(&ProfileConfig::default());
    println!(
        "profile selected {} pairs over {} spawning points (CFG coverage {:.1}%)",
        profile.table.num_pairs(),
        profile.table.num_spawning_points(),
        100.0 * profile.coverage
    );
    for pair in profile.table.iter() {
        println!(
            "  {} -> {}  prob {:.3}  expected distance {:>6.1}  ({:?})",
            pair.sp, pair.cqip, pair.prob, pair.avg_dist, pair.origin
        );
    }

    // 3. Simulate: single-threaded baseline vs 16 speculative thread units
    //    with perfect value prediction (the Figure 3 setup).
    let result = bench.run(SimConfig::paper(16), &profile.table)?;
    println!(
        "\nbaseline: {} cycles | speculative: {} cycles",
        bench.baseline_cycles()?,
        result.cycles
    );
    println!(
        "speed-up {:.2}x with {:.1} threads active on average ({} spawns, {} squashed)",
        bench.speedup(&result)?,
        result.avg_active_threads(),
        result.threads_spawned,
        result.threads_squashed
    );
    Ok(())
}
