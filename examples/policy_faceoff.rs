//! Policy face-off: every spawning policy on the whole suite.
//!
//! Compares the profile-based scheme against each construct heuristic
//! individually and their combination — the comparison behind the paper's
//! §4.2.1 and Figure 8 — at 16 thread units with perfect value prediction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_faceoff
//! ```

use specmt::sim::SimConfig;
use specmt::spawn::{HeuristicSet, ProfileConfig};
use specmt::stats::{harmonic_mean, Table};
use specmt::workloads::Scale;
use specmt::Bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies: [(&str, Option<HeuristicSet>); 5] = [
        ("profile", None),
        ("loop-iter", Some(HeuristicSet::loop_iteration_only())),
        ("loop-cont", Some(HeuristicSet::loop_continuation_only())),
        (
            "sub-cont",
            Some(HeuristicSet::subroutine_continuation_only()),
        ),
        ("combined", Some(HeuristicSet::all())),
    ];

    let mut table = Table::new(&[
        "bench",
        "profile",
        "loop-iter",
        "loop-cont",
        "sub-cont",
        "combined",
    ]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];

    for bench in Bench::suite(Scale::Medium)? {
        let mut cells = vec![bench.name().to_string()];
        for (col, (_, set)) in policies.iter().enumerate() {
            let spawn_table = match set {
                None => {
                    // The paper's best profile configuration: §3.1 selection
                    // plus the Figure 7b minimum-size enforcement.
                    bench.profile_table(&ProfileConfig::default()).table
                }
                Some(set) => bench.heuristic_table(*set),
            };
            let mut cfg = SimConfig::paper(16);
            if set.is_none() {
                cfg.min_observed_size = Some(32);
            }
            let r = bench.run(cfg, &spawn_table)?;
            let sp = bench.speedup(&r)?;
            columns[col].push(sp);
            cells.push(format!("{sp:.2}"));
        }
        table.row_owned(cells);
    }
    let mut last = vec!["Hmean".to_string()];
    for col in &columns {
        last.push(format!("{:.2}", harmonic_mean(col)));
    }
    table.row_owned(last);

    println!("Speed-up over single-threaded execution (16 TUs, perfect VP):\n");
    println!("{}", table.render());
    println!(
        "profile vs combined heuristics: {:+.1}%",
        (harmonic_mean(&columns[0]) / harmonic_mean(&columns[4]) - 1.0) * 100.0
    );
    Ok(())
}
