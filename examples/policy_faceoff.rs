//! Policy face-off: every spawning scheme on the whole suite, through the
//! scheme registry.
//!
//! Compares the profile-based scheme against each construct heuristic
//! individually and their combination — the comparison behind the paper's
//! §4.2.1 and Figure 8 — at 16 thread units with perfect value prediction.
//! It also shows the registry's extension point: a custom `union` scheme
//! (profile pairs merged with the combined heuristics) is registered
//! alongside the built-ins and raced against them on equal terms.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_faceoff
//! ```

use specmt::sim::SimConfig;
use specmt::spawn::{
    SchemeError, SchemeParams, SchemeRegistry, SpawnScheme, SpawnTable,
};
use specmt::stats::{harmonic_mean, Table};
use specmt::trace::Trace;
use specmt::workloads::Scale;
use specmt::Bench;

/// A custom scheme: the union of the profile-selected pairs and the
/// combined construct heuristics, deduplicated by `(sp, cqip)`.
///
/// Delegating to other registered schemes keeps the composition honest:
/// whatever parameters the caller passes flow through unchanged.
#[derive(Debug)]
struct UnionScheme;

impl SpawnScheme for UnionScheme {
    fn name(&self) -> &str {
        "union"
    }

    fn describe(&self) -> String {
        "profile-selected pairs merged with the combined construct heuristics".into()
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        let builtin = SchemeRegistry::builtin();
        let profile = builtin.select("profile", trace, params)?;
        let heuristics = builtin.select("heuristics", trace, params)?;
        let mut pairs: Vec<_> = profile.iter().copied().collect();
        pairs.extend(heuristics.iter().copied());
        Ok(SpawnTable::from_pairs(pairs))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SchemeRegistry::builtin();
    registry.register(Box::new(UnionScheme))?;
    let params = SchemeParams::default();

    let schemes = [
        "profile",
        "loop-iteration",
        "loop-continuation",
        "subroutine-continuation",
        "heuristics",
        "union",
    ];
    let headers: Vec<&str> = std::iter::once("bench").chain(schemes).collect();
    let mut table = Table::new(&headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for bench in Bench::suite(Scale::Medium)? {
        let mut cells = vec![bench.name().to_string()];
        for (col, scheme) in schemes.iter().enumerate() {
            let spawn_table = registry.select(scheme, bench.trace(), &params)?;
            let mut cfg = SimConfig::paper(16);
            if *scheme == "profile" || *scheme == "union" {
                // The paper's best profile configuration: §3.1 selection
                // plus the Figure 7b minimum-size enforcement.
                cfg.min_observed_size = Some(32);
            }
            let r = bench.run(cfg, &spawn_table)?;
            let sp = bench.speedup(&r)?;
            columns[col].push(sp);
            cells.push(format!("{sp:.2}"));
        }
        table.row_owned(cells);
    }
    let mut last = vec!["Hmean".to_string()];
    for col in &columns {
        last.push(format!("{:.2}", harmonic_mean(col)));
    }
    table.row_owned(last);

    println!("Schemes in the race:");
    for name in registry.names() {
        if let Some(scheme) = registry.get(name) {
            println!("  {:<24} {}", name, scheme.describe());
        }
    }
    println!("\nSpeed-up over single-threaded execution (16 TUs, perfect VP):\n");
    println!("{}", table.render());
    println!(
        "profile vs combined heuristics: {:+.1}%",
        (harmonic_mean(&columns[0]) / harmonic_mean(&columns[4]) - 1.0) * 100.0
    );
    Ok(())
}
