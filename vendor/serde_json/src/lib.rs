//! Minimal in-tree stand-in for the parts of `serde_json` this workspace
//! uses: printing [`Value`] trees to JSON text (compact and pretty), parsing
//! JSON text back, and the [`json!`] literal macro.
//!
//! The parser is written defensively — nesting depth is capped, malformed
//! escapes and numbers produce errors rather than panics — because trace
//! containers embed untrusted JSON program headers.

use std::fmt;

pub use serde::{Deserialize, Serialize, Value};

/// Maximum nesting depth the parser accepts before reporting an error
/// (guards against stack exhaustion on adversarial input).
const MAX_DEPTH: usize = 128;

/// A JSON parse or print failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Renders any serializable value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible today (non-finite floats print as `null`); the `Result` keeps
/// the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON text.
///
/// # Errors
///
/// As [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(0), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// As [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(v: &T) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

/// Parses JSON text and deserializes the result.
///
/// # Errors
///
/// Reports malformed JSON (with byte offset) or a shape mismatch during
/// deserialization.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s.as_bytes())?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes (must be UTF-8) and deserializes the result.
///
/// # Errors
///
/// As [`from_str`], plus invalid UTF-8.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(x) if x.is_finite() => {
            let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
        }
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if indent.is_some() {
        out.push('\n');
        for _ in 0..level * 2 {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: take a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The whole input was validated as UTF-8 up front.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            self.pos += 1;
            v = v * 16
                + (c as char)
                    .to_digit(16)
                    .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"));
        }
        if let Some(neg) = text.strip_prefix('-') {
            // Parse through the unsigned path so `-0` and range checks work.
            let _ = neg;
            return text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"));
        }
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| self.err("integer out of range"))
    }
}

// ---------------------------------------------------------------------------
// The json! literal macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-looking syntax with interpolated Rust
/// expressions, like `serde_json::json!`.
///
/// Object keys must be string literals (the only form this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let object: Vec<(String, $crate::Value)> = {
            let mut object = Vec::new();
            $crate::json_internal!(@object object () ($($tt)*) ($($tt)*));
            object
        };
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: a token-tree muncher that splits
/// object bodies on top-level commas so values can be arbitrary expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays: elements are plain expressions (nested `json!` calls included).
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(vec![$($elems),*])
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($map)*})] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($arr)*])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next)] $($($rest)*)?)
    };

    // Objects — done.
    (@object $object:ident () () ()) => {};
    // Insert the completed entry, then continue after the comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    // Value is a nested object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!({$($map)*})) $($rest)*);
    };
    // Value is a nested array.
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!([$($arr)*])) $($rest)*);
    };
    // Value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)) , $($rest)*);
    };
    // Value is the final expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::to_value(&$value)));
    };
    // Accumulate a key token.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = json!({
            "name": "trace",
            "count": 3u64,
            "ratio": 0.5f64,
            "flags": [true, false, null],
            "nested": {"deep": [1u64, 2u64]},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.get("name"), Some(&Value::Str("trace".into())));
        assert_eq!(back.get("count"), Some(&Value::UInt(3)));
        assert!(back.get("nested").and_then(|n| n.get("deep")).is_some());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": [1u64, 2u64], "b": {"c": "x"}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back.get("b").and_then(|b| b.get("c")), Some(&Value::Str("x".into())));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\u{1}e\u{1F600}".into());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: Value = from_str(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"\\q\"", "\"\\ud800\"", "1e", "nul",
            "[1] trailing", "{\"a\" 1}",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn numbers_preserve_kinds() {
        assert_eq!(from_str::<Value>("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        assert_eq!(from_str::<Value>("-5").unwrap(), Value::Int(-5));
        assert_eq!(from_str::<Value>("2.5").unwrap(), Value::Float(2.5));
        assert!(from_str::<Value>("99999999999999999999999999").is_err());
    }

    #[test]
    fn non_finite_floats_print_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
