//! Minimal in-tree stand-in for the parts of `serde` this workspace uses.
//!
//! The build environment has no network access, so the external crates the
//! workspace depends on are vendored as small, dependency-free
//! implementations. This crate provides a `Value`-based data model:
//! [`Serialize`] renders a type to a [`Value`] tree, [`Deserialize`] rebuilds
//! the type from one, and the vendored `serde_json` maps `Value` to and from
//! JSON text.
//!
//! Instead of a derive macro, the [`impl_serde_struct!`], [`impl_serde_enum!`]
//! and [`impl_serde_newtype!`] macros generate the impls at the definition
//! site. Types with construction invariants (`Program`, `Reg`, `SpawnTable`)
//! write the impls by hand so that deserialization re-validates — corrupted
//! input yields an [`Error`], never an invalid value.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The self-describing data model every serializable type maps through.
///
/// Objects preserve insertion order (they are association lists, not maps);
/// duplicate keys are not rejected, the first occurrence wins on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A negative or small signed integer.
    Int(i64),
    /// A non-negative integer (the parser's default for unsigned literals).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key-value mapping.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization failure: a human-readable message, possibly prefixed
/// with the path of fields that led to it.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The `Value` tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model, validating as it goes.
pub trait Deserialize: Sized {
    /// Parses `v`, reporting a descriptive [`Error`] on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Impl-generation helpers and macros
// ---------------------------------------------------------------------------

/// Extracts `name` from an object value and deserializes it, prefixing
/// errors with the field name.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let f = v
        .get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(f).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

/// Splits an enum encoding into `(variant tag, body)`.
///
/// Unit variants encode as a bare string; variants with fields encode as a
/// single-entry object `{"Variant": {..fields..}}`.
pub fn enum_parts(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), &NULL)),
        Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(Error::custom(format!(
            "expected enum (string or single-key object), got {}",
            other.kind()
        ))),
    }
}

/// Generates `Serialize`/`Deserialize` for a plain struct with named fields.
///
/// Fields encode as an object keyed by field name. Expand this in the
/// defining module; private fields are fine.
#[macro_export]
macro_rules! impl_serde_struct {
    ($name:ident { $($f:ident),+ $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($f).to_string(), $crate::Serialize::to_value(&self.$f)),)+
                ])
            }
        }

        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($name { $($f: $crate::field(v, stringify!($f))?,)+ })
            }
        }
    };
}

/// Generates `Serialize`/`Deserialize` for a single-field tuple struct,
/// encoding it transparently as the inner value.
#[macro_export]
macro_rules! impl_serde_newtype {
    ($name:ident($inner:ty)) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }

        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($name(<$inner as $crate::Deserialize>::from_value(v)?))
            }
        }
    };
}

/// Generates `Serialize`/`Deserialize` for an enum whose variants are unit
/// (`Variant`) or struct-like (`Variant { a, b }`).
///
/// Unit variants encode as `"Variant"`; struct variants as
/// `{"Variant": {"a": .., "b": ..}}` — the same externally-tagged layout
/// serde's derive produces.
#[macro_export]
macro_rules! impl_serde_enum {
    ($name:ident { $($variant:ident $({ $($f:ident),+ $(,)? })?),+ $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $(
                        $name::$variant $({ $($f),+ })? => {
                            #[allow(unused_mut)]
                            let mut fields: Vec<(String, $crate::Value)> = Vec::new();
                            $($(
                                fields.push((
                                    stringify!($f).to_string(),
                                    $crate::Serialize::to_value($f),
                                ));
                            )+)?
                            if fields.is_empty() {
                                $crate::Value::Str(stringify!($variant).to_string())
                            } else {
                                $crate::Value::Object(vec![(
                                    stringify!($variant).to_string(),
                                    $crate::Value::Object(fields),
                                )])
                            }
                        }
                    )+
                }
            }
        }

        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                let (tag, _body) = $crate::enum_parts(v)?;
                match tag {
                    $(
                        stringify!($variant) => Ok($name::$variant $({
                            $($f: $crate::field(_body, stringify!($f))?,)+
                        })?),
                    )+
                    other => Err($crate::Error::custom(format!(
                        concat!("unknown ", stringify!($name), " variant `{}`"),
                        other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: u32,
        y: i64,
    }
    impl_serde_struct!(Point { x, y });

    #[derive(Debug, PartialEq)]
    struct Wrapped(u8);
    impl_serde_newtype!(Wrapped(u8));

    #[derive(Debug, PartialEq)]
    enum Shape {
        Dot,
        Line { from: u32, to: u32 },
    }
    impl_serde_enum!(Shape {
        Dot,
        Line { from, to }
    });

    #[test]
    fn struct_round_trip() {
        let p = Point { x: 3, y: -9 };
        assert_eq!(Point::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Wrapped(7).to_value(), Value::UInt(7));
        assert_eq!(Wrapped::from_value(&Value::UInt(7)).unwrap(), Wrapped(7));
    }

    #[test]
    fn enum_round_trip() {
        for s in [Shape::Dot, Shape::Line { from: 1, to: 2 }] {
            let v = s.to_value();
            assert_eq!(Shape::from_value(&v).unwrap(), s);
        }
        assert!(Shape::from_value(&Value::Str("Oval".into())).is_err());
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Object(vec![("x".into(), Value::UInt(1))]);
        let err = Point::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("missing field `y`"));
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_and_tuples() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let pair = (3u64, 4u64);
        assert_eq!(<(u64, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }
}
