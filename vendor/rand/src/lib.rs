//! Minimal in-tree stand-in for the `rand` trait surface this workspace
//! uses: [`RngCore`], [`SeedableRng`] and the [`Rng`] extension with
//! `gen::<T>()`. Generators (e.g. the vendored `rand_chacha`) implement
//! [`RngCore`]; everything else is provided by blanket impls.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the
    /// generator's full seed size.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u64() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a `u64` uniformly from `[low, high)` without modulo bias worth
    /// worrying about at these range sizes.
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64
    where
        Self: Sized,
    {
        debug_assert!(low < high, "gen_range_u64 requires low < high");
        low + self.next_u64() % (high - low).max(1)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            self.0
        }
    }

    #[test]
    fn gen_draws_each_type() {
        let mut r = Counter(1);
        let _: u64 = r.gen();
        let _: bool = r.gen();
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Counter(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
