//! Minimal in-tree micro-benchmark harness exposing the `criterion` API
//! surface this workspace uses: `Criterion`, `benchmark_group`,
//! `bench_function`, `Throughput`, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark warms up briefly, then measures wall-clock time for a
//! bounded number of iterations and prints the mean per-iteration time (plus
//! element throughput when declared). No statistics beyond that — the goal
//! is a working `cargo bench` without network access, not criterion's
//! analysis.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(400);
/// Upper bound on measured iterations per benchmark.
const MAX_ITERS: u32 = 50;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u32,
    total: Duration,
}

impl Bencher {
    /// Measures `f`, called repeatedly within the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches the first measured call would miss).
        black_box(f());
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TARGET_TIME {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let per_iter = b.total / b.iters;
    let mut line = format!("  {name}: {per_iter:?}/iter ({} iters)", b.iters);
    let secs = per_iter.as_secs_f64();
    if secs > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(", {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(", {:.3} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
