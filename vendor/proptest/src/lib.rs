//! Minimal in-tree property-testing harness with the `proptest` API surface
//! this workspace uses: [`Strategy`] with `prop_map`/`prop_flat_map`,
//! tuple/range/collection strategies, [`prop_oneof!`], [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! full inputs instead), and the per-test RNG is seeded from the test name —
//! deterministic across runs — unless `PROPTEST_RNG_SEED` overrides it.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D563_1366,
        }
    }

    /// Seeds from the test name (FNV-1a), XORed with `PROPTEST_RNG_SEED`
    /// when that environment variable holds an integer.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(var) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(seed) = var.trim().parse::<u64>() {
                h ^= seed;
            }
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Chooses uniformly among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )+};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )+};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy, for [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<i8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Fair coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// A fair coin.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Wraps `inner` values in `Some` three times out of four, `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property, carrying the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The `Result` alias property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };

    /// The `prop` shorthand module (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Fails the current property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Chooses uniformly among the listed strategies (all must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases. A failing case panics
/// with the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(concat!("  ", stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-5i8..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn oneof_uses_every_branch() {
        let strategy = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strategy = prop::collection::vec(0u32..10, 2..5);
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("deterministic_per_name");
        let mut b = crate::TestRng::for_test("deterministic_per_name");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..100, flip in prop::bool::ANY, opt in prop::option::of(1u8..4)) {
            prop_assert!(x < 100);
            let _ = flip;
            if let Some(v) = opt {
                prop_assert!((1..4).contains(&v));
            }
        }

        #[test]
        fn flat_map_and_map_compose(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..9, n..(n + 1))).prop_map(|v| v.len())) {
            prop_assert!((1..4).contains(&v));
        }
    }
}
