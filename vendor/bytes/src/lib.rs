//! Minimal in-tree stand-in for the parts of the `bytes` crate this
//! workspace uses: the [`Buf`]/[`BufMut`] cursor traits and a growable
//! [`BytesMut`] buffer.
//!
//! Semantics match `bytes`: the little-endian getters panic if fewer bytes
//! remain than requested, so callers must check [`Buf::remaining`] first
//! (as the trace reader does).

use std::ops::{Deref, DerefMut};

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    #[inline]
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le past end of buffer");
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than eight bytes remain.
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end of buffer");
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that derefs to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the buffer, returning its bytes.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[inline]
    fn put_then_get_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    #[inline]
    fn get_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
