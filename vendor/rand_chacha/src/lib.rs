//! In-tree ChaCha8 random generator implementing the vendored `rand`
//! traits.
//!
//! This is a real ChaCha8 block function (RFC 7539 quarter-rounds, eight
//! rounds, 64-bit block counter), seeded by expanding a 64-bit seed into a
//! 256-bit key with SplitMix64 — the same expansion `rand`'s
//! `seed_from_u64` uses. Workload data built on it is deterministic per
//! seed, which is all the workspace requires (checksums are recomputed at
//! runtime, not baked in).

use rand::{RngCore, SeedableRng};

/// The ChaCha8 generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and constants; counter/nonce live in words 12..16.
    state: [u32; 16],
    /// One generated block of output words.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds a generator from a 256-bit key, with counter and nonce zero.
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12-13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_looks_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..256).map(|_| r.next_u64().count_ones()).sum();
        // 256 draws x 64 bits: the popcount should be near half of 16384.
        assert!((7500..8900).contains(&ones), "popcount {ones}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
