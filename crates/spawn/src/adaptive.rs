//! Online (adaptive) spawning: runtime gate parameters, the per-pair
//! scoreboard, and the `scoreboard` / `conf-gated` wrapper schemes.
//!
//! Every other scheme in this crate is offline — it reads a profile trace
//! and emits a static [`SpawnTable`]. The adaptive family keeps the table
//! but attaches an [`AdaptivePolicy`] the simulator consults *while
//! running*: a per-pair squash scoreboard that permanently demotes pairs
//! whose speculative threads keep squashing (after Prophet's slice-quality
//! feedback), and a branch-predictor confidence gate that declines spawns
//! issued from a unit whose recent predictions are unreliable (after
//! Durbhakula's branch-prediction optimizations for multithreaded
//! processors). Both are deterministic functions of the simulated
//! execution, so runs stay bit-identical at any `--jobs` width.
//!
//! The runtime state itself ([`AdaptiveState`]) lives here rather than in
//! the simulator so its transition function can be tested — and
//! property-tested for monotonicity — without running a simulation.

use crate::pair::SpawnTable;
use crate::scheme::{SchemeError, SchemeParams, SpawnScheme};
use specmt_store::{Fingerprint, FingerprintHasher};
use specmt_trace::Trace;

/// Default squash-counter threshold of the builtin `scoreboard` scheme.
pub const DEFAULT_DEMOTE_THRESHOLD: u8 = 2;

/// Default confidence level of the builtin `conf-gated` scheme: spawns are
/// declined while fewer than this many of the unit's last 8 conditional
/// branches predicted correctly. Tuned on the tiny-scale drift study
/// (`fig_adaptation`): 3 recovers the drifted m88ksim without starving the
/// well-transferring benchmarks.
pub const DEFAULT_CONFIDENCE_THRESHOLD: u8 = 3;

/// Runtime gate parameters attached to a [`SpawnTable`] by an adaptive
/// scheme. A table without one (`SpawnTable::adaptive()` returning `None`,
/// the state of every offline scheme's output) simulates exactly as before
/// this type existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Demote a pair permanently once its saturating squash counter (+1
    /// per squash, −1 per commit, floor 0) reaches this value. `None`
    /// disables the scoreboard.
    pub demote_threshold: Option<u8>,
    /// Decline spawns from a thread unit whose confidence level — correct
    /// predictions among its last 8 conditional branches — is below this
    /// value. `None` or `Some(0)` disables the gate (level is never
    /// negative, so a threshold of 0 can never decline; the engine treats
    /// the two identically and a 0-threshold run is bit-identical to the
    /// base scheme).
    pub confidence_threshold: Option<u8>,
}

impl AdaptivePolicy {
    /// Whether this policy can ever influence a spawn decision. Inactive
    /// policies leave the engine on the exact same code path as a table
    /// with no policy at all.
    pub fn is_active(&self) -> bool {
        self.demote_threshold.is_some()
            || self.confidence_threshold.is_some_and(|t| t > 0)
    }
}

serde::impl_serde_struct!(AdaptivePolicy {
    demote_threshold,
    confidence_threshold,
});

impl Fingerprint for AdaptivePolicy {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("AdaptivePolicy");
        match self.demote_threshold {
            None => h.none(),
            Some(t) => {
                h.some();
                h.u64(u64::from(t));
            }
        }
        match self.confidence_threshold {
            None => h.none(),
            Some(t) => {
                h.some();
                h.u64(u64::from(t));
            }
        }
    }
}

/// The runtime pair scoreboard: per-pair spawn/squash/commit tallies with
/// deterministic saturating-counter demotion.
///
/// Each pair carries a counter incremented on squash and decremented
/// (floor 0) on commit. The first time a pair's counter reaches the
/// threshold it is demoted — permanently for the rest of the run, so a
/// pair that keeps paying squash penalties stops being spawned no matter
/// how well it once did. Both transition functions are monotone in the
/// current counter value, which makes demotion monotone in the squash
/// history: inserting extra squashes anywhere in a pair's event sequence
/// can only demote it sooner, never rescue it (property-tested in
/// `tests/adaptive_properties.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveState {
    threshold: u8,
    counters: Vec<u8>,
    demoted: Vec<bool>,
    spawns: Vec<u64>,
    squashes: Vec<u64>,
    commits: Vec<u64>,
    demotions: u64,
}

impl AdaptiveState {
    /// A scoreboard over `num_pairs` pairs (dense ids, matching the
    /// simulator's interned pair arena) demoting at `threshold`. A
    /// threshold of 0 would demote every pair before its first spawn;
    /// it is clamped to 1.
    pub fn new(num_pairs: usize, threshold: u8) -> AdaptiveState {
        AdaptiveState {
            threshold: threshold.max(1),
            counters: vec![0; num_pairs],
            demoted: vec![false; num_pairs],
            spawns: vec![0; num_pairs],
            squashes: vec![0; num_pairs],
            commits: vec![0; num_pairs],
            demotions: 0,
        }
    }

    /// Records a successful spawn of `pair`.
    pub fn record_spawn(&mut self, pair: usize) {
        self.spawns[pair] += 1;
    }

    /// Records a committed thread of `pair`, cooling its counter.
    pub fn record_commit(&mut self, pair: usize) {
        self.commits[pair] += 1;
        self.counters[pair] = self.counters[pair].saturating_sub(1);
    }

    /// Records a squashed thread of `pair`; returns `true` exactly when
    /// this squash newly demotes the pair.
    pub fn record_squash(&mut self, pair: usize) -> bool {
        self.squashes[pair] += 1;
        self.counters[pair] = self.counters[pair].saturating_add(1);
        if !self.demoted[pair] && self.counters[pair] >= self.threshold {
            self.demoted[pair] = true;
            self.demotions += 1;
            return true;
        }
        false
    }

    /// Whether `pair` has been demoted.
    pub fn is_demoted(&self, pair: usize) -> bool {
        self.demoted[pair]
    }

    /// Current squash counter of `pair`.
    pub fn counter(&self, pair: usize) -> u8 {
        self.counters[pair]
    }

    /// Total pairs demoted so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Lifetime `(spawns, squashes, commits)` tallies of `pair`.
    pub fn tallies(&self, pair: usize) -> (u64, u64, u64) {
        (self.spawns[pair], self.squashes[pair], self.commits[pair])
    }

    /// Number of pairs tracked.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the scoreboard tracks no pairs.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// Builds the one-line description shared by both wrapper schemes.
fn wrap_describe(what: &str, threshold: u8, base: &dyn SpawnScheme) -> String {
    format!("{what} (threshold {threshold}) over the `{}` scheme", base.name())
}

/// Runs the wrapped scheme's selection and attaches `policy` to its table.
fn wrap_select(
    base: &dyn SpawnScheme,
    policy: AdaptivePolicy,
    trace: &Trace,
    params: &SchemeParams,
) -> Result<SpawnTable, SchemeError> {
    Ok(base.select(trace, params)?.with_adaptive(policy))
}

/// The `scoreboard` scheme: any base scheme's pairs, demoted at runtime
/// once they accumulate `threshold` net squashes.
#[derive(Debug)]
pub struct ScoreboardScheme {
    base: Box<dyn SpawnScheme>,
    threshold: u8,
}

impl ScoreboardScheme {
    /// Wraps `base` with a squash scoreboard demoting at `threshold`.
    pub fn new(base: Box<dyn SpawnScheme>, threshold: u8) -> ScoreboardScheme {
        ScoreboardScheme { base, threshold }
    }
}

impl SpawnScheme for ScoreboardScheme {
    fn name(&self) -> &str {
        "scoreboard"
    }

    fn describe(&self) -> String {
        wrap_describe("runtime pair scoreboard demoting squash-prone pairs", self.threshold, self.base.as_ref())
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        let policy = AdaptivePolicy {
            demote_threshold: Some(self.threshold),
            confidence_threshold: None,
        };
        wrap_select(self.base.as_ref(), policy, trace, params)
    }

    // Cacheable exactly when the base is: the produced table is a pure
    // function of the base's table plus the threshold, both named here.
    fn cache_identity(&self) -> Option<String> {
        self.base
            .cache_identity()
            .map(|b| format!("scoreboard[t={}]/{b}", self.threshold))
    }
}

/// The `conf-gated` scheme: any base scheme's pairs, with spawns gated on
/// the spawning unit's branch-predictor confidence.
#[derive(Debug)]
pub struct ConfGatedScheme {
    base: Box<dyn SpawnScheme>,
    threshold: u8,
}

impl ConfGatedScheme {
    /// Wraps `base` with a confidence gate at `threshold` (0 disables the
    /// gate, making this scheme bit-identical to `base`).
    pub fn new(base: Box<dyn SpawnScheme>, threshold: u8) -> ConfGatedScheme {
        ConfGatedScheme { base, threshold }
    }
}

impl SpawnScheme for ConfGatedScheme {
    fn name(&self) -> &str {
        "conf-gated"
    }

    fn describe(&self) -> String {
        wrap_describe("branch-predictor confidence gating of spawns", self.threshold, self.base.as_ref())
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        let policy = AdaptivePolicy {
            demote_threshold: None,
            confidence_threshold: Some(self.threshold),
        };
        wrap_select(self.base.as_ref(), policy, trace, params)
    }

    fn cache_identity(&self) -> Option<String> {
        self.base
            .cache_identity()
            .map(|b| format!("conf-gated[t={}]/{b}", self.threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_policies_are_recognised() {
        assert!(!AdaptivePolicy::default().is_active());
        assert!(!AdaptivePolicy { demote_threshold: None, confidence_threshold: Some(0) }
            .is_active());
        assert!(AdaptivePolicy { demote_threshold: Some(1), confidence_threshold: None }
            .is_active());
        assert!(AdaptivePolicy { demote_threshold: None, confidence_threshold: Some(1) }
            .is_active());
    }

    #[test]
    fn policy_round_trips_through_serde() {
        for policy in [
            AdaptivePolicy::default(),
            AdaptivePolicy { demote_threshold: Some(3), confidence_threshold: None },
            AdaptivePolicy { demote_threshold: Some(2), confidence_threshold: Some(6) },
        ] {
            let s = serde_json::to_string(&policy).expect("serialize");
            let back: AdaptivePolicy = serde_json::from_str(&s).expect("deserialize");
            assert_eq!(policy, back);
        }
    }

    #[test]
    fn policy_fields_are_fingerprinted() {
        let digests: Vec<String> = [
            AdaptivePolicy::default(),
            AdaptivePolicy { demote_threshold: Some(2), confidence_threshold: None },
            AdaptivePolicy { demote_threshold: Some(3), confidence_threshold: None },
            AdaptivePolicy { demote_threshold: None, confidence_threshold: Some(2) },
            AdaptivePolicy { demote_threshold: Some(2), confidence_threshold: Some(2) },
        ]
        .iter()
        .map(|p| p.digest().hex())
        .collect();
        let mut unique = digests.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), digests.len(), "policy digests collide: {digests:?}");
    }

    #[test]
    fn scoreboard_demotes_at_threshold_and_stays_demoted() {
        let mut sb = AdaptiveState::new(2, 2);
        assert!(!sb.record_squash(0));
        assert!(!sb.is_demoted(0));
        assert!(sb.record_squash(0), "second squash crosses the threshold");
        assert!(sb.is_demoted(0));
        // Further squashes report no *new* demotion; commits cannot rescue.
        assert!(!sb.record_squash(0));
        sb.record_commit(0);
        sb.record_commit(0);
        assert!(sb.is_demoted(0));
        assert_eq!(sb.demotions(), 1);
        assert!(!sb.is_demoted(1), "other pairs are untouched");
    }

    #[test]
    fn commits_cool_the_counter_before_demotion() {
        let mut sb = AdaptiveState::new(1, 2);
        assert!(!sb.record_squash(0));
        sb.record_commit(0); // back to 0
        assert!(!sb.record_squash(0)); // 1 again: still below 2
        assert!(!sb.is_demoted(0));
        assert!(sb.record_squash(0));
        assert_eq!(sb.tallies(0), (0, 3, 1));
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut sb = AdaptiveState::new(1, 0);
        assert!(!sb.is_demoted(0), "no pair is pre-demoted");
        assert!(sb.record_squash(0), "first squash demotes at the clamped threshold");
    }
}
