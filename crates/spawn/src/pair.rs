//! Spawning pairs and the spawn table.

use std::collections::BTreeMap;

use specmt_isa::Pc;
use specmt_store::{Fingerprint, FingerprintHasher};

use crate::adaptive::AdaptivePolicy;

/// How a spawning pair was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairOrigin {
    /// Selected by the profile-based reaching-probability analysis.
    Profile,
    /// Injected call→return-point pair (§3.1's final step).
    ReturnPair,
    /// Loop-iteration heuristic: the head of a loop spawns its next
    /// iteration.
    LoopIteration,
    /// Loop-continuation heuristic: the head of a loop spawns the code
    /// after the loop.
    LoopContinuation,
    /// Subroutine-continuation heuristic: a call spawns its return point.
    SubroutineContinuation,
    /// MEM-slicing (Codrescu & Wills): a recurring memory instruction
    /// spawns its next occurrence.
    MemSlice,
}

/// One spawning pair with its profile statistics and ranking score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpawnPair {
    /// The spawning point: reaching this instruction fires a spawn.
    pub sp: Pc,
    /// The control quasi-independent point: where the speculative thread
    /// starts (and the join point of its predecessor).
    pub cqip: Pc,
    /// Estimated probability of reaching `cqip` after `sp` before `sp`
    /// repeats.
    pub prob: f64,
    /// Expected dynamic instructions from `sp` to `cqip`.
    pub avg_dist: f64,
    /// Ranking score among alternatives with the same `sp` (higher is
    /// better); its meaning depends on the selection criterion.
    pub score: f64,
    /// Provenance.
    pub origin: PairOrigin,
}

/// The ordered set of spawning pairs a simulation runs with.
///
/// For each spawning point, alternative CQIPs are kept best-score-first; the
/// base policy uses only the first, while the paper's *reassign* policy
/// (§4.2) falls back to later candidates. Removal state is runtime state and
/// lives in the simulator, not here — the table itself is immutable.
///
/// # Examples
///
/// ```
/// use specmt_isa::Pc;
/// use specmt_spawn::{PairOrigin, SpawnPair, SpawnTable};
///
/// let mk = |sp, cqip, score| SpawnPair {
///     sp: Pc(sp), cqip: Pc(cqip), prob: 1.0, avg_dist: 40.0, score,
///     origin: PairOrigin::Profile,
/// };
/// let table = SpawnTable::from_pairs(vec![mk(3, 9, 1.0), mk(3, 7, 5.0)]);
/// assert_eq!(table.num_spawning_points(), 1);
/// // Best-scored candidate first.
/// assert_eq!(table.candidates(Pc(3))[0].cqip, Pc(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpawnTable {
    by_sp: BTreeMap<u32, Vec<SpawnPair>>,
    /// Runtime gate parameters attached by an adaptive scheme; `None` for
    /// every offline scheme's output.
    adaptive: Option<AdaptivePolicy>,
}

serde::impl_serde_enum!(PairOrigin {
    Profile,
    ReturnPair,
    LoopIteration,
    LoopContinuation,
    SubroutineContinuation,
    MemSlice,
});

serde::impl_serde_struct!(SpawnPair {
    sp,
    cqip,
    prob,
    avg_dist,
    score,
    origin,
});

// A table without a policy serialises as the bare pair array it always
// did, so every previously-written table document (and store entry) parses
// unchanged; a policy promotes the form to `{pairs, adaptive}`.
impl serde::Serialize for SpawnTable {
    fn to_value(&self) -> serde::Value {
        let pairs = serde::Serialize::to_value(&self.iter().copied().collect::<Vec<_>>());
        match &self.adaptive {
            None => pairs,
            Some(policy) => serde::Value::Object(vec![
                ("pairs".to_owned(), pairs),
                ("adaptive".to_owned(), serde::Serialize::to_value(policy)),
            ]),
        }
    }
}

// Deserialization funnels through `from_pairs` so loaded tables are always
// deduplicated and score-ordered, whatever the input claimed.
impl serde::Deserialize for SpawnTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let (pairs_value, adaptive) = match v {
            serde::Value::Object(_) => {
                let pairs = v.get("pairs").ok_or_else(|| {
                    serde::Error::custom("SpawnTable object form is missing `pairs`")
                })?;
                let policy = v
                    .get("adaptive")
                    .map(<AdaptivePolicy as serde::Deserialize>::from_value)
                    .transpose()?;
                (pairs, policy)
            }
            _ => (v, None),
        };
        let pairs = <Vec<SpawnPair> as serde::Deserialize>::from_value(pairs_value)?;
        let table = SpawnTable::from_pairs(pairs);
        Ok(match adaptive {
            Some(policy) => table.with_adaptive(policy),
            None => table,
        })
    }
}

impl Fingerprint for PairOrigin {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.str(match self {
            PairOrigin::Profile => "profile",
            PairOrigin::ReturnPair => "return-pair",
            PairOrigin::LoopIteration => "loop-iteration",
            PairOrigin::LoopContinuation => "loop-continuation",
            PairOrigin::SubroutineContinuation => "subroutine-continuation",
            PairOrigin::MemSlice => "mem-slice",
        });
    }
}

impl Fingerprint for SpawnPair {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("SpawnPair");
        h.u64(u64::from(self.sp.0));
        h.u64(u64::from(self.cqip.0));
        h.f64(self.prob);
        h.f64(self.avg_dist);
        h.f64(self.score);
        self.origin.fingerprint(h);
    }
}

// A table's fingerprint covers its full content in its deterministic
// (BTreeMap) order, so simulation results keyed on an *ad-hoc* table —
// ablation sweeps, custom schemes, hand-merged tables — are addressed by
// what the table actually contains, not by how it was produced.
impl Fingerprint for SpawnTable {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("SpawnTable");
        h.seq(self.num_pairs());
        for p in self.iter() {
            p.fingerprint(h);
        }
        // Policy-free tables keep the digest they had before the adaptive
        // field existed (no trailing `none` marker); a policy extends the
        // digest, so a gate-threshold change re-keys every simulation run
        // against the table.
        if let Some(policy) = &self.adaptive {
            h.some();
            policy.fingerprint(h);
        }
    }
}

impl SpawnTable {
    /// Creates an empty table (no spawning: single-threaded execution).
    pub fn empty() -> SpawnTable {
        SpawnTable::default()
    }

    /// Builds a table from a pair list: deduplicates `(sp, cqip)` keeping
    /// the higher score, groups by spawning point and sorts candidates by
    /// descending score (ties broken by ascending CQIP for determinism).
    pub fn from_pairs(pairs: Vec<SpawnPair>) -> SpawnTable {
        let mut by_sp: BTreeMap<u32, Vec<SpawnPair>> = BTreeMap::new();
        for p in pairs {
            let list = by_sp.entry(p.sp.0).or_default();
            if let Some(existing) = list.iter_mut().find(|e| e.cqip == p.cqip) {
                if p.score > existing.score {
                    *existing = p;
                }
            } else {
                list.push(p);
            }
        }
        for list in by_sp.values_mut() {
            list.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.cqip.cmp(&b.cqip)));
        }
        SpawnTable { by_sp, adaptive: None }
    }

    /// Attaches runtime gate parameters (used by the adaptive schemes).
    #[must_use]
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> SpawnTable {
        self.adaptive = Some(policy);
        self
    }

    /// The runtime gate parameters, if an adaptive scheme attached any.
    pub fn adaptive(&self) -> Option<&AdaptivePolicy> {
        self.adaptive.as_ref()
    }

    /// The ranked candidates for the spawning point `sp` (empty if `sp` is
    /// not a spawning point).
    pub fn candidates(&self, sp: Pc) -> &[SpawnPair] {
        self.by_sp.get(&sp.0).map_or(&[], Vec::as_slice)
    }

    /// Total number of pairs across all spawning points.
    pub fn num_pairs(&self) -> usize {
        self.by_sp.values().map(Vec::len).sum()
    }

    /// Number of distinct spawning points.
    pub fn num_spawning_points(&self) -> usize {
        self.by_sp.len()
    }

    /// Whether the table holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.by_sp.is_empty()
    }

    /// Iterates over all pairs, grouped by spawning point.
    pub fn iter(&self) -> impl Iterator<Item = &SpawnPair> + '_ {
        self.by_sp.values().flatten()
    }

    /// Merges two tables (re-running deduplication and ordering). The
    /// receiver's adaptive policy, if any, carries over; the other table's
    /// is dropped — merging is a pair-set operation, and two gate
    /// configurations have no meaningful union.
    pub fn merged(self, other: SpawnTable) -> SpawnTable {
        let mut pairs: Vec<SpawnPair> = self.iter().copied().collect();
        pairs.extend(other.iter().copied());
        let merged = SpawnTable::from_pairs(pairs);
        match self.adaptive {
            Some(policy) => merged.with_adaptive(policy),
            None => merged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(sp: u32, cqip: u32, score: f64) -> SpawnPair {
        SpawnPair {
            sp: Pc(sp),
            cqip: Pc(cqip),
            prob: 1.0,
            avg_dist: 40.0,
            score,
            origin: PairOrigin::Profile,
        }
    }

    #[test]
    fn empty_table_has_no_candidates() {
        let t = SpawnTable::empty();
        assert!(t.is_empty());
        assert!(t.candidates(Pc(0)).is_empty());
        assert_eq!(t.num_pairs(), 0);
    }

    #[test]
    fn candidates_sorted_by_score_then_cqip() {
        let t = SpawnTable::from_pairs(vec![
            mk(1, 10, 2.0),
            mk(1, 20, 5.0),
            mk(1, 30, 5.0),
            mk(2, 40, 1.0),
        ]);
        let c: Vec<u32> = t.candidates(Pc(1)).iter().map(|p| p.cqip.0).collect();
        assert_eq!(c, vec![20, 30, 10]);
        assert_eq!(t.num_spawning_points(), 2);
        assert_eq!(t.num_pairs(), 4);
    }

    #[test]
    fn duplicate_pairs_keep_higher_score() {
        let t = SpawnTable::from_pairs(vec![mk(1, 10, 2.0), mk(1, 10, 7.0), mk(1, 10, 3.0)]);
        assert_eq!(t.num_pairs(), 1);
        assert_eq!(t.candidates(Pc(1))[0].score, 7.0);
    }

    #[test]
    fn merged_combines_and_dedups() {
        let a = SpawnTable::from_pairs(vec![mk(1, 10, 2.0)]);
        let b = SpawnTable::from_pairs(vec![mk(1, 10, 9.0), mk(3, 30, 1.0)]);
        let m = a.merged(b);
        assert_eq!(m.num_pairs(), 2);
        assert_eq!(m.candidates(Pc(1))[0].score, 9.0);
    }

    #[test]
    fn iter_visits_every_pair() {
        let t = SpawnTable::from_pairs(vec![mk(1, 10, 1.0), mk(2, 20, 1.0), mk(2, 30, 2.0)]);
        assert_eq!(t.iter().count(), 3);
    }

    fn policy() -> AdaptivePolicy {
        AdaptivePolicy { demote_threshold: Some(2), confidence_threshold: Some(6) }
    }

    #[test]
    fn policy_free_tables_serialise_as_the_legacy_bare_array() {
        let t = SpawnTable::from_pairs(vec![mk(1, 10, 1.0)]);
        let v = serde::Serialize::to_value(&t);
        assert!(matches!(v, serde::Value::Array(_)), "legacy form must survive: {v:?}");
        let s = serde_json::to_string(&t).expect("serialize");
        let back: SpawnTable = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(t, back);
        assert!(back.adaptive().is_none());
    }

    #[test]
    fn adaptive_tables_round_trip_with_their_policy() {
        let t = SpawnTable::from_pairs(vec![mk(1, 10, 1.0), mk(2, 20, 3.0)]).with_adaptive(policy());
        let s = serde_json::to_string(&t).expect("serialize");
        let back: SpawnTable = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(t, back);
        assert_eq!(back.adaptive(), Some(&policy()));
    }

    #[test]
    fn adaptive_policy_extends_the_fingerprint() {
        use specmt_store::Fingerprint;
        let bare = SpawnTable::from_pairs(vec![mk(1, 10, 1.0)]);
        let gated = bare.clone().with_adaptive(policy());
        let other = bare.clone().with_adaptive(AdaptivePolicy {
            demote_threshold: Some(3),
            confidence_threshold: Some(6),
        });
        assert_ne!(bare.digest().hex(), gated.digest().hex());
        assert_ne!(gated.digest().hex(), other.digest().hex());
    }

    #[test]
    fn merged_keeps_the_receivers_policy() {
        let a = SpawnTable::from_pairs(vec![mk(1, 10, 2.0)]).with_adaptive(policy());
        let b = SpawnTable::from_pairs(vec![mk(3, 30, 1.0)]).with_adaptive(AdaptivePolicy {
            demote_threshold: Some(9),
            confidence_threshold: None,
        });
        let m = a.merged(b);
        assert_eq!(m.num_pairs(), 2);
        assert_eq!(m.adaptive(), Some(&policy()));
    }
}
