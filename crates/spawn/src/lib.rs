//! # specmt-spawn
//!
//! Thread-spawning pair selection — the core contribution of
//! *Thread-Spawning Schemes for Speculative Multithreading* (Marcuello &
//! González, HPCA 2002).
//!
//! A *spawning pair* is two program points: the **spawning point** (SP),
//! which fires thread creation when fetched, and the **control
//! quasi-independent point** (CQIP), where the speculative thread begins.
//! This crate provides both families of selectors the paper evaluates:
//!
//! * [`profile_pairs`] — the paper's profile-based scheme (§3.1): build the
//!   dynamic CFG from a profile trace, prune to 90 % instruction coverage,
//!   compute reaching probabilities and expected distances, keep pairs with
//!   probability ≥ 0.95 and distance ≥ 32 instructions, rank alternative
//!   CQIPs per SP by one of three criteria (maximum distance, most
//!   independent instructions, most independent-or-predictable
//!   instructions), and finally inject call→return-point pairs that meet
//!   the size constraint.
//! * [`heuristic_pairs`] — the construct-based baselines: loop-iteration,
//!   loop-continuation and subroutine-continuation spawning, and their
//!   combination (the comparison policy of Figure 8).
//!
//! Both produce a [`SpawnTable`], the interface the simulator consumes.
//!
//! A third, *online* family wraps either of the above (see [`adaptive`]):
//! the `scoreboard` and `conf-gated` schemes attach an [`AdaptivePolicy`]
//! to the base scheme's table, and the simulator consults it at runtime —
//! demoting pairs whose threads keep squashing, and gating spawns on
//! branch-predictor confidence.
//!
//! Every selector family is also wrapped in an object-safe [`SpawnScheme`]
//! implementation and registered by name in [`SchemeRegistry::builtin`], so
//! experiments and tools address policies uniformly and custom policies
//! plug in alongside the built-ins (see [`scheme`]).
//!
//! # Examples
//!
//! ```
//! use specmt_trace::Trace;
//! use specmt_workloads::{ijpeg, Scale};
//! use specmt_spawn::{profile_pairs, ProfileConfig};
//!
//! // Small rather than Tiny: a 16-iteration loop's 15/16 self-reaching
//! // probability would fall just below the paper's 0.95 threshold.
//! let w = ijpeg(Scale::Small);
//! let trace = Trace::generate(w.program.clone(), w.step_budget)?;
//! let result = profile_pairs(&trace, &ProfileConfig::default());
//! assert!(result.table.num_pairs() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
mod heuristics;
mod memslice;
mod pair;
mod profile;
mod returns;
pub mod scheme;

/// Code revision of the pair-selection stage, a component of profile- and
/// spawn-table-namespace store keys. Bump when any selector's output
/// changes for identical inputs (new tie-breaks, scoring tweaks, ...).
pub const CODE_REV: u32 = 1;

pub use adaptive::{
    AdaptivePolicy, AdaptiveState, ConfGatedScheme, ScoreboardScheme,
    DEFAULT_CONFIDENCE_THRESHOLD, DEFAULT_DEMOTE_THRESHOLD,
};
pub use heuristics::{heuristic_pairs, HeuristicSet};
pub use memslice::{memslice_pairs, MemSliceConfig};
pub use pair::{PairOrigin, SpawnPair, SpawnTable};
pub use profile::{profile_pairs, OrderCriterion, ProfileConfig, ProfileResult};
pub use returns::{return_pairs, ReturnPairStats};
pub use scheme::{
    SchemeError, SchemeParams, SchemeRegistry, SpawnScheme, BUILTIN_SCHEME_NAMES,
};
