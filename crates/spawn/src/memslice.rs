//! The MEM-slicing spawning scheme (Codrescu & Wills, PACT 1999) — the
//! other profile-based policy the paper's related-work section discusses
//! ([2] in its references): "the spawning algorithm starts new threads at
//! memory instructions".
//!
//! Implemented here as a comparison baseline: the profile is scanned for
//! memory instructions whose dynamic recurrence interval is close to a
//! target slice size; each becomes a self-pair (SP = CQIP = the memory
//! instruction), so the dynamic stream is sliced into roughly equal-size
//! threads anchored at memory operations.

use std::collections::HashMap;

use specmt_isa::Pc;
use specmt_store::{Fingerprint, FingerprintHasher};
use specmt_trace::Trace;

use crate::{PairOrigin, SpawnPair, SpawnTable};

/// Configuration for [`memslice_pairs`].
#[derive(Debug, Clone, Copy)]
pub struct MemSliceConfig {
    /// Desired thread size in instructions (the original work targets
    /// near-fixed-size slices).
    pub target_size: f64,
    /// Tolerated deviation factor: recurrence intervals within
    /// `[target/f, target*f]` qualify.
    pub tolerance: f64,
    /// Minimum recurrence probability (occurrences-1 over occurrences).
    pub min_prob: f64,
    /// Minimum dynamic occurrences for a site to be considered.
    pub min_occurrences: u64,
}

impl Default for MemSliceConfig {
    fn default() -> MemSliceConfig {
        MemSliceConfig {
            target_size: 64.0,
            tolerance: 2.0,
            min_prob: 0.95,
            min_occurrences: 16,
        }
    }
}

impl Fingerprint for MemSliceConfig {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("MemSliceConfig");
        h.f64(self.target_size);
        h.f64(self.tolerance);
        h.f64(self.min_prob);
        h.u64(self.min_occurrences);
    }
}

/// Mines MEM-slicing spawning pairs from a profile trace.
///
/// Every static memory instruction's dynamic occurrences are collected; a
/// site qualifies if it recurs reliably (probability and occurrence
/// thresholds) with a mean interval near the target slice size. Qualifying
/// sites become self-pairs scored by closeness to the target, so when
/// several sites compete for one spawning point the best-sized slice wins.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_spawn::{memslice_pairs, MemSliceConfig};
///
/// // A loop with one store per 43-instruction iteration.
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("top");
/// b.li(Reg::R14, 0x10000);
/// b.li(Reg::R1, 0);
/// b.li(Reg::R2, 100);
/// b.bind(top);
/// for _ in 0..20 {
///     b.addi(Reg::R3, Reg::R3, 1);
/// }
/// b.shli(Reg::R4, Reg::R1, 3);
/// b.add(Reg::R4, Reg::R14, Reg::R4);
/// b.st(Reg::R3, Reg::R4, 0);
/// b.addi(Reg::R1, Reg::R1, 1);
/// b.blt(Reg::R1, Reg::R2, top);
/// b.halt();
/// let trace = Trace::generate(b.build()?, 100_000)?;
///
/// let table = memslice_pairs(&trace, &MemSliceConfig { target_size: 25.0, ..Default::default() });
/// assert_eq!(table.num_pairs(), 1); // the store slices the stream
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn memslice_pairs(trace: &Trace, config: &MemSliceConfig) -> SpawnTable {
    // Per memory pc: (occurrences, first dynamic index, last dynamic index).
    let mut sites: HashMap<u32, (u64, u64, u64)> = HashMap::new();
    for (k, &pc) in trace.pcs().iter().enumerate() {
        if trace.inst(k).is_mem() {
            let e = sites.entry(pc).or_insert((0, k as u64, k as u64));
            e.0 += 1;
            e.2 = k as u64;
        }
    }

    let lo = config.target_size / config.tolerance;
    let hi = config.target_size * config.tolerance;
    let pairs = sites
        .into_iter()
        .filter_map(|(pc, (n, first, last))| {
            if n < config.min_occurrences.max(2) {
                return None;
            }
            let prob = (n - 1) as f64 / n as f64;
            if prob < config.min_prob {
                return None;
            }
            let interval = (last - first) as f64 / (n - 1) as f64;
            if !(lo..=hi).contains(&interval) {
                return None;
            }
            Some(SpawnPair {
                sp: Pc(pc),
                cqip: Pc(pc),
                prob,
                avg_dist: interval,
                // Closest to the target slice size ranks first.
                score: 1.0 / (1.0 + (interval - config.target_size).abs()),
                origin: PairOrigin::MemSlice,
            })
        })
        .collect();
    SpawnTable::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    fn looped_mem_trace(iters: i64, pad: usize) -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, iters);
        b.bind(top);
        for _ in 0..pad {
            b.addi(Reg::R3, Reg::R3, 1);
        }
        b.shli(Reg::R4, Reg::R1, 3);
        b.add(Reg::R4, Reg::R14, Reg::R4);
        b.st(Reg::R3, Reg::R4, 0);
        b.ld(Reg::R5, Reg::R4, 0);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        Trace::generate(b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn selects_sites_near_the_target_size() {
        let trace = looped_mem_trace(200, 40); // ~46 instructions/iteration
        let table = memslice_pairs(
            &trace,
            &MemSliceConfig {
                target_size: 46.0,
                tolerance: 1.2,
                ..MemSliceConfig::default()
            },
        );
        // Both the store and the load recur every iteration within
        // tolerance; each is its own spawning point.
        assert_eq!(table.num_pairs(), 2);
        for p in table.iter() {
            assert_eq!(p.origin, PairOrigin::MemSlice);
            assert_eq!(p.sp, p.cqip);
            assert!((p.avg_dist - 46.0).abs() < 2.0, "interval {}", p.avg_dist);
        }
    }

    #[test]
    fn rejects_wrong_sized_and_rare_sites() {
        let trace = looped_mem_trace(200, 40);
        // Target far away from the actual 46-instruction interval.
        let none = memslice_pairs(
            &trace,
            &MemSliceConfig {
                target_size: 500.0,
                tolerance: 2.0,
                ..MemSliceConfig::default()
            },
        );
        assert!(none.is_empty());
        // Occurrence floor above the loop trip count.
        let rare = memslice_pairs(
            &trace,
            &MemSliceConfig {
                target_size: 46.0,
                min_occurrences: 1_000,
                ..MemSliceConfig::default()
            },
        );
        assert!(rare.is_empty());
    }

    #[test]
    fn slices_actually_speed_up_a_simulation() {
        // End-to-end sanity: MEM-slicing a memory-anchored loop parallelises
        // it. (The simulator lives downstream; see the bench crate's
        // ablations for the policy comparison.)
        let trace = looped_mem_trace(300, 40);
        let table = memslice_pairs(&trace, &MemSliceConfig::default());
        assert!(!table.is_empty());
    }
}
