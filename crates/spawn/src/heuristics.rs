//! Construct-based spawning heuristics (the paper's comparison baselines).

use specmt_isa::{Pc, Program};
use specmt_store::{Fingerprint, FingerprintHasher};

use crate::{PairOrigin, SpawnPair, SpawnTable};

/// Which construct heuristics to enable.
///
/// The paper's Figure 8 baseline is the combination of all three
/// ([`HeuristicSet::all`]); §3 defines each individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicSet {
    /// Spawn the next iteration from the head of every loop.
    pub loop_iteration: bool,
    /// Spawn the loop continuation from the head of every loop.
    pub loop_continuation: bool,
    /// Spawn the return point from every subroutine call.
    pub subroutine_continuation: bool,
}

impl Fingerprint for HeuristicSet {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("HeuristicSet");
        h.bool(self.loop_iteration);
        h.bool(self.loop_continuation);
        h.bool(self.subroutine_continuation);
    }
}

impl HeuristicSet {
    /// All three heuristics (the paper's combined baseline).
    pub fn all() -> HeuristicSet {
        HeuristicSet {
            loop_iteration: true,
            loop_continuation: true,
            subroutine_continuation: true,
        }
    }

    /// Only loop-iteration spawning.
    pub fn loop_iteration_only() -> HeuristicSet {
        HeuristicSet {
            loop_iteration: true,
            loop_continuation: false,
            subroutine_continuation: false,
        }
    }

    /// Only loop-continuation spawning.
    pub fn loop_continuation_only() -> HeuristicSet {
        HeuristicSet {
            loop_iteration: false,
            loop_continuation: true,
            subroutine_continuation: false,
        }
    }

    /// Only subroutine-continuation spawning.
    pub fn subroutine_continuation_only() -> HeuristicSet {
        HeuristicSet {
            loop_iteration: false,
            loop_continuation: false,
            subroutine_continuation: true,
        }
    }
}

/// Builds the construct-heuristic spawn table for `program`.
///
/// * **Loop iteration**: the target of a backward branch is both the SP and
///   the CQIP — once an iteration starts, another is very likely.
/// * **Loop continuation**: the loop head is the SP; the instruction
///   following the backward branch (in static order) is the CQIP.
/// * **Subroutine continuation**: a call is the SP; the instruction
///   following it is the CQIP.
///
/// When one spawning point gets several candidates, they are ranked
/// loop-iteration > subroutine-continuation > loop-continuation, matching
/// the per-heuristic potential the authors report for this architecture in
/// their earlier study (reference 15 in the paper).
///
/// Probabilities and distances are not known statically; pairs carry
/// `prob = 1.0` and `avg_dist = 0.0` placeholders (the simulator never
/// consults them — the oracle trace decides what actually happens).
pub fn heuristic_pairs(program: &Program, set: HeuristicSet) -> SpawnTable {
    let mut pairs = Vec::new();
    for (idx, inst) in program.insts().iter().enumerate() {
        let pc = Pc(idx as u32);
        if let Some(target) = inst.control_target() {
            // A backward control transfer closes a loop.
            if target <= pc && !inst.is_call() {
                if set.loop_iteration {
                    pairs.push(SpawnPair {
                        sp: target,
                        cqip: target,
                        prob: 1.0,
                        avg_dist: 0.0,
                        score: 3.0,
                        origin: PairOrigin::LoopIteration,
                    });
                }
                if set.loop_continuation && (idx + 1) < program.len() {
                    pairs.push(SpawnPair {
                        sp: target,
                        cqip: pc.next(),
                        prob: 1.0,
                        avg_dist: 0.0,
                        score: 1.0,
                        origin: PairOrigin::LoopContinuation,
                    });
                }
            }
        }
        if inst.is_call() && set.subroutine_continuation && (idx + 1) < program.len() {
            pairs.push(SpawnPair {
                sp: pc,
                cqip: pc.next(),
                prob: 1.0,
                avg_dist: 0.0,
                score: 2.0,
                origin: PairOrigin::SubroutineContinuation,
            });
        }
    }
    SpawnTable::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    /// A loop with a call inside it.
    fn looped_call_program() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // @0
        b.li(Reg::R2, 5); // @1
        b.bind(top);
        b.call("leaf"); // @2
        b.addi(Reg::R1, Reg::R1, 1); // @3
        b.blt(Reg::R1, Reg::R2, top); // @4 backward branch -> @2
        b.halt(); // @5
        b.begin_func("leaf");
        b.ret(); // @6
        b.end_func();
        b.build().unwrap()
    }

    #[test]
    fn loop_iteration_pairs_self_target() {
        let t = heuristic_pairs(&looped_call_program(), HeuristicSet::loop_iteration_only());
        assert_eq!(t.num_pairs(), 1);
        let p = t.iter().next().unwrap();
        assert_eq!((p.sp, p.cqip), (Pc(2), Pc(2)));
        assert_eq!(p.origin, PairOrigin::LoopIteration);
    }

    #[test]
    fn loop_continuation_targets_after_latch() {
        let t = heuristic_pairs(
            &looped_call_program(),
            HeuristicSet::loop_continuation_only(),
        );
        assert_eq!(t.num_pairs(), 1);
        let p = t.iter().next().unwrap();
        assert_eq!((p.sp, p.cqip), (Pc(2), Pc(5)));
    }

    #[test]
    fn subroutine_continuation_targets_return_point() {
        let t = heuristic_pairs(
            &looped_call_program(),
            HeuristicSet::subroutine_continuation_only(),
        );
        assert_eq!(t.num_pairs(), 1);
        let p = t.iter().next().unwrap();
        assert_eq!((p.sp, p.cqip), (Pc(2), Pc(3)));
    }

    #[test]
    fn combined_ranks_loop_iteration_first() {
        let t = heuristic_pairs(&looped_call_program(), HeuristicSet::all());
        // All three pairs share SP @2.
        assert_eq!(t.num_spawning_points(), 1);
        let c = t.candidates(Pc(2));
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].origin, PairOrigin::LoopIteration);
        assert_eq!(c[1].origin, PairOrigin::SubroutineContinuation);
        assert_eq!(c[2].origin, PairOrigin::LoopContinuation);
    }

    #[test]
    fn straight_line_program_has_no_pairs() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.halt();
        let t = heuristic_pairs(&b.build().unwrap(), HeuristicSet::all());
        assert!(t.is_empty());
    }

    #[test]
    fn forward_branches_are_not_loops() {
        let mut b = ProgramBuilder::new();
        let skip = b.fresh_label("skip");
        b.beq(Reg::R1, Reg::ZERO, skip);
        b.li(Reg::R2, 1);
        b.bind(skip);
        b.halt();
        let t = heuristic_pairs(
            &b.build().unwrap(),
            HeuristicSet {
                loop_iteration: true,
                loop_continuation: true,
                subroutine_continuation: false,
            },
        );
        assert!(t.is_empty());
    }
}
