//! The profile-based spawning-pair selector (§3.1).

use specmt_analysis::{BasicBlocks, BlockStream, DynCfg, ReachingAnalysis};
use specmt_store::{Fingerprint, FingerprintHasher};
use specmt_trace::{DepGraph, Trace, NO_PRODUCER};

use crate::{return_pairs, PairOrigin, SpawnPair, SpawnTable};

/// How alternative CQIPs for the same spawning point are ranked (§3.1 lists
/// the three; §4.3.1 evaluates the latter two under realistic value
/// prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderCriterion {
    /// Maximise the expected SP→CQIP distance (the paper's default and
    /// overall best).
    #[default]
    MaxDistance,
    /// Maximise the number of spawned-thread instructions independent of
    /// the code between SP and CQIP.
    Independent,
    /// Maximise the number of spawned-thread instructions that are
    /// independent *or* depend only on stride-predictable live-in register
    /// values.
    Predictable,
}

/// Configuration of the profile-based selector. [`Default`] matches the
/// paper's evaluation: probability ≥ 0.95, distance ≥ 32 instructions,
/// 90 % CFG coverage, max-distance ordering, return pairs included.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Minimum reaching probability for a candidate pair.
    pub min_prob: f64,
    /// Minimum expected SP→CQIP distance, in instructions.
    pub min_distance: f64,
    /// Maximum expected SP→CQIP distance for basic-block pairs, or `None`
    /// for unbounded. §3 requires the distance "not be too small or too
    /// large": small threads cost overhead, large threads cause work
    /// imbalance. The paper quantifies only the minimum (32); we bound the
    /// maximum at 300 instructions by default. Return pairs are exempt, as
    /// in the paper (they are filtered by the size minimum only).
    pub max_distance: Option<f64>,
    /// Fraction of executed instructions the pruned CFG must cover.
    pub coverage: f64,
    /// CQIP ranking criterion.
    pub criterion: OrderCriterion,
    /// Whether to inject call→return-point pairs (§3.1's final step).
    pub include_return_pairs: bool,
    /// Occurrences sampled per pair when scoring the `Independent` /
    /// `Predictable` criteria.
    pub dep_samples: usize,
    /// Cap on the dependence-analysis window per sample, in instructions.
    pub max_score_window: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            min_prob: 0.95,
            min_distance: 32.0,
            max_distance: Some(300.0),
            coverage: 0.9,
            criterion: OrderCriterion::MaxDistance,
            include_return_pairs: true,
            dep_samples: 4,
            max_score_window: 2048,
        }
    }
}

impl Fingerprint for OrderCriterion {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.str(match self {
            OrderCriterion::MaxDistance => "max-distance",
            OrderCriterion::Independent => "independent",
            OrderCriterion::Predictable => "predictable",
        });
    }
}

impl Fingerprint for ProfileConfig {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("ProfileConfig");
        h.f64(self.min_prob);
        h.f64(self.min_distance);
        self.max_distance.fingerprint(h);
        h.f64(self.coverage);
        self.criterion.fingerprint(h);
        h.bool(self.include_return_pairs);
        h.u64(self.dep_samples as u64);
        h.u64(self.max_score_window as u64);
    }
}

/// Output of [`profile_pairs`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// The spawn table (profile pairs plus, if enabled, return pairs).
    pub table: SpawnTable,
    /// Number of basic-block pairs passing the probability and distance
    /// thresholds (Figure 2's "total pairs").
    pub selected_pairs: usize,
    /// Number of distinct spawning points among them (Figure 2's pairs
    /// "that have different spawning points").
    pub distinct_sps: usize,
    /// Blocks kept by the CFG pruning.
    pub kept_blocks: usize,
    /// Instruction coverage actually achieved by the kept blocks.
    pub coverage: f64,
}

// Serialized so the harness's disk cache can memoize profile runs.
serde::impl_serde_struct!(ProfileResult {
    table,
    selected_pairs,
    distinct_sps,
    kept_blocks,
    coverage,
});

/// Runs the full §3.1 pipeline on a profile trace.
///
/// 1. Build the dynamic CFG and prune it to `coverage` (90 % in the paper),
///    splicing edges around pruned blocks.
/// 2. Measure reaching probabilities and expected distances for all ordered
///    pairs of surviving blocks.
/// 3. Keep pairs with probability ≥ `min_prob` and distance ≥
///    `min_distance`; the SP and CQIP are the first instructions of the
///    respective blocks.
/// 4. Rank alternative CQIPs per SP by the configured criterion.
/// 5. Add call→return-point pairs meeting the size constraint.
pub fn profile_pairs(trace: &Trace, config: &ProfileConfig) -> ProfileResult {
    let bbs = BasicBlocks::of(trace.program());
    let stream = BlockStream::new(trace, &bbs);
    let mut cfg = DynCfg::build(&stream, &bbs);
    let summary = cfg.prune_to_coverage(config.coverage);
    let tracked = cfg.kept_blocks();
    let reach = ReachingAnalysis::compute(&stream, &tracked);

    let mut candidates = reach.pairs(config.min_prob, config.min_distance);
    if let Some(max) = config.max_distance {
        candidates.retain(|c| c.avg_dist <= max);
    }
    let selected_pairs = candidates.len();
    let mut sps: Vec<u32> = candidates.iter().map(|c| c.sp_block).collect();
    sps.sort_unstable();
    sps.dedup();
    let distinct_sps = sps.len();

    let mut pairs: Vec<SpawnPair> = match config.criterion {
        OrderCriterion::MaxDistance => candidates
            .iter()
            .map(|c| SpawnPair {
                sp: bbs.start(c.sp_block),
                cqip: bbs.start(c.cqip_block),
                prob: c.prob,
                avg_dist: c.avg_dist,
                score: c.avg_dist,
                origin: PairOrigin::Profile,
            })
            .collect(),
        OrderCriterion::Independent | OrderCriterion::Predictable => {
            let scorer = DepScorer::new(trace, &bbs, &stream, config);
            candidates
                .iter()
                .map(|c| {
                    let (indep, pred) = scorer.score(c.sp_block, c.cqip_block);
                    let score = match config.criterion {
                        OrderCriterion::Independent => indep,
                        _ => pred,
                    };
                    SpawnPair {
                        sp: bbs.start(c.sp_block),
                        cqip: bbs.start(c.cqip_block),
                        prob: c.prob,
                        avg_dist: c.avg_dist,
                        score,
                        origin: PairOrigin::Profile,
                    }
                })
                .collect()
        }
    };

    if config.include_return_pairs {
        let (ret_pairs, _) = return_pairs(trace, config.min_distance);
        pairs.extend(ret_pairs);
    }

    ProfileResult {
        table: SpawnTable::from_pairs(pairs),
        selected_pairs,
        distinct_sps,
        kept_blocks: tracked.len(),
        coverage: summary.coverage,
    }
}

/// Samples pair occurrences and scores the spawned-thread window by
/// transitive dependence on the spawn region.
struct DepScorer<'a> {
    trace: &'a Trace,
    deps: DepGraph,
    /// Event indices per block.
    occ: Vec<Vec<u32>>,
    /// `first_dyn` per event.
    event_dyn: Vec<u32>,
    samples: usize,
    max_window: usize,
}

impl std::fmt::Debug for DepScorer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepScorer")
            .field("samples", &self.samples)
            .field("max_window", &self.max_window)
            .finish()
    }
}

/// Dependence mask bit marking a load of memory written inside the spawn
/// region (never predictable: the paper does not predict memory values).
const MEM_BIT: u64 = 1 << 32;

impl<'a> DepScorer<'a> {
    fn new(
        trace: &'a Trace,
        bbs: &BasicBlocks,
        stream: &BlockStream,
        config: &ProfileConfig,
    ) -> DepScorer<'a> {
        let mut occ = vec![Vec::new(); bbs.num_blocks()];
        let mut event_dyn = Vec::with_capacity(stream.events().len());
        for (e, ev) in stream.events().iter().enumerate() {
            occ[ev.block as usize].push(e as u32);
            event_dyn.push(ev.first_dyn);
        }
        DepScorer {
            trace,
            deps: DepGraph::build(trace),
            occ,
            event_dyn,
            samples: config.dep_samples.max(1),
            max_window: config.max_score_window.max(16),
        }
    }

    /// Returns `(independent, predictable)` scores: the average number of
    /// thread instructions independent of the spawn region, and the average
    /// number independent or fed only by stride-predictable live-ins.
    fn score(&self, sp_block: u32, cqip_block: u32) -> (f64, f64) {
        let sp_occ = &self.occ[sp_block as usize];
        if sp_occ.is_empty() {
            return (0.0, 0.0);
        }
        let cqip_occ = &self.occ[cqip_block as usize];
        // Evenly-spaced sample of SP occurrences.
        let stride = (sp_occ.len() / self.samples).max(1);
        let mut windows: Vec<SampleWindow> = Vec::new();
        for &e_i in sp_occ.iter().step_by(stride).take(self.samples) {
            // Window closes at the next SP occurrence.
            let next_i = match sp_occ.binary_search(&(e_i + 1)) {
                Ok(p) | Err(p) => sp_occ.get(p).copied().unwrap_or(u32::MAX),
            };
            // First CQIP occurrence strictly after the SP event...
            let e_j = match cqip_occ.binary_search(&(e_i + 1)) {
                Ok(p) | Err(p) => match cqip_occ.get(p) {
                    Some(&e) => e,
                    None => continue,
                },
            };
            // ...that still falls inside the window.
            if sp_block != cqip_block && e_j >= next_i {
                continue;
            }
            let sp_dyn = self.event_dyn[e_i as usize] as usize;
            let cqip_dyn = self.event_dyn[e_j as usize] as usize;
            let dist = cqip_dyn - sp_dyn;
            let end = (cqip_dyn + dist.min(self.max_window)).min(self.trace.len());
            windows.push(self.analyse_window(sp_dyn, cqip_dyn, end));
        }
        if windows.is_empty() {
            return (0.0, 0.0);
        }

        // Per-register live-in predictability across the sampled
        // occurrences, with a fresh two-delta stride model per register.
        let mut predictable_reg = [true; specmt_isa::NUM_REGS];
        for (r, predictable) in predictable_reg.iter_mut().enumerate() {
            let values: Vec<u64> = windows.iter().filter_map(|w| w.live_in_values[r]).collect();
            if values.len() >= 2 {
                let mut hits = 0usize;
                let mut last = values[0];
                let mut stride = 0i64;
                for &v in &values[1..] {
                    if last.wrapping_add(stride as u64) == v {
                        hits += 1;
                    }
                    stride = v.wrapping_sub(last) as i64;
                    last = v;
                }
                *predictable = hits * 10 >= (values.len() - 1) * 6;
            }
            // With fewer than two observations, keep the optimistic default:
            // loop-invariant live-ins (base pointers, bounds) predict
            // perfectly with stride zero.
        }

        let mut indep_sum = 0.0;
        let mut pred_sum = 0.0;
        for w in &windows {
            let mut indep = 0u32;
            let mut pred = 0u32;
            for &mask in &w.masks {
                if mask == 0 {
                    indep += 1;
                    pred += 1;
                } else if mask & MEM_BIT == 0 {
                    let ok = predictable_reg
                        .iter()
                        .enumerate()
                        .all(|(r, &p)| mask & (1 << r) == 0 || p);
                    if ok {
                        pred += 1;
                    }
                }
            }
            indep_sum += indep as f64;
            pred_sum += pred as f64;
        }
        let n = windows.len() as f64;
        (indep_sum / n, pred_sum / n)
    }

    /// Computes, for each instruction of `[cqip_dyn, end)`, the transitive
    /// dependence mask on the spawn region `[sp_dyn, cqip_dyn)`: one bit per
    /// live-in register plus [`MEM_BIT`]; zero means independent. Also
    /// records each live-in register's value for predictability training.
    fn analyse_window(&self, sp_dyn: usize, cqip_dyn: usize, end: usize) -> SampleWindow {
        let mut masks = vec![0u64; end - cqip_dyn];
        let mut live_in_values = [None; specmt_isa::NUM_REGS];
        for k in cqip_dyn..end {
            let inst = self.trace.inst(k);
            let mut mask = 0u64;
            for (s, src) in inst.srcs().into_iter().enumerate() {
                let Some(r) = src else { continue };
                if r.is_zero() {
                    continue;
                }
                let p = self.deps.reg_producer(k, s);
                if p == NO_PRODUCER {
                    continue;
                }
                let p = p as usize;
                if p >= cqip_dyn {
                    mask |= masks[p - cqip_dyn];
                } else if p >= sp_dyn {
                    mask |= 1 << r.index();
                    live_in_values[r.index()].get_or_insert(self.trace.result_at(p));
                }
            }
            if inst.is_load() {
                let p = self.deps.mem_producer(k);
                if p != NO_PRODUCER {
                    let p = p as usize;
                    if p >= cqip_dyn {
                        mask |= masks[p - cqip_dyn];
                    } else if p >= sp_dyn {
                        mask |= MEM_BIT;
                    }
                }
            }
            masks[k - cqip_dyn] = mask;
        }
        SampleWindow {
            masks,
            live_in_values,
        }
    }
}

struct SampleWindow {
    masks: Vec<u64>,
    live_in_values: [Option<u64>; specmt_isa::NUM_REGS],
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{Pc, ProgramBuilder, Reg};

    /// A loop over independent array blocks: iterations only share the
    /// induction variable.
    fn independent_loop(n: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.shli(Reg::R3, Reg::R1, 3);
        b.add(Reg::R3, Reg::R14, Reg::R3);
        // 40 instructions of per-iteration work, independent across
        // iterations.
        for _ in 0..20 {
            b.ld(Reg::R4, Reg::R3, 0);
            b.st(Reg::R4, Reg::R3, 0);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        Trace::generate(b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn finds_loop_iteration_pair_in_independent_loop() {
        let trace = independent_loop(100);
        let result = profile_pairs(&trace, &ProfileConfig::default());
        assert!(result.selected_pairs >= 1, "no pairs selected");
        // The loop-body self pair (head @3 -> head @3) must be selected:
        // probability 99/100, distance 44.
        let head = Pc(3);
        let cands = result.table.candidates(head);
        assert!(
            cands.iter().any(|p| p.cqip == head),
            "missing self pair at {head}: {cands:?}"
        );
        let p = cands.iter().find(|p| p.cqip == head).unwrap();
        assert!(p.prob >= 0.95);
        assert!((p.avg_dist - 44.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_filters_low_probability_pairs() {
        let trace = independent_loop(100);
        let strict = profile_pairs(
            &trace,
            &ProfileConfig {
                min_prob: 0.999,
                ..ProfileConfig::default()
            },
        );
        let lax = profile_pairs(
            &trace,
            &ProfileConfig {
                min_prob: 0.5,
                ..ProfileConfig::default()
            },
        );
        assert!(strict.selected_pairs <= lax.selected_pairs);
    }

    #[test]
    fn distinct_sps_never_exceed_selected_pairs() {
        let trace = independent_loop(64);
        let r = profile_pairs(&trace, &ProfileConfig::default());
        assert!(r.distinct_sps <= r.selected_pairs);
        assert!(r.coverage >= 0.9);
        assert!(r.kept_blocks >= 1);
    }

    #[test]
    fn induction_variable_serialises_independence_but_predicts_away() {
        // Transitively, every instruction of an iteration hangs off the
        // induction variable produced by the previous iteration, so the
        // *independent* score is near zero — but the induction variable is
        // perfectly stride-predictable, so the *predictable* score recovers
        // nearly the whole 44-instruction thread. This asymmetry is exactly
        // why the paper introduces criterion (c).
        let trace = independent_loop(100);
        let score_for = |criterion| {
            let r = profile_pairs(
                &trace,
                &ProfileConfig {
                    criterion,
                    ..ProfileConfig::default()
                },
            );
            let head = Pc(3);
            r.table
                .candidates(head)
                .iter()
                .find(|p| p.cqip == head)
                .expect("self pair")
                .score
        };
        let indep = score_for(OrderCriterion::Independent);
        let pred = score_for(OrderCriterion::Predictable);
        assert!(indep < 5.0, "independent score {indep}");
        assert!(pred > 38.0, "predictable score {pred}");
    }

    #[test]
    fn predictable_criterion_dominates_independent() {
        // Predictable counts independent instructions too, so its score is
        // always >= the independent score.
        let trace = independent_loop(100);
        let ri = profile_pairs(
            &trace,
            &ProfileConfig {
                criterion: OrderCriterion::Independent,
                ..ProfileConfig::default()
            },
        );
        let rp = profile_pairs(
            &trace,
            &ProfileConfig {
                criterion: OrderCriterion::Predictable,
                ..ProfileConfig::default()
            },
        );
        for pi in ri.table.iter().filter(|p| p.origin == PairOrigin::Profile) {
            let pp = rp
                .table
                .candidates(pi.sp)
                .iter()
                .find(|p| p.cqip == pi.cqip)
                .expect("same pair set");
            assert!(
                pp.score >= pi.score - 1e-9,
                "predictable {} < independent {} for {:?}",
                pp.score,
                pi.score,
                (pi.sp, pi.cqip)
            );
        }
    }

    #[test]
    fn serial_chain_scores_low_on_independence() {
        // A loop where everything hangs off a serial accumulator.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 100);
        b.li(Reg::R5, 1);
        b.bind(top);
        for _ in 0..40 {
            b.muli(Reg::R5, Reg::R5, 3); // serial, value-unpredictable chain
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 1_000_000).unwrap();
        for criterion in [OrderCriterion::Independent, OrderCriterion::Predictable] {
            let r = profile_pairs(
                &trace,
                &ProfileConfig {
                    criterion,
                    ..ProfileConfig::default()
                },
            );
            let head = Pc(3);
            let p = r
                .table
                .candidates(head)
                .iter()
                .find(|p| p.cqip == head)
                .expect("self pair");
            // A multiplicative chain is neither independent nor
            // stride-predictable; only the induction-variable instructions
            // escape it.
            assert!(p.score < 10.0, "{criterion:?} score {}", p.score);
        }
    }

    #[test]
    fn return_pairs_can_be_disabled() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 50);
        b.bind(top);
        b.call("leaf");
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.begin_func("leaf");
        for _ in 0..40 {
            b.nop();
        }
        b.ret();
        b.end_func();
        let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
        let with = profile_pairs(&trace, &ProfileConfig::default());
        let without = profile_pairs(
            &trace,
            &ProfileConfig {
                include_return_pairs: false,
                ..ProfileConfig::default()
            },
        );
        let count = |t: &SpawnTable| {
            t.iter()
                .filter(|p| p.origin == PairOrigin::ReturnPair)
                .count()
        };
        assert!(count(&with.table) >= 1);
        assert_eq!(count(&without.table), 0);
    }
}
