//! Call→return-point pair mining.

use std::collections::HashMap;

use specmt_isa::Pc;
use specmt_trace::Trace;

use crate::{PairOrigin, SpawnPair};

/// Per-call-site statistics gathered while matching calls to returns in a
/// trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReturnPairStats {
    /// The call instruction (the spawning point).
    pub call_pc: Pc,
    /// Dynamic executions of the call.
    pub calls: u64,
    /// Calls whose matching return was observed.
    pub returns: u64,
    /// Average instructions from the call to the instruction after it
    /// (i.e. across the whole callee execution), over matched calls.
    pub avg_dist: f64,
}

/// Mines call→return-point spawning pairs from a trace (§3.1's final step).
///
/// The paper adds all pairs of subroutine calls and their return points that
/// satisfy the minimum size constraint, because functions called from
/// multiple sites dilute each site's reaching probability below the
/// threshold even though a call virtually always reaches its own return
/// point.
///
/// Calls and returns are matched by nesting depth in one pass over the
/// trace. Unreturned calls (still open when the program halts) count
/// against the pair's probability.
///
/// Returns the pairs with `avg_dist >= min_distance` plus the raw per-site
/// statistics.
pub fn return_pairs(trace: &Trace, min_distance: f64) -> (Vec<SpawnPair>, Vec<ReturnPairStats>) {
    // Open calls: stack of (call pc, dynamic index).
    let mut stack: Vec<(Pc, usize)> = Vec::new();
    // Per call-site: (calls, matched returns, total distance).
    let mut sites: HashMap<u32, (u64, u64, u64)> = HashMap::new();

    for k in 0..trace.len() {
        let inst = trace.inst(k);
        if inst.is_call() {
            let pc = trace.pc_at(k);
            sites.entry(pc.0).or_default().0 += 1;
            stack.push((pc, k));
        } else if inst.is_ret() {
            if let Some((call_pc, call_k)) = stack.pop() {
                let e = sites.entry(call_pc.0).or_default();
                e.1 += 1;
                // The return point executes at dynamic index k + 1.
                e.2 += (k + 1 - call_k) as u64;
            }
        }
    }

    let mut stats: Vec<ReturnPairStats> = sites
        .into_iter()
        .map(|(pc, (calls, returns, dist))| ReturnPairStats {
            call_pc: Pc(pc),
            calls,
            returns,
            avg_dist: if returns == 0 {
                0.0
            } else {
                dist as f64 / returns as f64
            },
        })
        .collect();
    stats.sort_by_key(|s| s.call_pc);

    let pairs = stats
        .iter()
        .filter(|s| s.returns > 0 && s.avg_dist >= min_distance)
        .map(|s| SpawnPair {
            sp: s.call_pc,
            cqip: s.call_pc.next(),
            prob: s.returns as f64 / s.calls as f64,
            avg_dist: s.avg_dist,
            score: s.avg_dist,
            origin: PairOrigin::ReturnPair,
        })
        .collect();
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    /// A driver calling a 40-instruction leaf function 10 times.
    fn call_heavy() -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 10);
        b.bind(top);
        b.call("leaf");
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.begin_func("leaf");
        for _ in 0..40 {
            b.addi(Reg::R3, Reg::R3, 1);
        }
        b.ret();
        b.end_func();
        Trace::generate(b.build().unwrap(), 100_000).unwrap()
    }

    #[test]
    fn finds_call_site_with_correct_distance() {
        let trace = call_heavy();
        let (pairs, stats) = return_pairs(&trace, 32.0);
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert_eq!(p.sp, Pc(2)); // the call instruction
        assert_eq!(p.cqip, Pc(3)); // the instruction after it
                                   // call + 40 body + ret = 42 dynamic instructions to the return point.
        assert_eq!(p.avg_dist, 42.0);
        assert_eq!(p.prob, 1.0);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].calls, 10);
        assert_eq!(stats[0].returns, 10);
    }

    #[test]
    fn short_callees_are_filtered() {
        let trace = call_heavy();
        let (pairs, _) = return_pairs(&trace, 100.0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn nested_calls_match_by_depth() {
        let mut b = ProgramBuilder::new();
        b.call("outer");
        b.halt();
        b.begin_func("outer");
        b.prologue();
        for _ in 0..20 {
            b.nop();
        }
        b.call("inner");
        b.epilogue_ret();
        b.end_func();
        b.begin_func("inner");
        for _ in 0..35 {
            b.nop();
        }
        b.ret();
        b.end_func();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let (pairs, stats) = return_pairs(&trace, 30.0);
        // Both call sites qualify; distances nest correctly.
        assert_eq!(stats.len(), 2);
        assert_eq!(pairs.len(), 2);
        let outer = pairs.iter().find(|p| p.sp == Pc(0)).unwrap();
        let inner = pairs.iter().find(|p| p.sp != Pc(0)).unwrap();
        assert!(outer.avg_dist > inner.avg_dist);
        // inner: call + 35 nops + ret = 37.
        assert_eq!(inner.avg_dist, 37.0);
    }

    #[test]
    fn unreturned_calls_lower_probability() {
        // A function that halts instead of returning half the time.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 4);
        b.bind(top);
        b.call("maybe");
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.begin_func("maybe");
        let fine = b.fresh_label("fine");
        b.li(Reg::R5, 3);
        for _ in 0..40 {
            b.nop();
        }
        b.blt(Reg::R1, Reg::R5, fine);
        b.halt(); // the 4th call never returns
        b.bind(fine);
        b.ret();
        b.end_func();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let (pairs, _) = return_pairs(&trace, 32.0);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].prob - 0.75).abs() < 1e-12);
    }
}
