//! The [`SpawnScheme`] trait and registry: spawning policies as first-class,
//! enumerable units.
//!
//! The paper's contribution is a *comparison of spawning schemes* — the
//! profile-based SP→CQIP selection against construct-based baselines — so
//! the policies themselves are the natural unit of extension. Every selector
//! family in this crate is wrapped in an object-safe [`SpawnScheme`]
//! implementation and registered by name in a [`SchemeRegistry`], so
//! experiments, tests and tools can address policies uniformly ("run
//! `profile` vs `loop-iteration` on this trace") and new policies plug in
//! without touching the harness.
//!
//! # Examples
//!
//! Run two built-in schemes on the same trace:
//!
//! ```
//! use specmt_trace::Trace;
//! use specmt_workloads::{ijpeg, Scale};
//! use specmt_spawn::{SchemeParams, SchemeRegistry};
//!
//! let w = ijpeg(Scale::Small);
//! let trace = Trace::generate(w.program.clone(), w.step_budget)?;
//! let registry = SchemeRegistry::builtin();
//! let params = SchemeParams::default();
//! let profile = registry.select("profile", &trace, &params)?;
//! let heur = registry.select("heuristics", &trace, &params)?;
//! assert!(profile.num_pairs() > 0);
//! assert!(heur.num_pairs() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Register a custom scheme (see `examples/policy_faceoff.rs` for a full
//! demonstration):
//!
//! ```
//! use specmt_spawn::{SchemeError, SchemeParams, SchemeRegistry, SpawnScheme, SpawnTable};
//! use specmt_trace::Trace;
//!
//! #[derive(Debug)]
//! struct NoSpawn;
//!
//! impl SpawnScheme for NoSpawn {
//!     fn name(&self) -> &str {
//!         "no-spawn"
//!     }
//!     fn describe(&self) -> String {
//!         "never spawns (sequential control)".into()
//!     }
//!     fn select(&self, _: &Trace, _: &SchemeParams) -> Result<SpawnTable, SchemeError> {
//!         Ok(SpawnTable::empty())
//!     }
//! }
//!
//! let mut registry = SchemeRegistry::builtin();
//! registry.register(Box::new(NoSpawn))?;
//! assert!(registry.get("no-spawn").is_some());
//! # Ok::<(), specmt_spawn::SchemeError>(())
//! ```

use specmt_store::{Fingerprint, FingerprintHasher};
use specmt_trace::Trace;

use crate::adaptive::{
    ConfGatedScheme, ScoreboardScheme, DEFAULT_CONFIDENCE_THRESHOLD, DEFAULT_DEMOTE_THRESHOLD,
};
use crate::{
    heuristic_pairs, memslice_pairs, profile_pairs, return_pairs, HeuristicSet, MemSliceConfig,
    OrderCriterion, ProfileConfig, SpawnTable,
};

/// Parameters shared by every scheme's [`SpawnScheme::select`] call.
///
/// A scheme reads only the fields it understands: the profile family uses
/// [`ProfileConfig`] (each criterion variant overrides its `criterion`
/// field), MEM-slicing uses [`MemSliceConfig`], and the return-pair scheme
/// reuses the profile minimum distance as its size constraint. Custom
/// schemes may interpret the fields however they like.
#[derive(Debug, Clone, Default)]
pub struct SchemeParams {
    /// Configuration of the profile-based family (§3.1).
    pub profile: ProfileConfig,
    /// Configuration of the MEM-slicing baseline.
    pub memslice: MemSliceConfig,
}

impl Fingerprint for SchemeParams {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("SchemeParams");
        self.profile.fingerprint(h);
        self.memslice.fingerprint(h);
    }
}

/// Errors from scheme resolution and selection.
#[derive(Debug)]
#[non_exhaustive]
pub enum SchemeError {
    /// The requested scheme name is not registered.
    UnknownScheme {
        /// The unresolved name.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// A scheme with this name is already registered.
    DuplicateScheme {
        /// The conflicting name.
        name: String,
    },
    /// A scheme failed to produce a table (built-ins never do; the variant
    /// exists for custom [`SpawnScheme`] implementations).
    SelectionFailed {
        /// The failing scheme's name.
        scheme: String,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::UnknownScheme { name, known } => {
                write!(f, "unknown scheme `{name}` (known: {})", known.join(", "))
            }
            SchemeError::DuplicateScheme { name } => {
                write!(f, "scheme `{name}` is already registered")
            }
            SchemeError::SelectionFailed { scheme, message } => {
                write!(f, "scheme `{scheme}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// A thread-spawning policy: given a profile trace, produce the
/// [`SpawnTable`] the simulator runs with.
///
/// The trait is object-safe — registries hold `Box<dyn SpawnScheme>` — and
/// implementations must be `Send + Sync` so one registry can serve the
/// parallel experiment runner.
pub trait SpawnScheme: Send + Sync + std::fmt::Debug {
    /// The scheme's registry name (stable, kebab-case).
    fn name(&self) -> &str;

    /// A one-line human description.
    fn describe(&self) -> String;

    /// Selects the spawning pairs for `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::SelectionFailed`] if the scheme cannot produce
    /// a table (built-in schemes are infallible).
    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError>;

    /// A stable identity string for content-addressed caching of this
    /// scheme's tables, or `None` if tables must never be cached.
    ///
    /// `None` — the default — is the safe answer: the store cannot see a
    /// custom scheme's internal state, so caching is strictly opt-in. A
    /// scheme that returns `Some(id)` promises that `select` is a pure
    /// function of `(trace, params, id)`; change the string (e.g. a `/v2`
    /// suffix) whenever selection semantics change.
    fn cache_identity(&self) -> Option<String> {
        None
    }
}

/// The profile-based family (§3.1), one instance per CQIP ordering
/// criterion.
#[derive(Debug, Clone, Copy)]
struct ProfileScheme {
    criterion: OrderCriterion,
}

impl SpawnScheme for ProfileScheme {
    fn name(&self) -> &str {
        match self.criterion {
            OrderCriterion::MaxDistance => "profile",
            OrderCriterion::Independent => "profile-independent",
            OrderCriterion::Predictable => "profile-predictable",
        }
    }

    fn describe(&self) -> String {
        let criterion = match self.criterion {
            OrderCriterion::MaxDistance => "maximum expected SP->CQIP distance",
            OrderCriterion::Independent => "most independent thread instructions",
            OrderCriterion::Predictable => "most independent-or-predictable thread instructions",
        };
        format!("profile-based pair selection (criterion: {criterion})")
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        let config = ProfileConfig {
            criterion: self.criterion,
            ..params.profile.clone()
        };
        Ok(profile_pairs(trace, &config).table)
    }

    fn cache_identity(&self) -> Option<String> {
        Some(format!("builtin/{}", self.name()))
    }
}

/// The construct-based heuristics, individually and combined.
#[derive(Debug, Clone, Copy)]
struct HeuristicScheme {
    name: &'static str,
    describe: &'static str,
    set: HeuristicSet,
}

impl SpawnScheme for HeuristicScheme {
    fn name(&self) -> &str {
        self.name
    }

    fn describe(&self) -> String {
        self.describe.into()
    }

    fn select(&self, trace: &Trace, _: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        Ok(heuristic_pairs(trace.program(), self.set))
    }

    // The heuristic set is a pure function of the scheme name, so the name
    // alone identifies selection.
    fn cache_identity(&self) -> Option<String> {
        Some(format!("builtin/{}", self.name))
    }
}

/// The MEM-slicing baseline (Codrescu & Wills).
#[derive(Debug, Clone, Copy)]
struct MemSliceScheme;

impl SpawnScheme for MemSliceScheme {
    fn name(&self) -> &str {
        "memslice"
    }

    fn describe(&self) -> String {
        "MEM-slicing: recurring memory instructions anchor fixed-size slices".into()
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        Ok(memslice_pairs(trace, &params.memslice))
    }

    fn cache_identity(&self) -> Option<String> {
        Some("builtin/memslice".to_owned())
    }
}

/// Call→return-point pairs alone (§3.1's final injection step as a
/// standalone policy).
#[derive(Debug, Clone, Copy)]
struct ReturnPairScheme;

impl SpawnScheme for ReturnPairScheme {
    fn name(&self) -> &str {
        "return-pairs"
    }

    fn describe(&self) -> String {
        "call->return-point pairs meeting the minimum size constraint".into()
    }

    fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
        let (pairs, _) = return_pairs(trace, params.profile.min_distance);
        Ok(SpawnTable::from_pairs(pairs))
    }

    fn cache_identity(&self) -> Option<String> {
        Some("builtin/return-pairs".to_owned())
    }
}

/// A named collection of spawning schemes.
///
/// [`SchemeRegistry::builtin`] holds every policy this crate implements;
/// [`SchemeRegistry::register`] adds custom ones. Lookup is by exact name.
#[derive(Debug, Default)]
pub struct SchemeRegistry {
    schemes: Vec<Box<dyn SpawnScheme>>,
}

/// Names of the built-in schemes, in registry order.
pub const BUILTIN_SCHEME_NAMES: [&str; 11] = [
    "profile",
    "profile-independent",
    "profile-predictable",
    "heuristics",
    "loop-iteration",
    "loop-continuation",
    "subroutine-continuation",
    "memslice",
    "return-pairs",
    "scoreboard",
    "conf-gated",
];

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> SchemeRegistry {
        SchemeRegistry::default()
    }

    /// Every built-in scheme: the three profile criteria, the four
    /// construct-heuristic combinations, MEM-slicing, standalone return
    /// pairs, and the two adaptive wrappers over the profile scheme
    /// (names in [`BUILTIN_SCHEME_NAMES`]).
    pub fn builtin() -> SchemeRegistry {
        let mut r = SchemeRegistry::new();
        let builtins: Vec<Box<dyn SpawnScheme>> = vec![
            Box::new(ProfileScheme {
                criterion: OrderCriterion::MaxDistance,
            }),
            Box::new(ProfileScheme {
                criterion: OrderCriterion::Independent,
            }),
            Box::new(ProfileScheme {
                criterion: OrderCriterion::Predictable,
            }),
            Box::new(HeuristicScheme {
                name: "heuristics",
                describe: "all three construct heuristics combined (the Figure 8 baseline)",
                set: HeuristicSet::all(),
            }),
            Box::new(HeuristicScheme {
                name: "loop-iteration",
                describe: "loop heads spawn their next iteration",
                set: HeuristicSet::loop_iteration_only(),
            }),
            Box::new(HeuristicScheme {
                name: "loop-continuation",
                describe: "loop heads spawn the code after the loop",
                set: HeuristicSet::loop_continuation_only(),
            }),
            Box::new(HeuristicScheme {
                name: "subroutine-continuation",
                describe: "calls spawn their return points",
                set: HeuristicSet::subroutine_continuation_only(),
            }),
            Box::new(MemSliceScheme),
            Box::new(ReturnPairScheme),
            Box::new(ScoreboardScheme::new(
                Box::new(ProfileScheme {
                    criterion: OrderCriterion::MaxDistance,
                }),
                DEFAULT_DEMOTE_THRESHOLD,
            )),
            Box::new(ConfGatedScheme::new(
                Box::new(ProfileScheme {
                    criterion: OrderCriterion::MaxDistance,
                }),
                DEFAULT_CONFIDENCE_THRESHOLD,
            )),
        ];
        for s in builtins {
            r.register(s).expect("builtin names are unique");
        }
        r
    }

    /// Registers a scheme.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::DuplicateScheme`] if the name is taken.
    pub fn register(&mut self, scheme: Box<dyn SpawnScheme>) -> Result<(), SchemeError> {
        if self.get(scheme.name()).is_some() {
            return Err(SchemeError::DuplicateScheme {
                name: scheme.name().to_owned(),
            });
        }
        self.schemes.push(scheme);
        Ok(())
    }

    /// Looks a scheme up by exact name.
    pub fn get(&self, name: &str) -> Option<&dyn SpawnScheme> {
        self.schemes
            .iter()
            .find(|s| s.name() == name)
            .map(Box::as_ref)
    }

    /// Resolves `name` and runs its selection on `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::UnknownScheme`] for an unregistered name, or
    /// the scheme's own failure.
    pub fn select(
        &self,
        name: &str,
        trace: &Trace,
        params: &SchemeParams,
    ) -> Result<SpawnTable, SchemeError> {
        let scheme = self.get(name).ok_or_else(|| SchemeError::UnknownScheme {
            name: name.to_owned(),
            // Sorted so the suggestion list is deterministic regardless of
            // registration order.
            known: {
                let mut known: Vec<String> =
                    self.names().iter().map(|&n| n.to_owned()).collect();
                known.sort_unstable();
                known
            },
        })?;
        scheme.select(trace, params)
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.schemes.iter().map(|s| s.name()).collect()
    }

    /// Iterates over the registered schemes in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn SpawnScheme> + '_ {
        self.schemes.iter().map(Box::as_ref)
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    fn loop_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 100);
        b.bind(top);
        b.shli(Reg::R3, Reg::R1, 3);
        b.add(Reg::R3, Reg::R14, Reg::R3);
        for _ in 0..20 {
            b.ld(Reg::R4, Reg::R3, 0);
            b.st(Reg::R4, Reg::R3, 0);
        }
        b.call("leaf");
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.begin_func("leaf");
        for _ in 0..40 {
            b.nop();
        }
        b.ret();
        b.end_func();
        Trace::generate(b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn builtin_registry_matches_published_names() {
        let r = SchemeRegistry::builtin();
        assert_eq!(r.names(), BUILTIN_SCHEME_NAMES);
        assert_eq!(r.len(), BUILTIN_SCHEME_NAMES.len());
        for name in BUILTIN_SCHEME_NAMES {
            let s = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.name(), name);
            assert!(!s.describe().is_empty());
        }
    }

    #[test]
    fn builtin_schemes_match_direct_selectors() {
        let trace = loop_trace();
        let r = SchemeRegistry::builtin();
        let params = SchemeParams::default();

        let via_registry = r.select("profile", &trace, &params).unwrap();
        let direct = profile_pairs(&trace, &ProfileConfig::default()).table;
        assert_eq!(via_registry, direct);

        let via_registry = r.select("heuristics", &trace, &params).unwrap();
        let direct = heuristic_pairs(trace.program(), HeuristicSet::all());
        assert_eq!(via_registry, direct);

        let via_registry = r.select("memslice", &trace, &params).unwrap();
        let direct = memslice_pairs(&trace, &MemSliceConfig::default());
        assert_eq!(via_registry, direct);

        let via_registry = r.select("return-pairs", &trace, &params).unwrap();
        let direct =
            SpawnTable::from_pairs(return_pairs(&trace, params.profile.min_distance).0);
        assert_eq!(via_registry, direct);
    }

    #[test]
    fn params_flow_through_selection() {
        let trace = loop_trace();
        let r = SchemeRegistry::builtin();
        let strict = SchemeParams {
            profile: ProfileConfig {
                min_prob: 0.999_999,
                include_return_pairs: false,
                ..ProfileConfig::default()
            },
            ..SchemeParams::default()
        };
        let lax = SchemeParams::default();
        let t_strict = r.select("profile", &trace, &strict).unwrap();
        let t_lax = r.select("profile", &trace, &lax).unwrap();
        assert!(t_strict.num_pairs() <= t_lax.num_pairs());
    }

    #[test]
    fn unknown_scheme_lists_known_names() {
        let r = SchemeRegistry::builtin();
        let err = r
            .select("does-not-exist", &loop_trace(), &SchemeParams::default())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does-not-exist"), "{msg}");
        assert!(msg.contains("profile"), "{msg}");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = SchemeRegistry::builtin();
        let err = r.register(Box::new(MemSliceScheme)).unwrap_err();
        assert!(matches!(err, SchemeError::DuplicateScheme { .. }));
        assert_eq!(r.len(), BUILTIN_SCHEME_NAMES.len());
    }

    #[derive(Debug)]
    struct Everything;

    impl SpawnScheme for Everything {
        fn name(&self) -> &str {
            "everything"
        }
        fn describe(&self) -> String {
            "merges every built-in table".into()
        }
        fn select(&self, trace: &Trace, params: &SchemeParams) -> Result<SpawnTable, SchemeError> {
            let r = SchemeRegistry::builtin();
            let mut merged = SpawnTable::empty();
            for s in r.iter() {
                merged = merged.merged(s.select(trace, params)?);
            }
            Ok(merged)
        }
    }

    #[test]
    fn builtins_are_cacheable_custom_schemes_are_not() {
        let r = SchemeRegistry::builtin();
        for s in r.iter() {
            // Adaptive wrappers embed their gate threshold and their base's
            // identity; the offline builtins are identified by name alone.
            let want = match s.name() {
                "scoreboard" => {
                    format!("scoreboard[t={DEFAULT_DEMOTE_THRESHOLD}]/builtin/profile")
                }
                "conf-gated" => {
                    format!("conf-gated[t={DEFAULT_CONFIDENCE_THRESHOLD}]/builtin/profile")
                }
                name => format!("builtin/{name}"),
            };
            assert_eq!(s.cache_identity().as_deref(), Some(want.as_str()));
        }
        // Custom schemes default to uncacheable: the store cannot see
        // their internal state.
        assert_eq!(Everything.cache_identity(), None);
        // And an adaptive wrapper over an uncacheable base is itself
        // uncacheable — the wrapper cannot out-promise its base.
        assert_eq!(ScoreboardScheme::new(Box::new(Everything), 2).cache_identity(), None);
    }

    #[test]
    fn unknown_scheme_suggestions_are_sorted() {
        let r = SchemeRegistry::builtin();
        let err = r
            .select("nope", &loop_trace(), &SchemeParams::default())
            .unwrap_err();
        let SchemeError::UnknownScheme { known, .. } = err else {
            panic!("wrong error variant: {err}");
        };
        let mut sorted = known.clone();
        sorted.sort_unstable();
        assert_eq!(known, sorted, "suggestion list must be sorted");
        assert_eq!(known.len(), BUILTIN_SCHEME_NAMES.len());
    }

    #[test]
    fn adaptive_builtins_attach_policies_over_the_profile_table() {
        let trace = loop_trace();
        let r = SchemeRegistry::builtin();
        let params = SchemeParams::default();
        let profile = r.select("profile", &trace, &params).unwrap();
        assert!(profile.adaptive().is_none());

        let sb = r.select("scoreboard", &trace, &params).unwrap();
        let policy = sb.adaptive().expect("scoreboard attaches a policy");
        assert_eq!(policy.demote_threshold, Some(DEFAULT_DEMOTE_THRESHOLD));
        assert_eq!(policy.confidence_threshold, None);

        let cg = r.select("conf-gated", &trace, &params).unwrap();
        let policy = cg.adaptive().expect("conf-gated attaches a policy");
        assert_eq!(policy.demote_threshold, None);
        assert_eq!(policy.confidence_threshold, Some(DEFAULT_CONFIDENCE_THRESHOLD));

        // Same pairs as the base scheme — only the runtime policy differs.
        let sb_pairs: Vec<_> = sb.iter().copied().collect();
        let base_pairs: Vec<_> = profile.iter().copied().collect();
        assert_eq!(sb_pairs, base_pairs);
    }

    #[test]
    fn custom_scheme_registers_and_selects() {
        let mut r = SchemeRegistry::builtin();
        r.register(Box::new(Everything)).unwrap();
        let trace = loop_trace();
        let t = r
            .select("everything", &trace, &SchemeParams::default())
            .unwrap();
        let profile = r
            .select("profile", &trace, &SchemeParams::default())
            .unwrap();
        assert!(t.num_pairs() >= profile.num_pairs());
    }
}
