//! The `specmt` command-line tool: run the paper pipeline from a shell.
//!
//! ```text
//! specmt list [--scale tiny|small|medium|large]
//! specmt disasm  <workload|file.s>
//! specmt trace   <workload> --out trace.smtr
//! specmt pairs   <workload|trace.smtr|file.s> [--policy <scheme>|none]
//! specmt simulate <workload|trace.smtr|file.s> [--policy P] [--tus N]
//!                 [--vp perfect|stride|fcm|hybrid|last|none] [--overhead N] [--min-size N]
//!                 [--faults seed=N,squash=R,drop=R,corrupt=R,jitter=N,remove=R]
//! specmt bench   <figure-id|all> [--scale S] [--json PATH] [--jobs N] [--deadline SECS] [--max-retries K]
//! specmt bench   --list
//! specmt cache   stats|clear|gc [--max-bytes N]
//! specmt run     <file.s>
//! ```
//!
//! Inputs are resolved by suffix: `.smtr` loads a saved binary trace, `.s`
//! or `.asm` parses assembly text, anything else names a suite workload.
//!
//! `--policy` accepts any spawning scheme registered in
//! [`specmt::spawn::SchemeRegistry`] (see `specmt pairs --policy help`), or
//! `none` for an empty table. `bench` runs the figure registry: every
//! entry of the paper's evaluation plus the extra studies; `bench all`
//! regenerates every paper figure and persists machine-readable results
//! under `target/specmt-results/`.
//!
//! `cache` manages the content-addressed artifact store `bench` runs
//! against (`SPECMT_CACHE` / `SPECMT_CACHE_DIR` configure it, resolved once
//! at startup): `stats` prints disk usage and the previous run's hit/miss
//! counters, `clear` empties it, `gc --max-bytes N` evicts least-recently
//! used entries down to a byte budget.

use std::process::ExitCode;

use specmt::bench::figures::{self, FigureGroup};
use specmt::bench::Harness;
use specmt::predict::ValuePredictorKind;
use specmt::sim::{FaultPlan, SimConfig, Simulator};
use specmt::spawn::{SchemeParams, SchemeRegistry, SpawnTable, BUILTIN_SCHEME_NAMES};
use specmt::store::Store;
use specmt::trace::Trace;
use specmt::workloads::{Scale, SUITE_NAMES};

type CliError = Box<dyn std::error::Error>;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("specmt: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["list"];

impl Args {
    fn parse(raw: Vec<String>) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if BOOL_FLAGS.contains(&name) {
                    String::new()
                } else {
                    it.next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?
                };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Rejects any flag a command does not understand, so a typo'd flag
    /// errors out instead of silently doing nothing.
    fn check_flags(&self, allowed: &[&str]) -> Result<(), CliError> {
        for (name, _) in &self.flags {
            if !allowed.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag --{name} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
                .into());
            }
        }
        Ok(())
    }

    fn scale(&self) -> Result<Scale, CliError> {
        Ok(match self.flag("scale").unwrap_or("medium") {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            "large" => Scale::Large,
            other => return Err(format!("unknown scale `{other}`").into()),
        })
    }
}

fn load_trace(input: &str, scale: Scale) -> Result<Trace, CliError> {
    if input.ends_with(".smtr") {
        let file = std::fs::File::open(input)?;
        return Ok(Trace::read_from(std::io::BufReader::new(file))?);
    }
    let (program, budget) = if input.ends_with(".s") || input.ends_with(".asm") {
        let text = std::fs::read_to_string(input)?;
        (specmt::isa::parse_program(&text)?, 100_000_000)
    } else {
        let w = specmt::workloads::by_name(input, scale)
            .ok_or_else(|| format!("unknown workload `{input}` (try `specmt list`)"))?;
        (w.program, w.step_budget)
    };
    Ok(Trace::generate(program, budget)?)
}

fn build_table(args: &Args, trace: &Trace) -> Result<SpawnTable, CliError> {
    let policy = args.flag("policy").unwrap_or("profile");
    match policy {
        "none" => Ok(SpawnTable::empty()),
        "help" => Err(format!(
            "registered schemes: {}",
            BUILTIN_SCHEME_NAMES.join(", ")
        )
        .into()),
        name => Ok(SchemeRegistry::builtin().select(name, trace, &SchemeParams::default())?),
    }
}

fn run(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    let Some(command) = args.positional.first().map(String::as_str) else {
        print_usage();
        return Ok(());
    };
    let input = args.positional.get(1).map(String::as_str);
    let scale = args.scale()?;

    args.check_flags(match command {
        "list" | "disasm" | "run" => &["scale"][..],
        "trace" => &["scale", "out"],
        "pairs" => &["scale", "policy"],
        "simulate" => &[
            "scale", "policy", "tus", "vp", "overhead", "min-size", "faults",
        ],
        "bench" => &[
            "scale", "json", "list", "metrics", "jobs", "deadline", "max-retries",
        ],
        "cache" => &["max-bytes"],
        _ => &[],
    })?;

    match command {
        "list" => {
            println!(
                "{:10} {:>8} {:>12} {:>10}",
                "workload", "static", "dynamic", "pairs"
            );
            let registry = SchemeRegistry::builtin();
            for name in SUITE_NAMES {
                let w = specmt::workloads::by_name(name, scale)
                    .ok_or_else(|| format!("suite workload `{name}` missing at scale {scale:?}"))?;
                let trace = Trace::generate(w.program.clone(), w.step_budget)?;
                let pairs = registry.select("profile", &trace, &SchemeParams::default())?;
                println!(
                    "{:10} {:>8} {:>12} {:>10}",
                    name,
                    w.program.len(),
                    trace.len(),
                    pairs.num_pairs()
                );
            }
        }
        "disasm" => {
            let input = input.ok_or("disasm needs an input")?;
            let trace = load_trace(input, scale)?;
            print!("{}", trace.program().disassemble());
        }
        "trace" => {
            let input = input.ok_or("trace needs an input")?;
            let out = args.flag("out").ok_or("trace needs --out <file>")?;
            let trace = load_trace(input, scale)?;
            let file = std::fs::File::create(out)?;
            trace.write_to(std::io::BufWriter::new(file))?;
            let bytes = std::fs::metadata(out)?.len();
            println!(
                "{}: {} dynamic instructions -> {out} ({bytes} bytes, {:.1} B/record)",
                input,
                trace.len(),
                bytes as f64 / trace.len() as f64
            );
        }
        "pairs" => {
            let input = input.ok_or("pairs needs an input")?;
            let trace = load_trace(input, scale)?;
            let table = build_table(&args, &trace)?;
            println!(
                "{} pairs over {} spawning points:",
                table.num_pairs(),
                table.num_spawning_points()
            );
            for p in table.iter() {
                println!(
                    "  {:>6} -> {:<6} prob {:>6.3}  distance {:>8.1}  score {:>10.1}  {:?}",
                    p.sp.to_string(),
                    p.cqip.to_string(),
                    p.prob,
                    p.avg_dist,
                    p.score,
                    p.origin
                );
            }
        }
        "simulate" => {
            let input = input.ok_or("simulate needs an input")?;
            let trace = load_trace(input, scale)?;
            let table = build_table(&args, &trace)?;
            let tus: usize = args.flag("tus").unwrap_or("16").parse()?;
            let vp = match args.flag("vp").unwrap_or("perfect") {
                "perfect" => ValuePredictorKind::Perfect,
                "stride" => ValuePredictorKind::Stride,
                "fcm" => ValuePredictorKind::Fcm,
                "hybrid" => ValuePredictorKind::Hybrid,
                "last" => ValuePredictorKind::LastValue,
                "none" => ValuePredictorKind::None,
                other => return Err(format!("unknown predictor `{other}`").into()),
            };
            let mut cfg = SimConfig::paper(tus).with_value_predictor(vp);
            if let Some(o) = args.flag("overhead") {
                cfg = cfg.with_init_overhead(o.parse()?);
            }
            if let Some(m) = args.flag("min-size") {
                cfg.min_observed_size = Some(m.parse()?);
            }
            if let Some(spec) = args.flag("faults") {
                cfg = cfg.with_faults(FaultPlan::parse(spec)?);
            }
            let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run()?;
            let r = Simulator::with_table(&trace, cfg.clone(), &table).run()?;
            println!("instructions    {:>12}", r.committed_instructions);
            println!("baseline cycles {:>12}", baseline.cycles);
            println!("cycles          {:>12}", r.cycles);
            println!(
                "speed-up        {:>12.2}",
                baseline.cycles as f64 / r.cycles as f64
            );
            println!("ipc             {:>12.2}", r.ipc());
            println!("active threads  {:>12.2}", r.avg_active_threads());
            println!("threads         {:>12}", r.threads_committed);
            println!(
                "spawned/squashed{:>9}/{}",
                r.threads_spawned, r.threads_squashed
            );
            println!("avg thread size {:>12.1}", r.avg_thread_size());
            if r.value_predictions > 0 {
                println!("vp accuracy     {:>11.1}%", 100.0 * r.value_hit_ratio());
            }
            println!("branch accuracy {:>11.1}%", 100.0 * r.branch_hit_ratio());
            println!("violations      {:>12}", r.violations);
            if cfg.faults.is_some_and(|p| p.is_active()) {
                println!("-- injected faults --");
                println!("dropped spawns  {:>12}", r.fault_dropped_spawns);
                println!("forced squashes {:>12}", r.fault_forced_squashes);
                println!("corrupted vals  {:>12}", r.fault_corrupted_values);
                println!("jitter cycles   {:>12}", r.fault_jitter_cycles);
                println!("forced removals {:>12}", r.fault_forced_removals);
            }
        }
        "bench" => {
            if args.flag("list").is_some() {
                for def in figures::registry() {
                    let group = match def.group {
                        FigureGroup::Paper => "paper",
                        FigureGroup::Extra => "extra",
                    };
                    println!("{:<12} {:<6} {}", def.id, group, def.summary);
                }
                return Ok(());
            }
            let target = input.ok_or("bench needs a figure id or `all` (try --list)")?;
            let defs: Vec<&figures::FigureDef> = if target == "all" {
                figures::registry()
                    .iter()
                    .filter(|d| d.group == FigureGroup::Paper)
                    .collect()
            } else {
                vec![figures::by_id(target)
                    .ok_or_else(|| format!("unknown figure `{target}` (try --list)"))?]
            };
            // --scale wins; otherwise SPECMT_SCALE (default medium), so the
            // subcommand composes with the env var the harness already uses.
            let scale = match args.flag("scale") {
                Some(_) => args.scale()?,
                None => specmt::bench::scale_from_env()?,
            };
            let start = std::time::Instant::now();
            let mut h = Harness::load_at(scale)?;
            // Supervision knobs for the figure sweeps: a bounded worker
            // pool, a per-cell watchdog deadline, and a retry allowance.
            if let Some(jobs) = args.flag("jobs") {
                h.exec.jobs = jobs.parse()?;
            }
            if let Some(secs) = args.flag("deadline") {
                h.exec.deadline = Some(std::time::Duration::from_secs(secs.parse()?));
            }
            if let Some(k) = args.flag("max-retries") {
                h.exec.max_retries = k.parse()?;
            }
            eprintln!(
                "suite loaded at {:?} scale in {:.1}s",
                h.scale,
                start.elapsed().as_secs_f64()
            );
            // Figures run to completion even when one fails: partial
            // results (and the failures, as "error" entries) still reach
            // the --json summary instead of vanishing with an early abort.
            let outcome = figures::run_defs(&h, &defs, true);
            for fig in &outcome.figures {
                fig.print();
            }
            eprintln!("total {:.1}s", start.elapsed().as_secs_f64());
            let store_metrics = h.store.metrics();
            if h.store.enabled() {
                let sum = |suffix: &str| -> u64 {
                    store_metrics
                        .counters
                        .iter()
                        .filter(|c| c.name.ends_with(suffix))
                        .map(|c| c.value)
                        .sum()
                };
                eprintln!(
                    "store: {} hits, {} misses, {} writes, {} invalidations ({})",
                    sum("_hits"),
                    sum("_misses"),
                    sum("_stores"),
                    sum("_invalidations"),
                    h.store.config().dir.display()
                );
                // Make this run's counters readable by `specmt cache stats`.
                h.store.persist_last_run();
            }
            if let Some(mode) = args.flag("metrics") {
                write_metrics(&h, mode)?;
            }
            if let Some(path) = args.flag("json") {
                // Fault-injected simulations bypass the store entirely, and
                // a disabled store is never consulted: in either case an
                // all-zero counter object would read as "ran against an
                // empty store", so the embed says "bypassed" instead.
                let store_embed = if store_metrics.counters.iter().all(|c| c.value == 0) {
                    serde::Value::Str("bypassed".to_owned())
                } else {
                    serde::Serialize::to_value(&store_metrics)
                };
                let doc = serde_json::json!({
                    "scale": format!("{:?}", h.scale).to_lowercase(),
                    "target": target,
                    "figures": outcome.summary,
                    "store": store_embed,
                });
                std::fs::write(path, serde_json::to_string_pretty(&doc)? + "\n")?;
                eprintln!("wrote {path}");
            }
            // A lost result is still an error — but only after everything
            // that could be produced was produced and recorded.
            if let Some((id, e)) = outcome.errors.into_iter().next() {
                return Err(format!("figure `{id}` failed: {e}").into());
            }
        }
        "cache" => {
            let action = input.ok_or("cache needs an action: stats, clear, or gc")?;
            let store = Store::default_handle();
            match action {
                "stats" => {
                    let cfg = store.config();
                    println!(
                        "store {} ({})",
                        cfg.dir.display(),
                        if cfg.enabled { "enabled" } else { "disabled" }
                    );
                    println!("{:<12} {:>8} {:>14}", "namespace", "entries", "bytes");
                    let (mut entries, mut bytes) = (0u64, 0u64);
                    for u in store.usage() {
                        entries += u.entries;
                        bytes += u.bytes;
                        println!("{:<12} {:>8} {:>14}", u.namespace, u.entries, u.bytes);
                    }
                    println!("{:<12} {:>8} {:>14}", "total", entries, bytes);
                    match store.load_last_run() {
                        Some(run) => {
                            println!("last run:");
                            for c in &run.metrics.counters {
                                if c.value > 0 {
                                    println!("  {:<36} {:>8}", c.name, c.value);
                                }
                            }
                            for r in &run.invalidations {
                                println!(
                                    "  invalidated {}/{} at stage `{}`: changed {}",
                                    r.namespace,
                                    r.name,
                                    r.stage,
                                    r.changed.join(", ")
                                );
                            }
                        }
                        None => println!("last run: no recorded stats (run `specmt bench` first)"),
                    }
                }
                "clear" => {
                    store.clear()?;
                    println!("cleared {}", store.config().dir.display());
                }
                "gc" => {
                    let raw = args.flag("max-bytes").ok_or("gc needs --max-bytes <N>")?;
                    let max: u64 = raw
                        .parse()
                        .map_err(|_| format!("invalid --max-bytes `{raw}` (expected a byte count)"))?;
                    let report = store.gc(max);
                    println!(
                        "gc: removed {} entries ({} bytes), {} bytes kept",
                        report.removed_entries, report.removed_bytes, report.kept_bytes
                    );
                }
                other => {
                    return Err(format!(
                        "unknown cache action `{other}` (expected stats, clear, or gc)"
                    )
                    .into())
                }
            }
        }
        "run" => {
            let input = input.ok_or("run needs a .s file")?;
            let trace = load_trace(input, scale)?;
            println!("halted after {} instructions", trace.len());
            for r in specmt::isa::Reg::all() {
                let v = trace.final_reg(r);
                if v != 0 {
                    println!("  {r:>4} = {v:#x} ({v})");
                }
            }
        }
        other => {
            print_usage();
            return Err(format!("unknown command `{other}`").into());
        }
    }
    Ok(())
}

/// The `--metrics json|chrome` exports, written under
/// `target/specmt-results/` next to the figure payloads.
///
/// `json` aggregates a [`specmt::obs::Metrics`] snapshot per benchmark ×
/// built-in scheme (the paper-16 configuration); `chrome` replays each
/// benchmark's profile-table run through an event log and writes one
/// Chrome `trace_event` timeline per benchmark, viewable in
/// `chrome://tracing` or Perfetto.
fn write_metrics(h: &Harness, mode: &str) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::PathBuf::from("target/specmt-results");
    std::fs::create_dir_all(&dir)?;
    match mode {
        "json" => {
            let doc =
                specmt::bench::metrics_report(h, &SimConfig::paper(16), &BUILTIN_SCHEME_NAMES)?;
            let path = dir.join("metrics.json");
            std::fs::write(&path, serde_json::to_string_pretty(&doc)? + "\n")?;
            eprintln!("wrote {}", path.display());
        }
        "chrome" => {
            for ctx in &h.benches {
                let mut log = specmt::obs::EventLog::new();
                let table = ctx.table_for("profile", &h.registry, &h.params)?;
                ctx.bench
                    .run_observed(SimConfig::paper(16), &table, &mut log)?;
                let path = dir.join(format!("trace_{}.json", ctx.bench.name()));
                std::fs::write(&path, specmt::obs::chrome::trace_string(log.events())? + "\n")?;
                eprintln!(
                    "wrote {} ({} events)",
                    path.display(),
                    log.len()
                );
            }
        }
        other => return Err(format!("--metrics wants json or chrome, got `{other}`").into()),
    }
    Ok(())
}

fn print_usage() {
    eprintln!(
        "usage:\n  specmt list [--scale S]\n  specmt disasm <input>\n  specmt trace <input> --out f.smtr\n  specmt pairs <input> [--policy <scheme>|none]\n  specmt simulate <input> [--policy P] [--tus N] [--vp V] [--overhead N] [--min-size N] [--faults seed=N,squash=R,...]\n  specmt bench <figure-id|all> [--scale S] [--json PATH] [--metrics json|chrome] [--jobs N] [--deadline SECS] [--max-retries K]\n  specmt bench --list\n  specmt cache stats|clear|gc [--max-bytes N]\n  specmt run <file.s>\n\ninputs: a suite workload name, a saved .smtr trace, or an .s assembly file\nschemes: {}",
        BUILTIN_SCHEME_NAMES.join(", ")
    );
}
