//! # specmt — speculative multithreading toolkit
//!
//! A from-scratch reproduction of **“Thread-Spawning Schemes for Speculative
//! Multithreading”** (Pedro Marcuello and Antonio González, HPCA-8, 2002):
//! the profile-based spawning-pair selection algorithm, the construct-based
//! heuristics it is compared against, and a trace-driven timing model of the
//! Clustered Speculative Multithreaded Processor, together with a synthetic
//! SpecInt95-like workload suite to drive it all.
//!
//! This crate is a facade: it re-exports the component crates, the
//! [`Bench`] convenience wrapper, and the experiment harness (the
//! [`bench`] module) that regenerates the paper's figures behind the
//! `specmt bench` CLI.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `specmt-isa` | instruction set, programs, assembler |
//! | [`trace`] | `specmt-trace` | emulator, dynamic traces, dependence graphs |
//! | [`workloads`] | `specmt-workloads` | the eight SpecInt95 analogues |
//! | [`analysis`] | `specmt-analysis` | CFG, pruning, reaching probabilities |
//! | [`spawn`] | `specmt-spawn` | spawning-pair selection policies + the [`spawn::SchemeRegistry`] |
//! | [`predict`] | `specmt-predict` | gshare + value predictors |
//! | [`obs`] | `specmt-obs` | lifecycle events, metrics, Chrome trace export, conservation-law auditor |
//! | [`sim`] | `specmt-sim` | the CSMP timing model |
//! | [`exec`] | `specmt-exec` | supervised batch executor: panic isolation, deadlines, retries |
//! | [`store`] | `specmt-store` | content-addressed artifact store: stage keys, incremental recomputation |
//! | [`stats`] | `specmt-stats` | means, tables, charts |
//! | [`bench`] | `specmt-bench` | [`Bench`], the suite [`bench::Harness`], experiment specs, the figure registry |
//!
//! # Quick start
//!
//! Reproduce the paper's headline experiment on one benchmark:
//!
//! ```
//! use specmt::Bench;
//! use specmt::sim::SimConfig;
//! use specmt::spawn::ProfileConfig;
//! use specmt::workloads::Scale;
//!
//! let bench = Bench::load("ijpeg", Scale::Small)?;
//! let profile = bench.profile_table(&ProfileConfig::default());
//! let result = bench.run(SimConfig::paper(16), &profile.table)?;
//! let speedup = bench.speedup(&result)?;
//! assert!(speedup > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use specmt_analysis as analysis;
pub use specmt_isa as isa;
pub use specmt_exec as exec;
pub use specmt_obs as obs;
pub use specmt_predict as predict;
pub use specmt_sim as sim;
pub use specmt_spawn as spawn;
pub use specmt_stats as stats;
pub use specmt_store as store;
pub use specmt_trace as trace;
pub use specmt_workloads as workloads;

pub use specmt_bench as bench;
pub use specmt_bench::{Bench, BenchError};
