//! Analytical reaching probabilities on the (pruned) dynamic CFG.

use crate::{BlockId, DynCfg};

const MAX_ITERS: usize = 20_000;
const TOL: f64 = 1e-12;

/// The paper's matrix formulation of reaching probabilities, computed on the
/// (pruned) [`DynCfg`] as absorbing-random-walk solves.
///
/// Edge weights normalised by source occurrences define a sub-stochastic
/// transition matrix (missing mass models the walk dying in pruned or
/// terminal code). For a pair `(i, j)`:
///
/// * the **reaching probability** is the probability that a walk leaving
///   `i` visits `j` before returning to `i` — the §3.1 constraint that the
///   source and destination appear only as the sequence endpoints;
/// * the **expected distance** is the expected number of instructions
///   executed from the first instruction of `i` to the first instruction of
///   `j`, conditioned on reaching, where stepping out of a node costs its
///   average executed length plus the instructions elided by spliced edges
///   ([`CfgEdge::latent`](crate::CfgEdge)).
///
/// Both are computed with Gauss–Seidel iteration, which converges quickly on
/// these sparse, strongly-absorbing graphs.
///
/// The empirical [`ReachingAnalysis`](crate::ReachingAnalysis) measures the
/// same quantities directly on the trace; on a well-covered pair the two
/// agree (see this module's tests), which cross-validates both
/// implementations. The analytical path additionally works on *pruned*
/// graphs where the trace is no longer available.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_analysis::{BasicBlocks, BlockStream, DynCfg, MarkovReach};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("top");
/// b.li(Reg::R1, 0);
/// b.li(Reg::R2, 100);
/// b.bind(top);
/// b.addi(Reg::R1, Reg::R1, 1);
/// b.blt(Reg::R1, Reg::R2, top);
/// b.halt();
/// let program = b.build()?;
/// let bbs = BasicBlocks::of(&program);
/// let trace = Trace::generate(program, 100_000)?;
/// let stream = BlockStream::new(&trace, &bbs);
/// let cfg = DynCfg::build(&stream, &bbs);
///
/// let markov = MarkovReach::new(&cfg);
/// // P(iteration -> next iteration) = 99/100.
/// assert!((markov.prob(1, 1) - 0.99).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovReach {
    /// Dense index per block id (-1 for pruned/unknown).
    index_of: Vec<i32>,
    /// Block id per dense index.
    blocks: Vec<BlockId>,
    /// Out-adjacency per dense node: `(dense succ, prob, cost)`.
    succs: Vec<Vec<(usize, f64, f64)>>,
}

impl MarkovReach {
    /// Prepares solver state from the kept nodes of `cfg`.
    pub fn new(cfg: &DynCfg) -> MarkovReach {
        let blocks = cfg.kept_blocks();
        let mut index_of = vec![-1i32; cfg.num_nodes()];
        for (dense, &b) in blocks.iter().enumerate() {
            index_of[b as usize] = dense as i32;
        }
        let succs = blocks
            .iter()
            .map(|&b| {
                let node = cfg.node(b);
                let occ = node.occurrences as f64;
                if occ == 0.0 {
                    return Vec::new();
                }
                cfg.out_edges(b)
                    .filter_map(|(s, e)| {
                        let si = index_of[s as usize];
                        (si >= 0).then(|| {
                            (
                                si as usize,
                                (e.weight / occ).min(1.0),
                                node.avg_len() + e.latent,
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        MarkovReach {
            index_of,
            blocks,
            succs,
        }
    }

    /// The block ids the solver covers, in dense order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    fn dense(&self, block: BlockId) -> Option<usize> {
        self.index_of
            .get(block as usize)
            .and_then(|&i| (i >= 0).then_some(i as usize))
    }

    /// Solves `f(v) = P(hit j before i | at v)` for all dense nodes.
    ///
    /// For `i == j` this degenerates to the plain hit probability of `i`.
    fn solve_hit(&self, i: usize, j: usize) -> Vec<f64> {
        let n = self.blocks.len();
        let mut f = vec![0.0f64; n];
        f[j] = 1.0;
        for _ in 0..MAX_ITERS {
            let mut delta = 0.0f64;
            for v in 0..n {
                if v == j || (v == i && i != j) {
                    continue;
                }
                let mut acc = 0.0;
                for &(u, p, _) in &self.succs[v] {
                    acc += p * f[u];
                }
                delta = delta.max((acc - f[v]).abs());
                f[v] = acc;
            }
            if delta < TOL {
                break;
            }
        }
        f
    }

    /// The reaching probability from block `i` to block `j`.
    ///
    /// Returns zero if either block is pruned or unknown.
    pub fn prob(&self, i: BlockId, j: BlockId) -> f64 {
        let (Some(di), Some(dj)) = (self.dense(i), self.dense(j)) else {
            return 0.0;
        };
        let f = self.solve_hit(di, dj);
        self.first_step_prob(di, dj, &f)
    }

    fn first_step_prob(&self, i: usize, j: usize, f: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &(u, p, _) in &self.succs[i] {
            acc += p * if u == j {
                1.0
            } else if u == i {
                0.0
            } else {
                f[u]
            };
        }
        acc.min(1.0)
    }

    /// The reaching probability and conditional expected distance (in
    /// instructions, first instruction of `i` to first instruction of `j`)
    /// for the pair.
    ///
    /// The distance is zero when the probability is zero.
    pub fn pair(&self, i: BlockId, j: BlockId) -> (f64, f64) {
        let (Some(di), Some(dj)) = (self.dense(i), self.dense(j)) else {
            return (0.0, 0.0);
        };
        let f = self.solve_hit(di, dj);
        let total = self.first_step_prob(di, dj, &f);
        if total <= 0.0 {
            return (0.0, 0.0);
        }
        // Conditional expected reward until absorption at j, via the
        // h-transform: p'(v,u) = p(v,u) f(u) / f(v).
        let n = self.blocks.len();
        let mut d = vec![0.0f64; n];
        let eff_f = |u: usize| -> f64 {
            if u == dj {
                1.0
            } else if u == di && di != dj {
                0.0
            } else {
                f[u]
            }
        };
        for _ in 0..MAX_ITERS {
            let mut delta = 0.0f64;
            for v in 0..n {
                if v == dj || (v == di && di != dj) {
                    continue;
                }
                let fv = f[v];
                if fv <= 0.0 {
                    continue;
                }
                let mut acc = 0.0;
                for &(u, p, cost) in &self.succs[v] {
                    let fu = eff_f(u);
                    if fu > 0.0 && !(u == di && di != dj) {
                        let du = if u == dj { 0.0 } else { d[u] };
                        acc += p * fu / fv * (cost + du);
                    }
                }
                delta = delta.max((acc - d[v]).abs());
                d[v] = acc;
            }
            if delta < TOL * 1e3 {
                break;
            }
        }
        let mut dist = 0.0;
        for &(u, p, cost) in &self.succs[di] {
            let fu = eff_f(u);
            if fu > 0.0 && !(u == di && di != dj) {
                let du = if u == dj { 0.0 } else { d[u] };
                dist += p * fu / total * (cost + du);
            }
        }
        (total, dist)
    }

    /// Expected distance from `i` to `j` conditioned on reaching (zero when
    /// unreachable).
    pub fn distance(&self, i: BlockId, j: BlockId) -> f64 {
        self.pair(i, j).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicBlocks, BlockStream, ReachingAnalysis};
    use specmt_isa::{ProgramBuilder, Reg};
    use specmt_trace::Trace;

    fn setup(program: specmt_isa::Program) -> (MarkovReach, ReachingAnalysis, BasicBlocks) {
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 1_000_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let cfg = DynCfg::build(&stream, &bbs);
        let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
        let reach = ReachingAnalysis::compute(&stream, &all);
        (MarkovReach::new(&cfg), reach, bbs)
    }

    fn counted_loop(n: i64) -> specmt_isa::Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn probabilities_lie_in_unit_interval() {
        let (markov, _, bbs) = setup(counted_loop(50));
        for i in 0..bbs.num_blocks() as BlockId {
            for j in 0..bbs.num_blocks() as BlockId {
                let p = markov.prob(i, j);
                assert!((0.0..=1.0).contains(&p), "prob({i},{j}) = {p}");
            }
        }
    }

    #[test]
    fn loop_self_pair_matches_empirical() {
        let (markov, reach, bbs) = setup(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        let (p, d) = markov.pair(body, body);
        assert!((p - reach.prob(body, body)).abs() < 1e-9);
        assert!((d - reach.avg_distance(body, body)).abs() < 1e-9);
    }

    #[test]
    fn diamond_join_is_certain() {
        // if/else hammock repeated in a loop: head reaches join with
        // probability 1 regardless of the branch direction.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        let odd = b.fresh_label("odd");
        let join = b.fresh_label("join");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 200);
        b.bind(top);
        b.andi(Reg::R3, Reg::R1, 1);
        b.bne(Reg::R3, Reg::ZERO, odd);
        b.addi(Reg::R4, Reg::R4, 1);
        b.j(join);
        b.bind(odd);
        b.addi(Reg::R5, Reg::R5, 2);
        b.bind(join);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let (markov, reach, bbs) = setup(b.build().unwrap());
        let head = bbs.block_of(specmt_isa::Pc(2));
        let join_b = bbs.block_of(specmt_isa::Pc(8));
        let (p, d) = markov.pair(head, join_b);
        assert!((p - 1.0).abs() < 1e-9);
        assert!((p - reach.prob(head, join_b)).abs() < 1e-9);
        // Head (2 insts) plus the even arm (2) or odd arm (1), taken
        // alternately: expected 3.5 instructions to the join.
        assert!((d - 3.5).abs() < 1e-9);
        assert!((reach.avg_distance(head, join_b) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn geometric_loop_distance_matches_empirical() {
        // The entry block reaches the exit with probability 1; the expected
        // distance involves the full loop execution. Compare the analytical
        // conditional expectation with the measured average.
        let (markov, reach, bbs) = setup(counted_loop(64));
        let entry = bbs.block_of(specmt_isa::Pc(0));
        let exit = bbs.block_of(specmt_isa::Pc(4));
        let (p, d) = markov.pair(entry, exit);
        assert!((p - 1.0).abs() < 1e-9);
        // Markov model sees a 63/64 repeat probability; its expected trip
        // count is geometric and matches the actual 64 iterations exactly in
        // expectation: 2 + 64*2 = 130 instructions.
        assert!((d - reach.avg_distance(entry, exit)).abs() < 1e-6);
    }

    #[test]
    fn unreachable_pairs_have_zero_probability_and_distance() {
        // Two independent phases: phase 2 never reaches back to phase 1.
        let mut b = ProgramBuilder::new();
        let l1 = b.fresh_label("l1");
        let l2 = b.fresh_label("l2");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 50);
        b.bind(l1);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, l1);
        b.li(Reg::R1, 0);
        b.bind(l2);
        b.addi(Reg::R3, Reg::R3, 1);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, l2);
        b.halt();
        let (markov, reach, bbs) = setup(b.build().unwrap());
        let phase1 = bbs.block_of(specmt_isa::Pc(2));
        let phase2 = bbs.block_of(specmt_isa::Pc(6));
        // Forward: reachable but windowed below 1; backward: impossible.
        assert_eq!(markov.prob(phase2, phase1), 0.0);
        assert_eq!(markov.distance(phase2, phase1), 0.0);
        assert_eq!(reach.prob(phase2, phase1), 0.0);
    }

    #[test]
    fn blocks_lists_dense_order() {
        let (markov, _, bbs) = setup(counted_loop(10));
        assert_eq!(markov.blocks().len(), bbs.num_blocks());
    }

    #[test]
    fn pruned_blocks_report_zero() {
        let program = counted_loop(100);
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 100_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let mut cfg = DynCfg::build(&stream, &bbs);
        cfg.prune_to_coverage(0.5); // keeps only the loop body
        let markov = MarkovReach::new(&cfg);
        let body = bbs.block_of(specmt_isa::Pc(2));
        let entry = bbs.block_of(specmt_isa::Pc(0));
        assert!(cfg.node(entry).pruned);
        assert_eq!(markov.prob(entry, body), 0.0);
        assert!(markov.prob(body, body) > 0.9);
    }
}
