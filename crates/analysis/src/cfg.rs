//! The dynamic control-flow graph and its coverage pruning.

use std::collections::BTreeMap;

use specmt_isa::Pc;

use crate::{BasicBlocks, BlockId, BlockStream};

/// A node of the [`DynCfg`]: one basic block with its profile weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfgNode {
    /// First instruction of the block.
    pub start: Pc,
    /// Static instruction count.
    pub static_len: u32,
    /// Dynamic executions of the block.
    pub occurrences: u64,
    /// Total dynamic instructions contributed by the block.
    pub instructions: u64,
    /// Whether the block has been pruned away (see
    /// [`DynCfg::prune_to_coverage`]).
    pub pruned: bool,
}

impl CfgNode {
    /// Average instructions executed per occurrence.
    pub fn avg_len(&self) -> f64 {
        if self.occurrences == 0 {
            0.0
        } else {
            self.instructions as f64 / self.occurrences as f64
        }
    }
}

/// A weighted edge of the [`DynCfg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfgEdge {
    /// Traversal count. Integral when built from a profile; may become
    /// fractional after pruning splits weights proportionally across spliced
    /// edges.
    pub weight: f64,
    /// Expected instructions executed *inside* the edge per traversal:
    /// instructions of pruned blocks the edge now elides. Zero for profile
    /// edges.
    pub latent: f64,
}

/// Summary returned by [`DynCfg::prune_to_coverage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneSummary {
    /// Blocks kept.
    pub kept: usize,
    /// Blocks pruned.
    pub pruned: usize,
    /// Fraction of dynamic instructions covered by the kept blocks.
    pub coverage: f64,
}

/// The dynamic control-flow graph of §3.1: basic blocks as nodes, edges
/// weighted with observed transition frequencies.
///
/// Supports the paper's size reduction: blocks are ranked by executed
/// instructions and kept from hottest to coldest until a target coverage
/// (90 % in the paper) is reached; every pruned node is *spliced out* —
/// each predecessor edge is redistributed across the node's successors with
/// weight split proportional to the successor frequencies. Spliced edges
/// remember the expected number of instructions they now elide (the
/// [`CfgEdge::latent`] field), so expected spawn-to-CQIP distances remain
/// measurable on the pruned graph.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_analysis::{BasicBlocks, BlockStream, DynCfg};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("top");
/// b.li(Reg::R1, 0);
/// b.li(Reg::R2, 100);
/// b.bind(top);
/// b.addi(Reg::R1, Reg::R1, 1);
/// b.blt(Reg::R1, Reg::R2, top);
/// b.halt();
/// let program = b.build()?;
/// let bbs = BasicBlocks::of(&program);
/// let trace = Trace::generate(program, 100_000)?;
/// let stream = BlockStream::new(&trace, &bbs);
///
/// let mut cfg = DynCfg::build(&stream, &bbs);
/// let summary = cfg.prune_to_coverage(0.9);
/// assert!(summary.coverage >= 0.9);
/// // The loop body (the hot block) survives.
/// assert!(!cfg.node(1).pruned);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynCfg {
    nodes: Vec<CfgNode>,
    edges: BTreeMap<(BlockId, BlockId), CfgEdge>,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl DynCfg {
    /// Builds the graph from a block stream and its decomposition.
    pub fn build(stream: &BlockStream, bbs: &BasicBlocks) -> DynCfg {
        let n = bbs.num_blocks();
        let totals = stream.block_totals();
        let nodes = (0..n)
            .map(|i| CfgNode {
                start: bbs.start(i as BlockId),
                static_len: bbs.len_of(i as BlockId),
                occurrences: totals[i].0,
                instructions: totals[i].1,
                pruned: false,
            })
            .collect();
        let mut cfg = DynCfg {
            nodes,
            edges: BTreeMap::new(),
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        };
        for w in stream.events().windows(2) {
            cfg.add_weight(w[0].block, w[1].block, 1.0, 0.0);
        }
        cfg
    }

    fn add_weight(&mut self, from: BlockId, to: BlockId, weight: f64, latent: f64) {
        use std::collections::btree_map::Entry;
        match self.edges.entry((from, to)) {
            Entry::Vacant(e) => {
                e.insert(CfgEdge { weight, latent });
                self.succs[from as usize].push(to);
                self.preds[to as usize].push(from);
            }
            Entry::Occupied(mut e) => {
                let edge = e.get_mut();
                let total = edge.weight + weight;
                if total > 0.0 {
                    edge.latent = (edge.latent * edge.weight + latent * weight) / total;
                }
                edge.weight = total;
            }
        }
    }

    fn remove_edge(&mut self, from: BlockId, to: BlockId) {
        if self.edges.remove(&(from, to)).is_some() {
            self.succs[from as usize].retain(|&s| s != to);
            self.preds[to as usize].retain(|&p| p != from);
        }
    }

    /// Number of nodes (kept and pruned).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node for block `id`.
    pub fn node(&self, id: BlockId) -> &CfgNode {
        &self.nodes[id as usize]
    }

    /// All nodes, indexed by block id.
    pub fn nodes(&self) -> &[CfgNode] {
        &self.nodes
    }

    /// The edge `from -> to`, if present.
    pub fn edge(&self, from: BlockId, to: BlockId) -> Option<&CfgEdge> {
        self.edges.get(&(from, to))
    }

    /// Successors of `id` with their edges.
    pub fn out_edges(&self, id: BlockId) -> impl Iterator<Item = (BlockId, &CfgEdge)> + '_ {
        self.succs[id as usize]
            .iter()
            .map(move |&s| (s, &self.edges[&(id, s)]))
    }

    /// Predecessors of `id` with their edges.
    pub fn in_edges(&self, id: BlockId) -> impl Iterator<Item = (BlockId, &CfgEdge)> + '_ {
        self.preds[id as usize]
            .iter()
            .map(move |&p| (p, &self.edges[&(p, id)]))
    }

    /// Total outgoing weight of `id`.
    pub fn out_weight(&self, id: BlockId) -> f64 {
        self.out_edges(id).map(|(_, e)| e.weight).sum()
    }

    /// Ids of the blocks that survived pruning (all blocks if never pruned).
    pub fn kept_blocks(&self) -> Vec<BlockId> {
        (0..self.nodes.len() as BlockId)
            .filter(|&i| !self.nodes[i as usize].pruned)
            .collect()
    }

    /// Prunes the graph to the hottest blocks covering at least `coverage`
    /// (a fraction in `0..=1`) of the executed instructions, splicing edges
    /// around every pruned node.
    ///
    /// Splicing a node `v` redistributes each predecessor edge `p -> v`
    /// across `v`'s non-self successors `s` with weight
    /// `w(p,v) * w(v,s) / Σ w(v,·)`, exactly the paper's proportional
    /// split. Self-loops on `v` are folded into the expected number of
    /// instructions the new edges elide (a geometric expected repeat
    /// count), so distances stay calibrated.
    ///
    /// Blocks that never executed are always pruned. Returns a summary.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not within `0.0..=1.0`.
    pub fn prune_to_coverage(&mut self, coverage: f64) -> PruneSummary {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be within 0..=1"
        );
        let total: u64 = self.nodes.iter().map(|n| n.instructions).sum();
        let mut order: Vec<BlockId> = (0..self.nodes.len() as BlockId).collect();
        order.sort_by(|&a, &b| {
            self.nodes[b as usize]
                .instructions
                .cmp(&self.nodes[a as usize].instructions)
                .then(a.cmp(&b))
        });
        let mut kept = Vec::new();
        let mut covered = 0u64;
        let target = (coverage * total as f64).ceil() as u64;
        for &id in &order {
            if covered >= target || self.nodes[id as usize].instructions == 0 {
                break;
            }
            covered += self.nodes[id as usize].instructions;
            kept.push(id);
        }
        // Prune coldest-first so splices cascade toward hotter nodes.
        let keep_set: Vec<bool> = {
            let mut v = vec![false; self.nodes.len()];
            for &id in &kept {
                v[id as usize] = true;
            }
            v
        };
        for &id in order.iter().rev() {
            if !keep_set[id as usize] {
                self.splice_out(id);
            }
        }
        PruneSummary {
            kept: kept.len(),
            pruned: self.nodes.len() - kept.len(),
            coverage: if total == 0 {
                1.0
            } else {
                covered as f64 / total as f64
            },
        }
    }

    /// Removes node `v`, splicing predecessor edges onto successors.
    fn splice_out(&mut self, v: BlockId) {
        let vi = v as usize;
        self.nodes[vi].pruned = true;

        let self_edge = self.edges.get(&(v, v)).copied();
        let outs: Vec<(BlockId, CfgEdge)> = self.succs[vi]
            .iter()
            .filter(|&&s| s != v)
            .map(|&s| (s, self.edges[&(v, s)]))
            .collect();
        let ins: Vec<(BlockId, CfgEdge)> = self.preds[vi]
            .iter()
            .filter(|&&p| p != v)
            .map(|&p| (p, self.edges[&(p, v)]))
            .collect();

        let self_w = self_edge.map_or(0.0, |e| e.weight);
        let out_w: f64 = outs.iter().map(|(_, e)| e.weight).sum();
        let total_out = self_w + out_w;

        // Expected instructions spent inside v per pass-through, accounting
        // for self-loop repeats: rho visits of v, rho-1 self traversals.
        let inside = if total_out > 0.0 && out_w > 0.0 {
            let q = self_w / total_out;
            let rho = 1.0 / (1.0 - q);
            rho * self.nodes[vi].avg_len() + (rho - 1.0) * self_edge.map_or(0.0, |e| e.latent)
        } else {
            self.nodes[vi].avg_len()
        };

        // Drop all edges touching v before inserting spliced ones (a
        // predecessor may also be a successor).
        let touching: Vec<(BlockId, BlockId)> = self
            .edges
            .keys()
            .copied()
            .filter(|&(a, b)| a == v || b == v)
            .collect();
        for (a, b) in touching {
            self.remove_edge(a, b);
        }

        if out_w <= 0.0 {
            // v was a sink (or pure self-loop): its incoming mass dies with
            // it, modelling absorption (program exit through cold code).
            return;
        }
        for (p, pe) in &ins {
            for (s, se) in &outs {
                let w = pe.weight * (se.weight / out_w);
                if w > 0.0 {
                    let latent = pe.latent + inside + se.latent;
                    self.add_weight(*p, *s, w, latent);
                }
            }
        }
    }

    /// Checks weight conservation: for every kept node, outgoing weight must
    /// not exceed its occurrence count by more than `tol` (mass can only be
    /// *lost* to pruned sinks, never created).
    ///
    /// Intended for tests and debug assertions.
    pub fn check_weight_sanity(&self, tol: f64) -> bool {
        self.kept_blocks().iter().all(|&id| {
            let out = self.out_weight(id);
            out <= self.nodes[id as usize].occurrences as f64 + tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};
    use specmt_trace::Trace;

    /// entry -> loop{body -> [cold | hot] -> latch} -> exit
    fn branchy_loop() -> (DynCfg, BasicBlocks) {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        let cold = b.fresh_label("cold");
        let latch = b.fresh_label("latch");
        b.li(Reg::R1, 0); // block: entry
        b.li(Reg::R2, 64);
        b.bind(top); // block: body head
        b.andi(Reg::R3, Reg::R1, 15);
        b.beq(Reg::R3, Reg::ZERO, cold); // taken 1/16 of iterations
        b.addi(Reg::R4, Reg::R4, 1); // block: hot path
        b.j(latch);
        b.bind(cold);
        b.addi(Reg::R5, Reg::R5, 1); // block: cold path
        b.bind(latch);
        b.addi(Reg::R1, Reg::R1, 1); // block: latch
        b.blt(Reg::R1, Reg::R2, top);
        b.halt(); // block: exit
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 100_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        (DynCfg::build(&stream, &bbs), bbs)
    }

    #[test]
    fn edge_weights_match_execution_frequencies() {
        let (cfg, bbs) = branchy_loop();
        // Find the body-head block: the one starting at the `top` label (@2).
        let head = bbs.block_of(specmt_isa::Pc(2));
        // 64 iterations: 4 go cold (i % 16 == 0), 60 go hot.
        let outs: Vec<(BlockId, f64)> = cfg.out_edges(head).map(|(s, e)| (s, e.weight)).collect();
        let total: f64 = outs.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 64.0);
        let mut weights: Vec<f64> = outs.iter().map(|(_, w)| *w).collect();
        weights.sort_by(f64::total_cmp);
        assert_eq!(weights, vec![4.0, 60.0]);
    }

    #[test]
    fn pruning_keeps_hot_blocks_and_conserves_weight() {
        let (mut cfg, bbs) = branchy_loop();
        let summary = cfg.prune_to_coverage(0.9);
        assert!(summary.coverage >= 0.9);
        assert!(summary.pruned >= 1);
        assert!(cfg.check_weight_sanity(1e-6));
        // The cold path block (entered 4 times out of 64) should be pruned.
        let cold_block = bbs.block_of(specmt_isa::Pc(6));
        assert!(cfg.node(cold_block).pruned);
        // No surviving edge touches a pruned node.
        for &id in &cfg.kept_blocks() {
            for (s, _) in cfg.out_edges(id) {
                assert!(!cfg.node(s).pruned);
            }
        }
    }

    #[test]
    fn spliced_edges_carry_latent_instructions() {
        let (mut cfg, bbs) = branchy_loop();
        cfg.prune_to_coverage(0.9);
        let head = bbs.block_of(specmt_isa::Pc(2));
        let latch = bbs.block_of(specmt_isa::Pc(7));
        // The head -> latch path through the pruned cold block must exist
        // with latent instructions ≈ the cold block's length (1).
        let spliced = cfg.edge(head, latch).expect("spliced edge exists");
        assert!(spliced.latent > 0.0);
        assert!((spliced.latent - 1.0).abs() < 1e-9);
        // Its weight is the cold traversal count.
        assert!((spliced.weight - 4.0).abs() < 1e-9);
    }

    #[test]
    fn full_coverage_prunes_only_dead_blocks() {
        let (mut cfg, _) = branchy_loop();
        let summary = cfg.prune_to_coverage(1.0);
        assert!((summary.coverage - 1.0).abs() < 1e-12);
        for n in cfg.nodes() {
            assert_eq!(n.pruned, n.instructions == 0);
        }
    }

    #[test]
    #[should_panic(expected = "within 0..=1")]
    fn invalid_coverage_panics() {
        let (mut cfg, _) = branchy_loop();
        cfg.prune_to_coverage(1.5);
    }

    #[test]
    fn chained_pruning_accumulates_latents() {
        // A -> B -> C -> D straight line executed once; prune B and C.
        let mut b = ProgramBuilder::new();
        let lb = b.fresh_label("b");
        let lc = b.fresh_label("c");
        let ld = b.fresh_label("d");
        b.li(Reg::R1, 1); // A: 2 insts
        b.j(lb);
        b.bind(lb);
        b.li(Reg::R2, 2); // B: 2 insts
        b.j(lc);
        b.bind(lc);
        b.li(Reg::R3, 3); // C: 2 insts
        b.j(ld);
        b.bind(ld);
        b.halt(); // D: 1 inst
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 100).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let mut cfg = DynCfg::build(&stream, &bbs);
        // Manually splice out B (block 1) and C (block 2).
        cfg.splice_out(1);
        cfg.splice_out(2);
        let edge = cfg.edge(0, 3).expect("A -> D after splicing");
        assert!((edge.weight - 1.0).abs() < 1e-12);
        assert!((edge.latent - 4.0).abs() < 1e-12); // B and C: 2 + 2 elided
    }
}
