//! Dynamic traces re-expressed as basic-block execution streams.

use specmt_trace::Trace;

use crate::{BasicBlocks, BlockId};

/// One dynamic execution of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEvent {
    /// Which block executed.
    pub block: BlockId,
    /// Instructions executed in this occurrence (equals the block's static
    /// length except possibly for the final, truncated event of a
    /// step-limited trace).
    pub len: u32,
    /// Dynamic index (into the trace) of the block's first instruction.
    pub first_dyn: u32,
}

/// A [`Trace`] grouped into basic-block execution events.
///
/// Because all control targets are block leaders, every block is entered at
/// its first instruction, so the grouping is unambiguous: a new event begins
/// exactly when the dynamic pc equals some block's start.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_analysis::{BasicBlocks, BlockStream};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 3);
/// b.halt();
/// let program = b.build()?;
/// let bbs = BasicBlocks::of(&program);
/// let trace = Trace::generate(program, 100)?;
/// let stream = BlockStream::new(&trace, &bbs);
/// assert_eq!(stream.events().len(), 1);
/// assert_eq!(stream.total_instructions(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockStream {
    events: Vec<BlockEvent>,
    num_blocks: usize,
    total_instructions: u64,
}

impl BlockStream {
    /// Groups `trace` into block events using the decomposition `bbs`.
    ///
    /// A trace generated from the same program the decomposition came from
    /// always enters blocks at their start; a record that does not (possible
    /// only for hand-assembled record streams) opens a fresh event at its
    /// own pc rather than corrupting a neighbour's length.
    pub fn new(trace: &Trace, bbs: &BasicBlocks) -> BlockStream {
        let mut events: Vec<BlockEvent> = Vec::new();
        for (k, &raw) in trace.pcs().iter().enumerate() {
            let pc = specmt_isa::Pc(raw);
            let block = bbs.block_of(pc);
            match events.last_mut() {
                Some(cur) if bbs.start(block) != pc && cur.block == block => cur.len += 1,
                _ => {
                    debug_assert_eq!(bbs.start(block), pc, "mid-block entry in trace");
                    events.push(BlockEvent {
                        block,
                        len: 1,
                        first_dyn: k as u32,
                    });
                }
            }
        }
        BlockStream {
            events,
            num_blocks: bbs.num_blocks(),
            total_instructions: trace.len() as u64,
        }
    }

    /// The block events, in execution order.
    pub fn events(&self) -> &[BlockEvent] {
        &self.events
    }

    /// Number of blocks in the underlying decomposition.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total dynamic instructions covered by the stream.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Per-block totals: `(occurrences, instructions executed)`.
    pub fn block_totals(&self) -> Vec<(u64, u64)> {
        let mut totals = vec![(0u64, 0u64); self.num_blocks];
        for e in &self.events {
            let t = &mut totals[e.block as usize];
            t.0 += 1;
            t.1 += e.len as u64;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    fn loop_stream(n: i64) -> (BlockStream, usize) {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 100_000).unwrap();
        let len = trace.len();
        (BlockStream::new(&trace, &bbs), len)
    }

    #[test]
    fn loop_produces_one_event_per_iteration() {
        let (stream, trace_len) = loop_stream(5);
        // entry block, 5 loop-body events, halt block
        assert_eq!(stream.events().len(), 7);
        let body_events: Vec<&BlockEvent> =
            stream.events().iter().filter(|e| e.block == 1).collect();
        assert_eq!(body_events.len(), 5);
        assert!(body_events.iter().all(|e| e.len == 2));
        let sum: u64 = stream.events().iter().map(|e| e.len as u64).sum();
        assert_eq!(sum, trace_len as u64);
        assert_eq!(stream.total_instructions(), trace_len as u64);
    }

    #[test]
    fn first_dyn_indices_are_strictly_increasing() {
        let (stream, _) = loop_stream(10);
        for w in stream.events().windows(2) {
            assert!(w[0].first_dyn < w[1].first_dyn);
        }
    }

    #[test]
    fn block_totals_match_events() {
        let (stream, _) = loop_stream(4);
        let totals = stream.block_totals();
        assert_eq!(totals[0], (1, 2)); // entry executes once, 2 instructions
        assert_eq!(totals[1], (4, 8)); // body: 4 occurrences of 2 instructions
        assert_eq!(totals[2], (1, 1)); // halt
    }
}
