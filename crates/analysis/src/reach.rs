//! Empirical reaching probabilities and distances, measured on the block
//! stream.

use crate::{BitSet, BlockId, BlockStream};

/// Reaching statistics for one ordered pair of blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairStat {
    /// The candidate spawning-point block.
    pub sp_block: BlockId,
    /// The candidate control-quasi-independent-point block.
    pub cqip_block: BlockId,
    /// Probability of executing `cqip_block` after `sp_block` (with both
    /// appearing only as the endpoints of the dynamic sequence).
    pub prob: f64,
    /// Average dynamic instructions from the first instruction of
    /// `sp_block` to the first instruction of `cqip_block`, over the
    /// occurrences that did reach.
    pub avg_dist: f64,
    /// Occurrences of `sp_block` that reached `cqip_block`.
    pub reach_count: u64,
    /// Total occurrences of `sp_block`.
    pub source_occurrences: u64,
}

/// Empirical reaching analysis over a [`BlockStream`].
///
/// For every ordered pair `(i, j)` of *tracked* blocks this measures the
/// paper's reaching probability directly on the profile: each dynamic
/// occurrence of `i` opens a window that closes at the next occurrence of
/// `i`; `j` is *reached* if it appears inside the window. This realises the
/// §3.1 sequence constraint exactly — the source and destination appear only
/// as the first and last element, interior blocks may repeat — and
/// simultaneously accumulates the expected instruction distance.
///
/// The final, unclosed window of each source still counts in the
/// denominator, so probabilities are very slightly conservative near the end
/// of the trace.
///
/// Two implementations produce bit-identical results:
///
/// * [`ReachingAnalysis::compute`] — the production path. Open-window and
///   credited-this-window state is held as packed `u64` words over the
///   *sources*, so each event costs `O(tracked / 64)` word operations
///   (`AND`/`ANDN` + trailing-zeros extraction of the newly credited bits)
///   plus one unit of work per actual credit. Tracked sources are
///   additionally sharded across [`std::thread::scope`] workers when the
///   problem is large enough; each worker scans the stream once over its
///   slice of sources.
/// * [`ReachingAnalysis::compute_naive`] — the retained reference: the
///   direct per-event scalar scan over every open source,
///   `O(events × tracked)` time. The differential test suite pits the two
///   against each other on random programs.
///
/// Space is `O(tracked²)` bits for window state plus the `O(tracked²)`
/// counter matrices. Track only the blocks kept by
/// [`DynCfg::prune_to_coverage`](crate::DynCfg) to keep both in hand —
/// exactly why the paper prunes, too.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_analysis::{BasicBlocks, BlockStream, ReachingAnalysis};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("top");
/// b.li(Reg::R1, 0);
/// b.li(Reg::R2, 50);
/// b.bind(top);
/// b.addi(Reg::R1, Reg::R1, 1); // loop body: block 1
/// b.blt(Reg::R1, Reg::R2, top);
/// b.halt();
/// let program = b.build()?;
/// let bbs = BasicBlocks::of(&program);
/// let trace = Trace::generate(program, 100_000)?;
/// let stream = BlockStream::new(&trace, &bbs);
///
/// let all: Vec<u32> = (0..bbs.num_blocks() as u32).collect();
/// let reach = ReachingAnalysis::compute(&stream, &all);
/// // An iteration almost always reaches the next iteration.
/// assert!(reach.prob(1, 1) > 0.9);
/// assert_eq!(reach.avg_distance(1, 1), 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachingAnalysis {
    tracked: Vec<BlockId>,
    index_of: Vec<i32>,
    n: usize,
    reach: Vec<u64>,
    dist_sum: Vec<u64>,
    occurrences: Vec<u64>,
}

impl ReachingAnalysis {
    /// Measures reaching statistics for all ordered pairs of `tracked`
    /// blocks over `stream` (the word-parallel production implementation;
    /// see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if `tracked` contains a block id outside the stream's
    /// decomposition or a duplicate.
    pub fn compute(stream: &BlockStream, tracked: &[BlockId]) -> ReachingAnalysis {
        let (index_of, n) = Self::dense_mapping(stream, tracked);

        // Pre-filter the stream once: untracked events only advance the
        // instruction counter, so fold them into precomputed cumulative
        // offsets and hand the workers a dense (source-id, offset) list.
        let mut events: Vec<(u32, u64)> = Vec::new();
        let mut occurrences = vec![0u64; n];
        let mut cum = 0u64;
        for e in stream.events() {
            let dense = index_of[e.block as usize];
            if dense >= 0 {
                events.push((dense as u32, cum));
                occurrences[dense as usize] += 1;
            }
            cum += e.len as u64;
        }

        let mut reach = vec![0u64; n * n];
        let mut dist_sum = vec![0u64; n * n];

        let words = n.div_ceil(64);
        // Shard whole words of sources across workers. Sharding only pays
        // once both dimensions are big; small problems run inline.
        let threads = if n >= 192 && events.len() >= 1 << 13 {
            std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .min(words)
                .min(8)
        } else {
            1
        };

        if threads <= 1 {
            Shard::new(0, words, n).scan(&events, &mut reach, &mut dist_sum);
        } else {
            let words_per = words.div_ceil(threads);
            // Split the output matrices at shard boundaries so each worker
            // writes its own rows without synchronisation.
            let mut reach_slices: Vec<&mut [u64]> = Vec::with_capacity(threads);
            let mut dist_slices: Vec<&mut [u64]> = Vec::with_capacity(threads);
            let mut reach_rest: &mut [u64] = &mut reach;
            let mut dist_rest: &mut [u64] = &mut dist_sum;
            let mut bounds = Vec::with_capacity(threads);
            for t in 0..threads {
                let w0 = (t * words_per).min(words);
                let w1 = ((t + 1) * words_per).min(words);
                let lo = (w0 * 64).min(n);
                let hi = (w1 * 64).min(n);
                bounds.push((w0, w1));
                let (a, b) = reach_rest.split_at_mut((hi - lo) * n);
                reach_slices.push(a);
                reach_rest = b;
                let (a, b) = dist_rest.split_at_mut((hi - lo) * n);
                dist_slices.push(a);
                dist_rest = b;
            }
            let events = &events;
            std::thread::scope(|s| {
                for (((w0, w1), r), d) in bounds
                    .into_iter()
                    .zip(reach_slices)
                    .zip(dist_slices)
                {
                    s.spawn(move || Shard::new(w0, w1, n).scan(events, r, d));
                }
            });
        }

        ReachingAnalysis {
            tracked: tracked.to_vec(),
            index_of,
            n,
            reach,
            dist_sum,
            occurrences,
        }
    }

    /// The retained scalar reference implementation: a per-event scan over
    /// every open source window. `O(events × tracked)` time — kept for
    /// differential testing and as the "before" baseline in the benchmark
    /// suite; produces results bit-identical to [`ReachingAnalysis::compute`].
    ///
    /// # Panics
    ///
    /// As [`ReachingAnalysis::compute`].
    pub fn compute_naive(stream: &BlockStream, tracked: &[BlockId]) -> ReachingAnalysis {
        let (index_of, n) = Self::dense_mapping(stream, tracked);

        let mut reach = vec![0u64; n * n];
        let mut dist_sum = vec![0u64; n * n];
        let mut occurrences = vec![0u64; n];
        let mut open = vec![false; n];
        let mut win_start = vec![0u64; n];
        let mut seen: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();

        let mut cum = 0u64;
        for e in stream.events() {
            let dense = index_of[e.block as usize];
            if dense >= 0 {
                let j = dense as usize;
                for (i, open_i) in open.iter().enumerate() {
                    if *open_i && seen[i].insert(j) {
                        reach[i * n + j] += 1;
                        dist_sum[i * n + j] += cum - win_start[i];
                    }
                }
                occurrences[j] += 1;
                seen[j].clear();
                win_start[j] = cum;
                open[j] = true;
            }
            cum += e.len as u64;
        }

        ReachingAnalysis {
            tracked: tracked.to_vec(),
            index_of,
            n,
            reach,
            dist_sum,
            occurrences,
        }
    }

    /// Builds the block-id → dense-index mapping shared by both
    /// implementations, validating `tracked` along the way.
    fn dense_mapping(stream: &BlockStream, tracked: &[BlockId]) -> (Vec<i32>, usize) {
        let num_blocks = stream.num_blocks();
        let mut index_of = vec![-1i32; num_blocks];
        for (dense, &b) in tracked.iter().enumerate() {
            assert!((b as usize) < num_blocks, "tracked block out of range");
            assert_eq!(index_of[b as usize], -1, "duplicate tracked block");
            index_of[b as usize] = dense as i32;
        }
        (index_of, tracked.len())
    }

    fn dense(&self, block: BlockId) -> Option<usize> {
        self.index_of
            .get(block as usize)
            .and_then(|&i| (i >= 0).then_some(i as usize))
    }

    /// The tracked block ids, in dense order.
    pub fn tracked(&self) -> &[BlockId] {
        &self.tracked
    }

    /// Occurrences of `block` in the stream (zero if untracked).
    pub fn occurrences(&self, block: BlockId) -> u64 {
        self.dense(block).map_or(0, |i| self.occurrences[i])
    }

    /// The reaching probability from `sp_block` to `cqip_block`.
    ///
    /// Zero if either block is untracked or the source never executed.
    pub fn prob(&self, sp_block: BlockId, cqip_block: BlockId) -> f64 {
        let (Some(i), Some(j)) = (self.dense(sp_block), self.dense(cqip_block)) else {
            return 0.0;
        };
        if self.occurrences[i] == 0 {
            return 0.0;
        }
        self.reach[i * self.n + j] as f64 / self.occurrences[i] as f64
    }

    /// Average instructions from `sp_block` to `cqip_block` over reaching
    /// occurrences (zero if it never reached).
    pub fn avg_distance(&self, sp_block: BlockId, cqip_block: BlockId) -> f64 {
        let (Some(i), Some(j)) = (self.dense(sp_block), self.dense(cqip_block)) else {
            return 0.0;
        };
        let r = self.reach[i * self.n + j];
        if r == 0 {
            return 0.0;
        }
        self.dist_sum[i * self.n + j] as f64 / r as f64
    }

    /// All ordered pairs whose probability is at least `min_prob` and whose
    /// average distance is at least `min_dist` instructions — the paper's
    /// candidate spawning pairs (0.95 and 32 in the evaluation).
    ///
    /// Pairs are returned grouped by source block in dense order.
    pub fn pairs(&self, min_prob: f64, min_dist: f64) -> Vec<PairStat> {
        let mut out = Vec::new();
        for i in 0..self.n {
            if self.occurrences[i] == 0 {
                continue;
            }
            for j in 0..self.n {
                let r = self.reach[i * self.n + j];
                if r == 0 {
                    continue;
                }
                let prob = r as f64 / self.occurrences[i] as f64;
                let avg_dist = self.dist_sum[i * self.n + j] as f64 / r as f64;
                if prob >= min_prob && avg_dist >= min_dist {
                    out.push(PairStat {
                        sp_block: self.tracked[i],
                        cqip_block: self.tracked[j],
                        prob,
                        avg_dist,
                        reach_count: r,
                        source_occurrences: self.occurrences[i],
                    });
                }
            }
        }
        out
    }
}

/// One worker's slice of the word-parallel scan: it owns the whole-word
/// range `[w0, w1)` of source bits (sources `w0 * 64 .. min(w1 * 64, n)`).
///
/// The shard decomposes its sources into 64-wide words and runs one pass of
/// a *single-source-word* kernel per word ([`scan_word_wide`], or the
/// fixed-grid [`scan_word_small`] when the whole problem fits 64
/// destinations). Every pass keeps its open-window set in one scalar `u64`
/// and its credited bits in a flat `credited[j]` column (one word per
/// destination), so multi-word problems (n > 64 tracked blocks — big pruned
/// CFGs) pay exactly the same branchless per-event cost as the single-word
/// case, once per owned word, instead of falling back to a general kernel
/// with per-credit bookkeeping. Re-reading the (pre-filtered, dense) event
/// list once per 64 sources is sequential and cheap; the per-credit work —
/// one `[reach, dist]` cell bump found by trailing-zeros extraction — is
/// identical to what the naive path performs.
struct Shard {
    /// First source owned by this shard.
    lo: usize,
    /// Sources owned (shard-local indices are `0..count`).
    count: usize,
    /// Total tracked blocks (row length of the output matrices).
    n: usize,
}

impl Shard {
    fn new(w0: usize, w1: usize, n: usize) -> Shard {
        let lo = (w0 * 64).min(n);
        let hi = (w1 * 64).min(n);
        Shard {
            lo,
            count: hi - lo,
            n,
        }
    }

    /// Scans `events` (pre-filtered `(dense source id, cumulative
    /// instructions)` pairs), accumulating into this shard's rows of the
    /// `reach` / `dist_sum` matrices (`count * n` elements each). The two
    /// counters live interleaved in one scratch `cells` array (`[reach,
    /// dist]` pairs) so each credit touches a single cache line; the pairs
    /// are split into the output matrices once, at the end.
    fn scan(self, events: &[(u32, u64)], reach: &mut [u64], dist_sum: &mut [u64]) {
        if self.count == 0 {
            return;
        }
        debug_assert_eq!(reach.len(), self.count * self.n);
        let mut cells = vec![[0u64; 2]; self.count * self.n];
        let mut w = 0;
        while w * 64 < self.count {
            let lo = self.lo + w * 64;
            let cnt = (self.count - w * 64).min(64);
            let word_cells = &mut cells[w * 64 * self.n..][..cnt * self.n];
            if self.n <= 64 {
                scan_word_small(lo, cnt, self.n, events, word_cells);
            } else {
                scan_word_wide(lo, cnt, self.n, events, word_cells);
            }
            w += 1;
        }
        for (k, &[r, d]) in cells.iter().enumerate() {
            reach[k] = r;
            dist_sum[k] = d;
        }
    }
}

/// One pass over the events for the source word `lo .. lo + count`
/// (`count <= 64`), with at most 64 destinations: every bitset in play is a
/// scalar word. Un-crediting a reopened window is a branchless bit-clear
/// sweep over the (at most 64-word) credited array, which vectorises — so
/// the per-credit loop carries no bookkeeping at all. All hot state lives
/// in fixed 64-wide arrays indexed through `& 63` masks, keeping every
/// index provably in range so no bounds checks survive in the loop.
fn scan_word_small(lo: usize, count: usize, n: usize, events: &[(u32, u64)], cells: &mut [[u64; 2]]) {
    let hi = lo + count;
    let mut open = 0u64;
    let mut credited = [0u64; 64];
    let mut win_start = [0u64; 64];
    let mut grid: Box<[[u64; 2]; 64 * 64]> = vec![[0u64; 2]; 64 * 64]
        .into_boxed_slice()
        .try_into()
        .expect("fixed grid size");
    for &(j, cum) in events {
        debug_assert!((j as usize) < n);
        let j = (j as usize) & 63;
        // Credit every open word source that has not yet seen `j`.
        // `credited[j] | newly == credited[j] | open` because credited
        // bits only ever belong to open sources.
        let cw = credited[j];
        let mut newly = open & !cw;
        credited[j] = cw | open;
        while newly != 0 {
            let i = newly.trailing_zeros() as usize & 63;
            newly &= newly - 1;
            let cell = &mut grid[(i << 6) | j];
            cell[0] += 1;
            cell[1] += cum - win_start[i];
        }
        // If this word owns `j` as a source, close its previous window
        // and open a fresh one: un-credit it everywhere.
        if (lo..hi).contains(&j) {
            let i = (j - lo) & 63;
            let bit = 1u64 << i;
            for cred in credited[..n].iter_mut() {
                *cred &= !bit;
            }
            win_start[i] = cum;
            open |= bit;
        }
    }
    for i in 0..count {
        for j in 0..n {
            cells[i * n + j] = grid[(i << 6) | j];
        }
    }
}

/// As [`scan_word_small`] for any number of destinations (n > 64): the
/// credited column grows to one `u64` per destination, the open set stays a
/// scalar word, and the un-credit sweep on window reopen is the same
/// branchless bit-clear, now over `n` words. The output cells are written
/// in place (no fixed grid), with `i < count` guaranteed because open bits
/// are only ever set for sources this word owns.
fn scan_word_wide(lo: usize, count: usize, n: usize, events: &[(u32, u64)], cells: &mut [[u64; 2]]) {
    let hi = lo + count;
    let mut open = 0u64;
    let mut credited = vec![0u64; n];
    let mut win_start = [0u64; 64];
    for &(j, cum) in events {
        let j = j as usize;
        let cw = credited[j];
        let mut newly = open & !cw;
        credited[j] = cw | open;
        while newly != 0 {
            let i = newly.trailing_zeros() as usize & 63;
            newly &= newly - 1;
            let cell = &mut cells[i * n + j];
            cell[0] += 1;
            cell[1] += cum - win_start[i];
        }
        if (lo..hi).contains(&j) {
            let i = (j - lo) & 63;
            let bit = 1u64 << i;
            for cred in credited.iter_mut() {
                *cred &= !bit;
            }
            win_start[i] = cum;
            open |= bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BasicBlocks;
    use specmt_isa::{ProgramBuilder, Reg};
    use specmt_trace::Trace;

    fn analyse(program: specmt_isa::Program) -> (ReachingAnalysis, BasicBlocks) {
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 1_000_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
        (ReachingAnalysis::compute(&stream, &all), bbs)
    }

    fn counted_loop(n: i64) -> specmt_isa::Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn loop_iteration_probability() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        // 100 windows open; 99 reach the next iteration.
        assert_eq!(reach.occurrences(body), 100);
        assert!((reach.prob(body, body) - 0.99).abs() < 1e-12);
        assert_eq!(reach.avg_distance(body, body), 2.0);
    }

    #[test]
    fn loop_exit_rarely_reached_within_window() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        let exit = bbs.block_of(specmt_isa::Pc(4));
        // A body window closes at the *next* body occurrence (the §3.1
        // endpoint constraint), so only the final iteration's window reaches
        // the loop exit: 1 out of 100.
        assert!((reach.prob(body, exit) - 0.01).abs() < 1e-12);
        // That single reaching window spans the last iteration: 2
        // instructions.
        assert_eq!(reach.avg_distance(body, exit), 2.0);
    }

    #[test]
    fn window_constraint_blocks_reach_after_source_repeat() {
        // Alternating blocks: a b a b ... The pair (a, halt) is only
        // reached by the final window.
        let (reach, bbs) = analyse(counted_loop(10));
        let entry = bbs.block_of(specmt_isa::Pc(0));
        let exit = bbs.block_of(specmt_isa::Pc(4));
        // Entry occurs once; reaches everything.
        assert_eq!(reach.occurrences(entry), 1);
        assert!((reach.prob(entry, exit) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untracked_blocks_report_zero() {
        let program = counted_loop(5);
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 10_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let reach = ReachingAnalysis::compute(&stream, &[0]);
        assert_eq!(reach.prob(0, 1), 0.0);
        assert_eq!(reach.prob(1, 0), 0.0);
        assert_eq!(reach.avg_distance(0, 1), 0.0);
        assert_eq!(reach.occurrences(1), 0);
    }

    #[test]
    fn pairs_filters_by_prob_and_distance() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        // With min_dist 1, the body self-pair qualifies at prob 0.99.
        let pairs = reach.pairs(0.95, 1.0);
        assert!(pairs
            .iter()
            .any(|p| p.sp_block == body && p.cqip_block == body));
        // With min_dist 3, the 2-instruction self-pair is filtered out.
        let pairs = reach.pairs(0.95, 3.0);
        assert!(!pairs
            .iter()
            .any(|p| p.sp_block == body && p.cqip_block == body));
    }

    /// The two implementations must agree exactly — counts, distances and
    /// occurrences are integer state, so equality is bit-level.
    fn assert_identical(a: &ReachingAnalysis, b: &ReachingAnalysis) {
        assert_eq!(a.tracked, b.tracked);
        assert_eq!(a.occurrences, b.occurrences);
        assert_eq!(a.reach, b.reach);
        assert_eq!(a.dist_sum, b.dist_sum);
    }

    #[test]
    fn word_parallel_matches_naive_on_loops() {
        for n in [1, 2, 7, 64, 200] {
            let program = counted_loop(n);
            let bbs = BasicBlocks::of(&program);
            let trace = Trace::generate(program, 1_000_000).unwrap();
            let stream = BlockStream::new(&trace, &bbs);
            let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
            assert_identical(
                &ReachingAnalysis::compute(&stream, &all),
                &ReachingAnalysis::compute_naive(&stream, &all),
            );
        }
    }

    #[test]
    fn word_parallel_matches_naive_across_shard_boundaries() {
        // A chain of many small loops yields enough blocks to span several
        // 64-bit source words, exercising the per-word credit masks (the
        // sharded path itself needs >=192 sources and a long stream; the
        // multi-word single-shard kernel is the same code).
        let mut b = ProgramBuilder::new();
        for k in 0..70 {
            let top = b.fresh_label(&format!("top{k}"));
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 3 + (k % 5));
            b.bind(top);
            b.addi(Reg::R1, Reg::R1, 1);
            b.blt(Reg::R1, Reg::R2, top);
        }
        b.halt();
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 1_000_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
        assert!(all.len() > 128, "want multiple source words, got {}", all.len());
        assert_identical(
            &ReachingAnalysis::compute(&stream, &all),
            &ReachingAnalysis::compute_naive(&stream, &all),
        );
        // Tracking a sparse subset (every third block) must also agree.
        let subset: Vec<BlockId> = all.iter().copied().step_by(3).collect();
        assert_identical(
            &ReachingAnalysis::compute(&stream, &subset),
            &ReachingAnalysis::compute_naive(&stream, &subset),
        );
    }

    #[test]
    fn multi_word_fast_path_matches_naive_at_word_boundaries() {
        // A chain of small loops yields > 200 blocks; tracking exactly
        // n = 63/64/65/200 of them straddles the one-word/multi-word
        // boundary of the per-word kernels (63/64 run the fixed-grid
        // kernel, 65/200 the wide-destination kernel across 2/4 source
        // words).
        let mut b = ProgramBuilder::new();
        for k in 0..110 {
            let top = b.fresh_label(&format!("top{k}"));
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 3 + (k % 5));
            b.bind(top);
            b.addi(Reg::R1, Reg::R1, 1);
            b.blt(Reg::R1, Reg::R2, top);
        }
        b.halt();
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 1_000_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
        assert!(all.len() >= 200, "want >= 200 blocks, got {}", all.len());
        for n in [63usize, 64, 65, 200] {
            let subset: Vec<BlockId> = all[..n].to_vec();
            assert_identical(
                &ReachingAnalysis::compute(&stream, &subset),
                &ReachingAnalysis::compute_naive(&stream, &subset),
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate tracked block")]
    fn duplicate_tracked_blocks_panic() {
        let program = counted_loop(3);
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 10_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let _ = ReachingAnalysis::compute(&stream, &[0, 0]);
    }
}
