//! Empirical reaching probabilities and distances, measured on the block
//! stream.

use crate::{BitSet, BlockId, BlockStream};

/// Reaching statistics for one ordered pair of blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairStat {
    /// The candidate spawning-point block.
    pub sp_block: BlockId,
    /// The candidate control-quasi-independent-point block.
    pub cqip_block: BlockId,
    /// Probability of executing `cqip_block` after `sp_block` (with both
    /// appearing only as the endpoints of the dynamic sequence).
    pub prob: f64,
    /// Average dynamic instructions from the first instruction of
    /// `sp_block` to the first instruction of `cqip_block`, over the
    /// occurrences that did reach.
    pub avg_dist: f64,
    /// Occurrences of `sp_block` that reached `cqip_block`.
    pub reach_count: u64,
    /// Total occurrences of `sp_block`.
    pub source_occurrences: u64,
}

/// Empirical reaching analysis over a [`BlockStream`].
///
/// For every ordered pair `(i, j)` of *tracked* blocks this measures the
/// paper's reaching probability directly on the profile: each dynamic
/// occurrence of `i` opens a window that closes at the next occurrence of
/// `i`; `j` is *reached* if it appears inside the window. This realises the
/// §3.1 sequence constraint exactly — the source and destination appear only
/// as the first and last element, interior blocks may repeat — and
/// simultaneously accumulates the expected instruction distance.
///
/// The final, unclosed window of each source still counts in the
/// denominator, so probabilities are very slightly conservative near the end
/// of the trace.
///
/// Complexity: `O(events × tracked)` time, `O(tracked²)` space. Track only
/// the blocks kept by [`DynCfg::prune_to_coverage`](crate::DynCfg) to keep
/// both in hand — exactly why the paper prunes, too.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
/// use specmt_analysis::{BasicBlocks, BlockStream, ReachingAnalysis};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label("top");
/// b.li(Reg::R1, 0);
/// b.li(Reg::R2, 50);
/// b.bind(top);
/// b.addi(Reg::R1, Reg::R1, 1); // loop body: block 1
/// b.blt(Reg::R1, Reg::R2, top);
/// b.halt();
/// let program = b.build()?;
/// let bbs = BasicBlocks::of(&program);
/// let trace = Trace::generate(program, 100_000)?;
/// let stream = BlockStream::new(&trace, &bbs);
///
/// let all: Vec<u32> = (0..bbs.num_blocks() as u32).collect();
/// let reach = ReachingAnalysis::compute(&stream, &all);
/// // An iteration almost always reaches the next iteration.
/// assert!(reach.prob(1, 1) > 0.9);
/// assert_eq!(reach.avg_distance(1, 1), 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachingAnalysis {
    tracked: Vec<BlockId>,
    index_of: Vec<i32>,
    n: usize,
    reach: Vec<u64>,
    dist_sum: Vec<u64>,
    occurrences: Vec<u64>,
}

impl ReachingAnalysis {
    /// Measures reaching statistics for all ordered pairs of `tracked`
    /// blocks over `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `tracked` contains a block id outside the stream's
    /// decomposition or a duplicate.
    pub fn compute(stream: &BlockStream, tracked: &[BlockId]) -> ReachingAnalysis {
        let num_blocks = stream.num_blocks();
        let n = tracked.len();
        let mut index_of = vec![-1i32; num_blocks];
        for (dense, &b) in tracked.iter().enumerate() {
            assert!((b as usize) < num_blocks, "tracked block out of range");
            assert_eq!(index_of[b as usize], -1, "duplicate tracked block");
            index_of[b as usize] = dense as i32;
        }

        let mut reach = vec![0u64; n * n];
        let mut dist_sum = vec![0u64; n * n];
        let mut occurrences = vec![0u64; n];
        let mut open = vec![false; n];
        let mut win_start = vec![0u64; n];
        let mut seen: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();

        let mut cum = 0u64;
        for e in stream.events() {
            let dense = index_of[e.block as usize];
            if dense >= 0 {
                let j = dense as usize;
                for (i, open_i) in open.iter().enumerate() {
                    if *open_i && seen[i].insert(j) {
                        reach[i * n + j] += 1;
                        dist_sum[i * n + j] += cum - win_start[i];
                    }
                }
                occurrences[j] += 1;
                seen[j].clear();
                win_start[j] = cum;
                open[j] = true;
            }
            cum += e.len as u64;
        }

        ReachingAnalysis {
            tracked: tracked.to_vec(),
            index_of,
            n,
            reach,
            dist_sum,
            occurrences,
        }
    }

    fn dense(&self, block: BlockId) -> Option<usize> {
        self.index_of
            .get(block as usize)
            .and_then(|&i| (i >= 0).then_some(i as usize))
    }

    /// The tracked block ids, in dense order.
    pub fn tracked(&self) -> &[BlockId] {
        &self.tracked
    }

    /// Occurrences of `block` in the stream (zero if untracked).
    pub fn occurrences(&self, block: BlockId) -> u64 {
        self.dense(block).map_or(0, |i| self.occurrences[i])
    }

    /// The reaching probability from `sp_block` to `cqip_block`.
    ///
    /// Zero if either block is untracked or the source never executed.
    pub fn prob(&self, sp_block: BlockId, cqip_block: BlockId) -> f64 {
        let (Some(i), Some(j)) = (self.dense(sp_block), self.dense(cqip_block)) else {
            return 0.0;
        };
        if self.occurrences[i] == 0 {
            return 0.0;
        }
        self.reach[i * self.n + j] as f64 / self.occurrences[i] as f64
    }

    /// Average instructions from `sp_block` to `cqip_block` over reaching
    /// occurrences (zero if it never reached).
    pub fn avg_distance(&self, sp_block: BlockId, cqip_block: BlockId) -> f64 {
        let (Some(i), Some(j)) = (self.dense(sp_block), self.dense(cqip_block)) else {
            return 0.0;
        };
        let r = self.reach[i * self.n + j];
        if r == 0 {
            return 0.0;
        }
        self.dist_sum[i * self.n + j] as f64 / r as f64
    }

    /// All ordered pairs whose probability is at least `min_prob` and whose
    /// average distance is at least `min_dist` instructions — the paper's
    /// candidate spawning pairs (0.95 and 32 in the evaluation).
    ///
    /// Pairs are returned grouped by source block in dense order.
    pub fn pairs(&self, min_prob: f64, min_dist: f64) -> Vec<PairStat> {
        let mut out = Vec::new();
        for i in 0..self.n {
            if self.occurrences[i] == 0 {
                continue;
            }
            for j in 0..self.n {
                let r = self.reach[i * self.n + j];
                if r == 0 {
                    continue;
                }
                let prob = r as f64 / self.occurrences[i] as f64;
                let avg_dist = self.dist_sum[i * self.n + j] as f64 / r as f64;
                if prob >= min_prob && avg_dist >= min_dist {
                    out.push(PairStat {
                        sp_block: self.tracked[i],
                        cqip_block: self.tracked[j],
                        prob,
                        avg_dist,
                        reach_count: r,
                        source_occurrences: self.occurrences[i],
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BasicBlocks;
    use specmt_isa::{ProgramBuilder, Reg};
    use specmt_trace::Trace;

    fn analyse(program: specmt_isa::Program) -> (ReachingAnalysis, BasicBlocks) {
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 1_000_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let all: Vec<BlockId> = (0..bbs.num_blocks() as BlockId).collect();
        (ReachingAnalysis::compute(&stream, &all), bbs)
    }

    fn counted_loop(n: i64) -> specmt_isa::Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn loop_iteration_probability() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        // 100 windows open; 99 reach the next iteration.
        assert_eq!(reach.occurrences(body), 100);
        assert!((reach.prob(body, body) - 0.99).abs() < 1e-12);
        assert_eq!(reach.avg_distance(body, body), 2.0);
    }

    #[test]
    fn loop_exit_rarely_reached_within_window() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        let exit = bbs.block_of(specmt_isa::Pc(4));
        // A body window closes at the *next* body occurrence (the §3.1
        // endpoint constraint), so only the final iteration's window reaches
        // the loop exit: 1 out of 100.
        assert!((reach.prob(body, exit) - 0.01).abs() < 1e-12);
        // That single reaching window spans the last iteration: 2
        // instructions.
        assert_eq!(reach.avg_distance(body, exit), 2.0);
    }

    #[test]
    fn window_constraint_blocks_reach_after_source_repeat() {
        // Alternating blocks: a b a b ... The pair (a, halt) is only
        // reached by the final window.
        let (reach, bbs) = analyse(counted_loop(10));
        let entry = bbs.block_of(specmt_isa::Pc(0));
        let exit = bbs.block_of(specmt_isa::Pc(4));
        // Entry occurs once; reaches everything.
        assert_eq!(reach.occurrences(entry), 1);
        assert!((reach.prob(entry, exit) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untracked_blocks_report_zero() {
        let program = counted_loop(5);
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 10_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let reach = ReachingAnalysis::compute(&stream, &[0]);
        assert_eq!(reach.prob(0, 1), 0.0);
        assert_eq!(reach.prob(1, 0), 0.0);
        assert_eq!(reach.avg_distance(0, 1), 0.0);
        assert_eq!(reach.occurrences(1), 0);
    }

    #[test]
    fn pairs_filters_by_prob_and_distance() {
        let (reach, bbs) = analyse(counted_loop(100));
        let body = bbs.block_of(specmt_isa::Pc(2));
        // With min_dist 1, the body self-pair qualifies at prob 0.99.
        let pairs = reach.pairs(0.95, 1.0);
        assert!(pairs
            .iter()
            .any(|p| p.sp_block == body && p.cqip_block == body));
        // With min_dist 3, the 2-instruction self-pair is filtered out.
        let pairs = reach.pairs(0.95, 3.0);
        assert!(!pairs
            .iter()
            .any(|p| p.sp_block == body && p.cqip_block == body));
    }

    #[test]
    #[should_panic(expected = "duplicate tracked block")]
    fn duplicate_tracked_blocks_panic() {
        let program = counted_loop(3);
        let bbs = BasicBlocks::of(&program);
        let trace = Trace::generate(program, 10_000).unwrap();
        let stream = BlockStream::new(&trace, &bbs);
        let _ = ReachingAnalysis::compute(&stream, &[0, 0]);
    }
}
