//! # specmt-analysis
//!
//! Profile analyses over dynamic traces: the machinery of §3.1 of
//! *Thread-Spawning Schemes for Speculative Multithreading* (Marcuello &
//! González, HPCA 2002).
//!
//! The pipeline is:
//!
//! 1. [`BasicBlocks`] — static decomposition of a program into basic blocks.
//! 2. [`BlockStream`] — the dynamic trace re-expressed as a stream of basic
//!    block executions.
//! 3. [`DynCfg`] — the *dynamic control-flow graph*: blocks as nodes, edge
//!    weights from observed transition frequencies. Supports the paper's
//!    90 %-coverage pruning, splicing edges around pruned nodes with
//!    proportional weight splitting.
//! 4. Reaching probabilities and expected distances, computed two ways:
//!    * [`ReachingAnalysis`] measures them *empirically* from the block
//!      stream (the semantics the paper defines: the probability of
//!      executing block `j` after block `i`, where `i` and `j` appear in the
//!      dynamic sequence only as its endpoints), and
//!    * [`MarkovReach`] computes them *analytically* on the (pruned) CFG via
//!      absorbing-walk solves — the paper's matrix formulation.
//!
//! The two agree on well-covered pairs; the empirical path is the default
//! used by `specmt-spawn`, the analytical path reproduces the paper's
//! methodology and cross-validates the empirical one (see the integration
//! tests).
//!
//! # Examples
//!
//! ```
//! use specmt_isa::{ProgramBuilder, Reg};
//! use specmt_trace::Trace;
//! use specmt_analysis::{BasicBlocks, BlockStream};
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.fresh_label("top");
//! b.li(Reg::R1, 0);
//! b.li(Reg::R2, 8);
//! b.bind(top);
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.blt(Reg::R1, Reg::R2, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let bbs = BasicBlocks::of(&program);
//! assert_eq!(bbs.num_blocks(), 3); // entry, loop body, halt
//!
//! let trace = Trace::generate(program, 1_000)?;
//! let stream = BlockStream::new(&trace, &bbs);
//! assert_eq!(stream.events().len(), 1 + 8 + 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bbs;
mod bitset;
mod blockstream;
mod cfg;
mod markov;
mod reach;

/// Code revision of the profile-analysis stage (CFG construction, pruning,
/// reaching probabilities), a component of profile-namespace store keys.
/// Bump when these analyses change output for identical inputs.
pub const CODE_REV: u32 = 1;

pub use bbs::BasicBlocks;
pub use bitset::BitSet;
pub use blockstream::{BlockEvent, BlockStream};
pub use cfg::{CfgEdge, CfgNode, DynCfg, PruneSummary};
pub use markov::MarkovReach;
pub use reach::{PairStat, ReachingAnalysis};

/// Identifier of a basic block within a [`BasicBlocks`] decomposition.
pub type BlockId = u32;
