//! A small fixed-capacity bit set.

/// A fixed-capacity set of small integers, backed by `u64` words.
///
/// Used by the reaching analysis to track, for every open source window,
/// which destination blocks have already been recorded. Kept deliberately
/// minimal — `specmt` avoids external bit-set crates.
///
/// # Examples
///
/// ```
/// use specmt_analysis::BitSet;
///
/// let mut s = BitSet::new(100);
/// assert!(!s.contains(42));
/// assert!(s.insert(42)); // newly inserted
/// assert!(!s.insert(42)); // already present
/// assert!(s.contains(42));
/// s.clear();
/// assert!(!s.contains(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `value` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        let word = &mut self.words[value / 64];
        let mask = 1 << (value % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes all values.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of values currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(200);
        for v in [0, 63, 64, 65, 127, 128, 199] {
            assert!(!s.contains(v));
            assert!(s.insert(v));
            assert!(s.contains(v));
            assert!(!s.insert(v));
        }
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(300);
        for v in [250, 3, 64, 150] {
            s.insert(v);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 150, 250]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
