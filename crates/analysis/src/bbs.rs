//! Static basic-block decomposition.

use specmt_isa::{Pc, Program};

use crate::BlockId;

/// The static basic-block decomposition of a program.
///
/// A *leader* is the program entry, any control-transfer target, or the
/// instruction following a control transfer or `halt`. A basic block runs
/// from a leader up to (and including) the next control transfer, `halt`, or
/// the instruction before the next leader.
///
/// Because all control targets are leaders, dynamic execution always enters
/// a block at its first instruction — the property the reaching analysis and
/// the paper's "spawning points are first instructions of basic blocks" rule
/// rely on.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_analysis::BasicBlocks;
///
/// let mut b = ProgramBuilder::new();
/// let skip = b.fresh_label("skip");
/// b.li(Reg::R1, 1); // @0 \ block 0
/// b.beq(Reg::R1, Reg::ZERO, skip); // @1 /
/// b.li(Reg::R2, 2); // @2   block 1
/// b.bind(skip);
/// b.halt(); // @3   block 2
/// let program = b.build()?;
///
/// let bbs = BasicBlocks::of(&program);
/// assert_eq!(bbs.num_blocks(), 3);
/// assert_eq!(bbs.block_of(specmt_isa::Pc(1)), 0);
/// assert_eq!(bbs.start(2), specmt_isa::Pc(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BasicBlocks {
    /// Start pc of each block, ascending.
    starts: Vec<Pc>,
    /// Length (in instructions) of each block.
    lens: Vec<u32>,
    /// Block id of every static instruction.
    block_of: Vec<BlockId>,
}

impl BasicBlocks {
    /// Decomposes `program` into basic blocks.
    pub fn of(program: &Program) -> BasicBlocks {
        let n = program.len();
        let mut leader = vec![false; n];
        leader[program.entry().index()] = true;
        if n > 0 {
            leader[0] = true;
        }
        for (idx, inst) in program.insts().iter().enumerate() {
            if let Some(t) = inst.control_target() {
                leader[t.index()] = true;
            }
            if (inst.is_branch() || inst.is_halt()) && idx + 1 < n {
                leader[idx + 1] = true;
            }
        }

        let mut starts = Vec::new();
        let mut lens = Vec::new();
        let mut block_of = vec![0 as BlockId; n];
        let mut cur_start = 0usize;
        for idx in 0..n {
            if leader[idx] && idx != cur_start {
                starts.push(Pc(cur_start as u32));
                lens.push((idx - cur_start) as u32);
                cur_start = idx;
            }
            block_of[idx] = starts.len() as BlockId;
        }
        starts.push(Pc(cur_start as u32));
        lens.push((n - cur_start) as u32);

        BasicBlocks {
            starts,
            lens,
            block_of,
        }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.starts.len()
    }

    /// The block containing the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    pub fn block_of(&self, pc: Pc) -> BlockId {
        self.block_of[pc.index()]
    }

    /// First instruction of block `id`.
    pub fn start(&self, id: BlockId) -> Pc {
        self.starts[id as usize]
    }

    /// Number of instructions in block `id`.
    pub fn len_of(&self, id: BlockId) -> u32 {
        self.lens[id as usize]
    }

    /// Whether `pc` is the first instruction of its block.
    pub fn is_block_start(&self, pc: Pc) -> bool {
        self.start(self.block_of(pc)) == pc
    }

    /// Iterates over `(id, start, len)` for every block.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Pc, u32)> + '_ {
        self.starts
            .iter()
            .zip(&self.lens)
            .enumerate()
            .map(|(id, (&s, &l))| (id as BlockId, s, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.li(Reg::R2, 2);
        b.halt();
        let bbs = BasicBlocks::of(&b.build().unwrap());
        assert_eq!(bbs.num_blocks(), 1);
        assert_eq!(bbs.len_of(0), 3);
    }

    #[test]
    fn backward_branch_splits_blocks() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // block 0: @0
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1); // block 1: @1..=@2
        b.blt(Reg::R1, Reg::R2, top);
        b.halt(); // block 2: @3
        let bbs = BasicBlocks::of(&b.build().unwrap());
        assert_eq!(bbs.num_blocks(), 3);
        assert_eq!(bbs.start(1), Pc(1));
        assert_eq!(bbs.len_of(1), 2);
        assert_eq!(bbs.block_of(Pc(2)), 1);
        assert!(bbs.is_block_start(Pc(1)));
        assert!(!bbs.is_block_start(Pc(2)));
    }

    #[test]
    fn call_target_and_continuation_are_leaders() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1); // @0 block 0 (with call)
        b.call("f"); // @1
        b.halt(); // @2 block 1
        b.begin_func("f");
        b.ret(); // @3 block 2
        b.end_func();
        let bbs = BasicBlocks::of(&b.build().unwrap());
        assert_eq!(bbs.num_blocks(), 3);
        assert_eq!(bbs.start(1), Pc(2)); // the continuation
        assert_eq!(bbs.start(2), Pc(3)); // the callee entry
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_block() {
        let mut b = ProgramBuilder::new();
        let l1 = b.fresh_label("l1");
        let l2 = b.fresh_label("l2");
        b.beq(Reg::R1, Reg::ZERO, l1);
        b.li(Reg::R2, 1);
        b.j(l2);
        b.bind(l1);
        b.li(Reg::R2, 2);
        b.bind(l2);
        b.halt();
        let program = b.build().unwrap();
        let bbs = BasicBlocks::of(&program);
        // Blocks tile the program: consecutive, non-overlapping, complete.
        let mut covered = 0u32;
        for (id, start, len) in bbs.iter() {
            assert_eq!(start.0, covered);
            for off in 0..len {
                assert_eq!(bbs.block_of(Pc(start.0 + off)), id);
            }
            covered += len;
        }
        assert_eq!(covered as usize, program.len());
    }

    #[test]
    fn entry_not_at_zero_is_a_leader() {
        let mut b = ProgramBuilder::new();
        let start = b.fresh_label("start");
        b.halt(); // @0
        b.bind(start);
        b.set_entry(start);
        b.li(Reg::R1, 1); // @1
        b.halt(); // @2
        let bbs = BasicBlocks::of(&b.build().unwrap());
        // halt at @0 ends block 0; entry at @1 begins block 1.
        assert!(bbs.is_block_start(Pc(1)));
    }
}
