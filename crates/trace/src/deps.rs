//! Dynamic data-dependence graphs over traces.

use specmt_isa::Reg;

use crate::Trace;

/// Sentinel producer index meaning "no producer in the trace" (the operand's
/// value predates execution: an initial register value or pre-loaded
/// memory).
pub const NO_PRODUCER: u32 = u32::MAX;

/// For every dynamic instruction of a [`Trace`], the dynamic indices of the
/// instructions that produced its operands.
///
/// * `reg_producer(k, s)` — producer of the `s`-th register source operand
///   of dynamic instruction `k` (matching [`Inst::srcs`]), or
///   [`NO_PRODUCER`].
/// * `mem_producer(k)` — for loads, the most recent earlier store to the
///   same word address, or [`NO_PRODUCER`].
///
/// Reads of the hardwired-zero register have no producer.
///
/// This is the raw material for the paper's *independent* and *predictable*
/// CQIP-ordering criteria (§3.1 criteria b/c) and for the simulator's
/// inter-thread register/memory communication model.
///
/// [`Inst::srcs`]: specmt_isa::Inst::srcs
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::{DepGraph, Trace, NO_PRODUCER};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 2); // dyn 0
/// b.addi(Reg::R2, Reg::R1, 1); // dyn 1: consumes dyn 0
/// b.halt();
/// let trace = Trace::generate(b.build()?, 100)?;
/// let deps = DepGraph::build(&trace);
/// assert_eq!(deps.reg_producer(1, 0), 0);
/// assert_eq!(deps.reg_producer(0, 0), NO_PRODUCER);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DepGraph {
    reg_producers: Vec<[u32; 2]>,
    mem_producers: Vec<u32>,
    /// Largest address in the trace, folded into the build pass so
    /// consumers sizing address-indexed structures (e.g. the compact cache
    /// tag store) need no extra scan per simulation run.
    max_addr: u64,
}

/// Per-static-instruction facts predecoded once per [`DepGraph::build`],
/// so the per-dynamic-instruction pass reads one flat byte-packed entry
/// instead of interrogating the `Inst` enum four times.
#[derive(Clone, Copy)]
struct DepPre {
    /// Source register index per operand slot (`NO_REG` = absent or the
    /// hardwired zero register, which never has a producer).
    src: [u8; 2],
    /// Destination register index, or `NO_REG`.
    dst: u8,
    is_load: bool,
    is_store: bool,
}

const NO_REG: u8 = u8::MAX;

/// Open-addressing `address -> last store index` map with linear probing.
/// Exact-key semantics only (no iteration), so it computes exactly what the
/// `HashMap` it replaces did, minus the hashing and branching overhead.
struct AddrMap {
    /// Slot keys; an empty slot holds `u64::MAX`. Split from the values so
    /// probing scans key words only.
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: usize,
    /// Out-of-line entry for the one key that collides with the empty
    /// marker (an address of `u64::MAX` is degenerate but must stay
    /// correct).
    max_key: Option<u32>,
}

impl AddrMap {
    fn with_capacity(entries: usize) -> AddrMap {
        // ≤ 50% load factor keeps probe chains short.
        let cap = (entries * 2).next_power_of_two().max(16);
        AddrMap {
            keys: vec![u64::MAX; cap],
            vals: vec![0; cap],
            mask: cap - 1,
            max_key: None,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing: multiplicative spread of aligned addresses.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        if key == u64::MAX {
            return self.max_key;
        }
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == u64::MAX {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, value: u32) {
        if key == u64::MAX {
            self.max_key = Some(value);
            return;
        }
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key || k == u64::MAX {
                self.keys[i] = key;
                self.vals[i] = value;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

impl DepGraph {
    /// Computes producers for every dynamic instruction of `trace`.
    ///
    /// Runs in a single pass: `O(len)` time, `O(len + distinct addresses)`
    /// space. Static instructions are predecoded up front and the
    /// last-store map is a purpose-built open-addressing table, so the
    /// pass itself is a tight scan over the trace's pc column.
    pub fn build(trace: &Trace) -> DepGraph {
        let n = trace.len();
        let mut reg_producers = vec![[NO_PRODUCER; 2]; n];
        let mut mem_producers = vec![NO_PRODUCER; n];
        let mut last_reg_write = [NO_PRODUCER; specmt_isa::NUM_REGS];

        let program = trace.program();
        let mut pre: Vec<DepPre> = Vec::with_capacity(program.len());
        let mut store_pcs = 0usize;
        for inst in program.insts() {
            let mut p = DepPre {
                src: [NO_REG; 2],
                dst: NO_REG,
                is_load: inst.is_load(),
                is_store: inst.is_store(),
            };
            for (s, r) in inst.srcs().into_iter().enumerate() {
                if let Some(r) = r {
                    if !r.is_zero() {
                        p.src[s] = r.index() as u8;
                    }
                }
            }
            if let Some(d) = inst.dst() {
                if !d.is_zero() {
                    p.dst = d.index() as u8;
                }
            }
            store_pcs += usize::from(p.is_store);
            pre.push(p);
        }
        // Size the map by the dynamic store count — an upper bound on
        // distinct store addresses — so it never needs to grow.
        let dyn_stores = if store_pcs > 0 {
            trace
                .pcs()
                .iter()
                .filter(|&&pc| pre[pc as usize].is_store)
                .count()
        } else {
            0
        };
        let mut last_store = AddrMap::with_capacity(dyn_stores);

        let mut max_addr = 0u64;
        for (k, &pc) in trace.pcs().iter().enumerate() {
            max_addr = max_addr.max(trace.addr_at(k));
            let p = pre[pc as usize];
            if p.src[0] != NO_REG {
                reg_producers[k][0] = last_reg_write[p.src[0] as usize];
            }
            if p.src[1] != NO_REG {
                reg_producers[k][1] = last_reg_write[p.src[1] as usize];
            }
            if p.is_load {
                if let Some(v) = last_store.get(trace.addr_at(k)) {
                    mem_producers[k] = v;
                }
            }
            if p.is_store {
                last_store.insert(trace.addr_at(k), k as u32);
            }
            if p.dst != NO_REG {
                last_reg_write[p.dst as usize] = k as u32;
            }
        }

        DepGraph {
            reg_producers,
            mem_producers,
            max_addr,
        }
    }

    /// The largest address any dynamic instruction touches (0 for an empty
    /// trace).
    pub fn max_addr(&self) -> u64 {
        self.max_addr
    }

    /// Number of dynamic instructions covered.
    pub fn len(&self) -> usize {
        self.reg_producers.len()
    }

    /// Whether the graph covers an empty trace.
    pub fn is_empty(&self) -> bool {
        self.reg_producers.is_empty()
    }

    /// Producer of the `s`-th register source operand of dynamic
    /// instruction `k` (`s` in `0..2`), or [`NO_PRODUCER`].
    pub fn reg_producer(&self, k: usize, s: usize) -> u32 {
        self.reg_producers[k][s]
    }

    /// Both register-operand producers of dynamic instruction `k`.
    pub fn reg_producers(&self, k: usize) -> [u32; 2] {
        self.reg_producers[k]
    }

    /// Producer store of a load at dynamic index `k`, or [`NO_PRODUCER`].
    pub fn mem_producer(&self, k: usize) -> u32 {
        self.mem_producers[k]
    }

    /// The register live-ins of the window `start..end`: registers read
    /// within the window whose producing instruction lies before `start`,
    /// together with the producer index ([`NO_PRODUCER`] if the value
    /// predates the trace) and the dynamic index of the first in-window
    /// consumer.
    ///
    /// This is exactly the set of values the paper's processor predicts when
    /// it spawns a thread over that window.
    pub fn live_ins(&self, trace: &Trace, start: usize, end: usize) -> Vec<LiveIn> {
        debug_assert!(start <= end && end <= trace.len());
        let mut seen_write = [false; specmt_isa::NUM_REGS];
        let mut out = Vec::new();
        let mut seen_live = [false; specmt_isa::NUM_REGS];
        for k in start..end {
            let inst = trace.inst(k);
            for (s, src) in inst.srcs().into_iter().enumerate() {
                let Some(r) = src else { continue };
                if r.is_zero() || seen_write[r.index()] || seen_live[r.index()] {
                    continue;
                }
                seen_live[r.index()] = true;
                out.push(LiveIn {
                    reg: r,
                    producer: self.reg_producers[k][s],
                    first_use: k as u32,
                });
            }
            if let Some(dst) = inst.dst() {
                if !dst.is_zero() {
                    seen_write[dst.index()] = true;
                }
            }
        }
        out
    }
}

/// One thread live-in value: a register whose first in-window read precedes
/// any in-window write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveIn {
    /// The live-in register.
    pub reg: Reg,
    /// Dynamic index of the producing instruction (before the window), or
    /// [`NO_PRODUCER`].
    pub producer: u32,
    /// Dynamic index of the first consumer inside the window.
    pub first_use: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::ProgramBuilder;

    fn mem_chain_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x100); // 0
        b.li(Reg::R2, 5); // 1
        b.st(Reg::R2, Reg::R1, 0); // 2: store 5 -> 0x100
        b.ld(Reg::R3, Reg::R1, 0); // 3: load from 0x100 (producer = 2)
        b.st(Reg::R3, Reg::R1, 8); // 4: store -> 0x108
        b.ld(Reg::R4, Reg::R1, 8); // 5: load (producer = 4)
        b.ld(Reg::R5, Reg::R1, 16); // 6: load from untouched memory
        b.halt();
        Trace::generate(b.build().unwrap(), 100).unwrap()
    }

    #[test]
    fn memory_producers_track_addresses() {
        let trace = mem_chain_trace();
        let deps = DepGraph::build(&trace);
        assert_eq!(deps.mem_producer(3), 2);
        assert_eq!(deps.mem_producer(5), 4);
        assert_eq!(deps.mem_producer(6), NO_PRODUCER);
        // Non-loads have no memory producer.
        assert_eq!(deps.mem_producer(2), NO_PRODUCER);
    }

    #[test]
    fn register_producers_follow_last_writer() {
        let trace = mem_chain_trace();
        let deps = DepGraph::build(&trace);
        // Store at dyn 4: srcs = [R3 (from load 3), R1 (from li 0)]
        assert_eq!(deps.reg_producer(4, 0), 3);
        assert_eq!(deps.reg_producer(4, 1), 0);
    }

    #[test]
    fn producers_always_precede_consumers() {
        let trace = mem_chain_trace();
        let deps = DepGraph::build(&trace);
        for k in 0..deps.len() {
            for s in 0..2 {
                let p = deps.reg_producer(k, s);
                if p != NO_PRODUCER {
                    assert!((p as usize) < k);
                }
            }
            let m = deps.mem_producer(k);
            if m != NO_PRODUCER {
                assert!((m as usize) < k);
            }
        }
    }

    #[test]
    fn zero_register_reads_have_no_producer() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1); // dyn 0 (irrelevant)
        b.add(Reg::R2, Reg::ZERO, Reg::ZERO); // dyn 1
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 100).unwrap();
        let deps = DepGraph::build(&trace);
        assert_eq!(deps.reg_producer(1, 0), NO_PRODUCER);
        assert_eq!(deps.reg_producer(1, 1), NO_PRODUCER);
    }

    #[test]
    fn live_ins_respect_window_writes() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10); // 0
        b.li(Reg::R2, 20); // 1
                           // window start
        b.addi(Reg::R3, Reg::R1, 0); // 2: reads R1 (live-in)
        b.addi(Reg::R1, Reg::R1, 1); // 3: reads R1 (already counted), writes R1
        b.addi(Reg::R4, Reg::R1, 0); // 4: reads R1 after in-window write: not live-in
        b.addi(Reg::R5, Reg::R2, 0); // 5: reads R2 (live-in)
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 100).unwrap();
        let deps = DepGraph::build(&trace);
        let live = deps.live_ins(&trace, 2, 6);
        let regs: Vec<Reg> = live.iter().map(|l| l.reg).collect();
        assert_eq!(regs, vec![Reg::R1, Reg::R2]);
        assert_eq!(live[0].producer, 0);
        assert_eq!(live[0].first_use, 2);
        assert_eq!(live[1].producer, 1);
        assert_eq!(live[1].first_use, 5);
    }

    #[test]
    fn live_in_with_no_trace_producer() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg::R1, Reg::SP, 0); // reads SP, initialised outside the trace
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 100).unwrap();
        let deps = DepGraph::build(&trace);
        let live = deps.live_ins(&trace, 0, 1);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].reg, Reg::SP);
        assert_eq!(live[0].producer, NO_PRODUCER);
    }
}
