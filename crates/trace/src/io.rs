//! Compact binary serialization for traces.
//!
//! Traces are expensive to regenerate for large workloads, so they can be
//! persisted in a self-contained container:
//!
//! ```text
//! magic "SMTR" | version u32 LE | program-JSON length u32 LE | program JSON
//! | record count u64 LE | final regs (32 x u64 LE)
//! | pc column | taken column | addr column | result column
//! ```
//!
//! The payload mirrors the in-memory structure-of-arrays layout, one column
//! at a time, so encode and decode are four tight loops rather than a
//! per-record flag dispatch:
//!
//! * **pc** — zigzag-varint deltas from the previous pc (the overwhelmingly
//!   common sequential step encodes as one byte);
//! * **taken** — the packed 64-flags-per-word bitmap, raw `u64` LE words;
//! * **addr**, **result** — plain varints (zero, the common case for
//!   non-memory and non-producing instructions, is one byte).
//!
//! Typical traces compress to 3–6 bytes per dynamic instruction.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, BytesMut};

use crate::Trace;

const MAGIC: &[u8; 4] = b"SMTR";
const VERSION: u32 = 2;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated varint",
            ));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl Trace {
    /// Serializes the trace (including its program and final register file)
    /// to `w` in the compact binary container format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::{ProgramBuilder, Reg};
    /// use specmt_trace::Trace;
    ///
    /// let mut b = ProgramBuilder::new();
    /// b.li(Reg::R1, 3);
    /// b.halt();
    /// let trace = Trace::generate(b.build()?, 100)?;
    ///
    /// let mut bytes = Vec::new();
    /// trace.write_to(&mut bytes)?;
    /// let copy = Trace::read_from(&bytes[..])?;
    /// assert_eq!(copy.records_vec(), trace.records_vec());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        let program_json = serde_json::to_vec(self.program().as_ref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut buf = BytesMut::with_capacity(self.len() * 5 + program_json.len() + 64);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(program_json.len() as u32);
        buf.put_slice(&program_json);
        buf.put_u64_le(self.len() as u64);
        for r in specmt_isa::Reg::all() {
            buf.put_u64_le(self.final_reg(r));
        }

        let mut prev = 0i64;
        for &pc in self.pcs() {
            put_varint(&mut buf, zigzag(i64::from(pc) - prev));
            prev = i64::from(pc);
        }
        for &word in self.taken_words() {
            buf.put_u64_le(word);
        }
        for &addr in self.addrs_col() {
            put_varint(&mut buf, addr);
        }
        for &result in self.results_col() {
            put_varint(&mut buf, result);
        }
        w.write_all(&buf)
    }

    /// Deserializes a trace previously written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures, an unrecognised container (bad
    /// magic or version), or corrupt contents.
    pub fn read_from(mut r: impl Read) -> io::Result<Trace> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        Trace::from_bytes(&data)
    }

    /// Deserializes a trace from an in-memory container image, decoding
    /// straight from the caller's buffer into the trace's columns.
    ///
    /// This is the warm-load path for byte stores: [`Trace::read_from`]
    /// would first copy the whole image into a fresh `Vec` via
    /// `read_to_end`, a pure loss when the bytes are already resident.
    ///
    /// # Errors
    ///
    /// Returns an error for an unrecognised container (bad magic or
    /// version) or corrupt contents.
    pub fn from_bytes(data: &[u8]) -> io::Result<Trace> {
        let mut buf: &[u8] = data;
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());

        if buf.remaining() < 12 || &buf[..4] != MAGIC {
            return Err(bad("not a specmt trace (bad magic)"));
        }
        buf.advance(4);
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(bad(&format!("unsupported trace version {version}")));
        }
        let plen = buf.get_u32_le() as usize;
        if buf.remaining() < plen {
            return Err(bad("truncated program header"));
        }
        let program: specmt_isa::Program =
            serde_json::from_slice(&buf[..plen]).map_err(|e| bad(&e.to_string()))?;
        buf.advance(plen);
        if buf.remaining() < 8 + 32 * 8 {
            return Err(bad("truncated trailer"));
        }
        let count = buf.get_u64_le() as usize;
        let mut final_regs = [0u64; specmt_isa::NUM_REGS];
        for slot in &mut final_regs {
            *slot = buf.get_u64_le();
        }

        // Every record costs at least one pc byte, so a count beyond the
        // remaining bytes is corrupt — reject it before reserving, or a
        // crafted header could demand an unbounded allocation.
        if count > buf.remaining() {
            return Err(bad("record count exceeds available data"));
        }

        let program_len = i64::try_from(program.len()).map_err(|_| bad("program too large"))?;
        let mut pcs = Vec::with_capacity(count);
        let mut prev = 0i64;
        for _ in 0..count {
            let pc = prev + unzigzag(get_varint(&mut buf)?);
            if pc < 0 || pc >= program_len {
                return Err(bad("record pc outside program"));
            }
            pcs.push(pc as u32);
            prev = pc;
        }

        let taken_words = count.div_ceil(64);
        if buf.remaining() < taken_words * 8 {
            return Err(bad("truncated taken column"));
        }
        let mut taken = Vec::with_capacity(taken_words);
        for _ in 0..taken_words {
            taken.push(buf.get_u64_le());
        }

        let mut addrs = Vec::with_capacity(count);
        for _ in 0..count {
            addrs.push(get_varint(&mut buf)?);
        }
        let mut results = Vec::with_capacity(count);
        for _ in 0..count {
            results.push(get_varint(&mut buf)?);
        }
        Ok(Trace::from_columns(
            program, pcs, taken, addrs, results, final_regs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{ProgramBuilder, Reg};

    fn sample_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 37);
        b.bind(top);
        b.shli(Reg::R3, Reg::R1, 3);
        b.add(Reg::R3, Reg::R14, Reg::R3);
        b.st(Reg::R1, Reg::R3, 0);
        b.ld(Reg::R4, Reg::R3, 0);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        Trace::generate(b.build().unwrap(), 10_000).unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let copy = Trace::read_from(&bytes[..]).unwrap();
        assert_eq!(copy.records_vec(), trace.records_vec());
        assert_eq!(copy.program().insts(), trace.program().insts());
        for r in Reg::all() {
            assert_eq!(copy.final_reg(r), trace.final_reg(r));
        }
    }

    #[test]
    fn from_bytes_matches_read_from() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let a = Trace::from_bytes(&bytes).unwrap();
        let b = Trace::read_from(&bytes[..]).unwrap();
        assert_eq!(a.records_vec(), b.records_vec());
        assert_eq!(a.records_vec(), trace.records_vec());
    }

    #[test]
    fn encoding_is_compact() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        // The in-memory record is 24+ bytes; on disk it must average under 8.
        let per_record = bytes.len() as f64 / trace.len() as f64;
        assert!(per_record < 8.0, "{per_record:.1} bytes/record");
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();

        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(Trace::read_from(&corrupt[..]).is_err());

        let truncated = &bytes[..bytes.len() - 3];
        assert!(Trace::read_from(truncated).is_err());

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        assert!(Trace::read_from(&bad_version[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_pcs() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        // Corrupt bytes throughout the columns: read must fail cleanly or
        // succeed with in-range pcs — never panic.
        for i in (200..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[i] = 0xff;
            if let Ok(t) = Trace::read_from(&corrupt[..]) {
                assert!(t.validate().is_ok());
            }
        }
    }
}
