//! # specmt-trace
//!
//! Functional emulation and dynamic-trace generation for the `specmt`
//! speculative-multithreading toolkit.
//!
//! The HPCA 2002 paper this project reproduces drove both its profile pass
//! and its timing simulator from dynamic instruction streams produced by
//! ATOM-instrumented Alpha binaries. This crate plays ATOM's role:
//!
//! * [`Emulator`] executes a [`Program`](specmt_isa::Program) with full
//!   architectural state (registers + sparse word memory),
//! * [`Trace`] is the recorded dynamic instruction stream — one
//!   [`DynInst`] per executed instruction, carrying the branch outcome, the
//!   effective address and the produced value, and
//! * [`DepGraph`] precomputes, for every dynamic instruction, which earlier
//!   dynamic instruction produced each of its register operands and (for
//!   loads) its memory operand — the raw material for both the
//!   independence/predictability spawning criteria and the timing model.
//!
//! # Examples
//!
//! ```
//! use specmt_isa::{ProgramBuilder, Reg};
//! use specmt_trace::Trace;
//!
//! // sum = 1 + 2 + ... + 5
//! let mut b = ProgramBuilder::new();
//! let top = b.fresh_label("top");
//! b.li(Reg::R1, 0); // i
//! b.li(Reg::R2, 0); // sum
//! b.li(Reg::R3, 5); // n
//! b.bind(top);
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.add(Reg::R2, Reg::R2, Reg::R1);
//! b.blt(Reg::R1, Reg::R3, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let trace = Trace::generate(program, 1_000)?;
//! assert_eq!(trace.final_reg(Reg::R2), 15);
//! assert_eq!(trace.len(), 3 + 3 * 5 + 1); // setup + 5 iterations + halt
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod deps;
mod emulator;
mod error;
mod io;
mod memory;
mod record;

/// Code revision of the trace-generation stage, a component of every
/// trace-namespace store key (see `specmt-store`). Bump when the emulator
/// or trace recording *semantics* change — i.e. when an identical program
/// would now produce a different trace — so stored traces miss cleanly
/// instead of requiring a workspace version bump.
pub const CODE_REV: u32 = 1;

pub use deps::LiveIn;
pub use deps::{DepGraph, NO_PRODUCER};
pub use emulator::{Emulator, StepOutcome};
pub use error::TraceError;
pub use memory::Memory;
pub use record::{DynInst, Trace, TraceMix};

/// Initial stack-pointer value given to every emulated program.
///
/// The stack grows downward from here; workloads place their data well below
/// it.
pub const STACK_TOP: u64 = 0x4000_0000;

/// The architectural value of `reg` before the first instruction executes:
/// [`STACK_TOP`] for the stack pointer, zero for everything else.
///
/// Used to resolve operands whose producer is [`NO_PRODUCER`].
pub fn initial_reg(reg: specmt_isa::Reg) -> u64 {
    if reg == specmt_isa::Reg::SP {
        STACK_TOP
    } else {
        0
    }
}
