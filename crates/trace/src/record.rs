//! Dynamic instruction records and traces.

use std::sync::Arc;

use specmt_isa::{Inst, Pc, Program, Reg};

use crate::{Emulator, StepOutcome, TraceError};

/// One executed (dynamic) instruction.
///
/// The record captures everything the downstream analyses and the timing
/// simulator need to replay the instruction without re-emulating:
///
/// * `pc` — the static instruction it came from,
/// * `taken` — whether the instruction redirected fetch (taken conditional
///   branch, jump, call or return),
/// * `addr` — the effective byte address for loads and stores (zero
///   otherwise), and
/// * `result` — the value written to the destination register, or the value
///   stored to memory for stores (zero for instructions with no result).
///
/// `DynInst` is the *logical* record: [`Trace`] stores the four fields in
/// parallel structure-of-arrays columns (see the type docs) and assembles a
/// `DynInst` on demand. It is `Copy`; accessors hand it out by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Static instruction address.
    pub pc: Pc,
    /// Whether fetch was redirected by this instruction.
    pub taken: bool,
    /// Effective address of the memory access, if any.
    pub addr: u64,
    /// Produced (register or stored) value.
    pub result: u64,
}

/// A complete dynamic instruction stream from one program execution,
/// together with the program that produced it and the final register file.
///
/// Traces are the interchange format of the whole toolkit: the profile
/// analyses in `specmt-analysis` read the block structure out of them, the
/// spawning-pair selectors in `specmt-spawn` mine them for candidate pairs,
/// and the processor model in `specmt-sim` replays them under a timing
/// model.
///
/// # Data layout
///
/// Records are stored as a structure of arrays — `pc` as a `u32` column,
/// `addr` and `result` as `u64` columns, `taken` as packed bits — instead of
/// an array of 24-byte structs. The hot consumers are column-selective:
/// block streaming and spawn-point scans read only pcs (4 bytes/record
/// instead of 24), the dependence builder reads pcs and addresses, and the
/// timing model's value-prediction path reads single results by index. The
/// split keeps each scan from dragging the cold columns through cache.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 7);
/// b.halt();
/// let trace = Trace::generate(b.build()?, 100)?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.record(0).map(|r| r.result), Some(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    program: Arc<Program>,
    pcs: Vec<u32>,
    /// Taken flags, 64 records per word (bit `k % 64` of word `k / 64`).
    taken: Vec<u64>,
    addrs: Vec<u64>,
    results: Vec<u64>,
    final_regs: [u64; specmt_isa::NUM_REGS],
}

impl Trace {
    /// Executes `program` to completion and records its dynamic instruction
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::StepLimitExceeded`] if the program does not
    /// halt within `max_steps`, or any emulation fault
    /// ([`TraceError::BadPc`], [`TraceError::UnalignedAccess`]).
    pub fn generate(program: Program, max_steps: u64) -> Result<Trace, TraceError> {
        Trace::generate_arc(Arc::new(program), max_steps)
    }

    /// As [`Trace::generate`], but additionally caps the emulated memory
    /// footprint at `max_mem_bytes` (see [`Emulator::set_memory_limit`]) —
    /// the bounded-resource entry point for running untrusted or fuzzed
    /// programs.
    ///
    /// # Errors
    ///
    /// As [`Trace::generate`], plus [`TraceError::Limit`] when the program
    /// touches more memory than allowed.
    pub fn generate_bounded(
        program: Program,
        max_steps: u64,
        max_mem_bytes: u64,
    ) -> Result<Trace, TraceError> {
        let mut emu = Emulator::new(program);
        emu.set_memory_limit(max_mem_bytes);
        Trace::record_from(emu, max_steps)
    }

    /// As [`Trace::generate`], but shares an existing [`Arc`]ed program.
    ///
    /// # Errors
    ///
    /// As [`Trace::generate`].
    pub fn generate_arc(program: Arc<Program>, max_steps: u64) -> Result<Trace, TraceError> {
        let emu = Emulator::from_arc(Arc::clone(&program));
        Trace::record_from(emu, max_steps)
    }

    /// Drives `emu` to completion, recording every executed instruction.
    fn record_from(mut emu: Emulator, max_steps: u64) -> Result<Trace, TraceError> {
        let program = Arc::clone(emu.program());
        let mut trace = Trace {
            program,
            pcs: Vec::new(),
            taken: Vec::new(),
            addrs: Vec::new(),
            results: Vec::new(),
            final_regs: [0u64; specmt_isa::NUM_REGS],
        };
        loop {
            if trace.pcs.len() as u64 >= max_steps {
                return Err(TraceError::StepLimitExceeded { limit: max_steps });
            }
            match emu.step()? {
                StepOutcome::Executed(rec) => trace.push(rec),
                StepOutcome::Halted => break,
            }
        }
        for r in Reg::all() {
            trace.final_regs[r.index()] = emu.reg(r);
        }
        Ok(trace)
    }

    /// Reassembles a trace directly from its column store (used by the
    /// binary deserializer). Panics if the column lengths are inconsistent;
    /// trailing bits of the last `taken` word are masked off so equal traces
    /// compare equal regardless of serialization history.
    pub(crate) fn from_columns(
        program: Program,
        pcs: Vec<u32>,
        mut taken: Vec<u64>,
        addrs: Vec<u64>,
        results: Vec<u64>,
        final_regs: [u64; specmt_isa::NUM_REGS],
    ) -> Trace {
        assert_eq!(addrs.len(), pcs.len());
        assert_eq!(results.len(), pcs.len());
        assert_eq!(taken.len(), pcs.len().div_ceil(64));
        if !pcs.len().is_multiple_of(64) {
            if let Some(last) = taken.last_mut() {
                *last &= (1u64 << (pcs.len() % 64)) - 1;
            }
        }
        Trace {
            program: Arc::new(program),
            pcs,
            taken,
            addrs,
            results,
            final_regs,
        }
    }

    /// The packed taken-flag words backing [`Trace::taken_at`] (bit
    /// `k % 64` of word `k / 64`).
    pub(crate) fn taken_words(&self) -> &[u64] {
        &self.taken
    }

    /// The effective-address column.
    pub(crate) fn addrs_col(&self) -> &[u64] {
        &self.addrs
    }

    /// The result-value column.
    pub(crate) fn results_col(&self) -> &[u64] {
        &self.results
    }

    /// Appends one record to the column store.
    fn push(&mut self, rec: DynInst) {
        let k = self.pcs.len();
        self.pcs.push(rec.pc.0);
        if k.is_multiple_of(64) {
            self.taken.push(0);
        }
        if rec.taken {
            self.taken[k / 64] |= 1u64 << (k % 64);
        }
        self.addrs.push(rec.addr);
        self.results.push(rec.result);
    }

    /// The program this trace was recorded from.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Number of dynamic instructions (including the final `halt`).
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the trace is empty (never true for a generated trace — the
    /// `halt` itself is recorded).
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The static pc column, in execution order — the cheapest way to scan
    /// control flow (4 bytes per record).
    pub fn pcs(&self) -> &[u32] {
        &self.pcs
    }

    /// The static pc executed at dynamic index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn pc_at(&self, k: usize) -> Pc {
        Pc(self.pcs[k])
    }

    /// Whether the instruction at dynamic index `k` redirected fetch.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn taken_at(&self, k: usize) -> bool {
        assert!(k < self.pcs.len(), "dynamic index out of range");
        self.taken[k / 64] & (1u64 << (k % 64)) != 0
    }

    /// The effective-address column, in execution order (zero for
    /// non-memory instructions) — the cheapest way to scan the trace's
    /// memory footprint.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The effective memory address of the instruction at dynamic index `k`
    /// (zero for non-memory instructions).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn addr_at(&self, k: usize) -> u64 {
        self.addrs[k]
    }

    /// The produced (register or stored) value of the instruction at
    /// dynamic index `k` (zero for instructions with no result).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn result_at(&self, k: usize) -> u64 {
        self.results[k]
    }

    /// The record at dynamic index `k`, assembled from the columns.
    pub fn record(&self, k: usize) -> Option<DynInst> {
        if k >= self.pcs.len() {
            return None;
        }
        Some(DynInst {
            pc: Pc(self.pcs[k]),
            taken: self.taken_at(k),
            addr: self.addrs[k],
            result: self.results[k],
        })
    }

    /// Iterates over all dynamic records, in execution order.
    pub fn iter_records(&self) -> impl Iterator<Item = DynInst> + '_ {
        (0..self.pcs.len()).map(|k| DynInst {
            pc: Pc(self.pcs[k]),
            taken: self.taken[k / 64] & (1u64 << (k % 64)) != 0,
            addr: self.addrs[k],
            result: self.results[k],
        })
    }

    /// All dynamic records materialised into a vector (test and
    /// interchange convenience — hot paths should use the columnar
    /// accessors or [`Trace::iter_records`]).
    pub fn records_vec(&self) -> Vec<DynInst> {
        self.iter_records().collect()
    }

    /// The static instruction executed at dynamic index `k`.
    ///
    /// Every generated or deserialized trace keeps its pcs inside the
    /// program ([`Trace::validate`] checks exactly this), so the inner
    /// lookup is a plain slice index.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn inst(&self, k: usize) -> &Inst {
        &self.program.insts()[self.pcs[k] as usize]
    }

    /// Checks the structural invariant every downstream consumer relies on:
    /// each recorded pc names an instruction of the program.
    ///
    /// Generated traces satisfy this by construction and the binary reader
    /// re-checks it record by record; call this when records arrive from any
    /// other source.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadPc`] naming the first out-of-range pc.
    pub fn validate(&self) -> Result<(), TraceError> {
        let len = self.program.len();
        for &pc in &self.pcs {
            if pc as usize >= len {
                return Err(TraceError::BadPc { pc: Pc(pc), len });
            }
        }
        Ok(())
    }

    /// The final architectural value of `reg` after the program halted.
    pub fn final_reg(&self, reg: Reg) -> u64 {
        self.final_regs[reg.index()]
    }

    /// Counts the dynamic occurrences of each static instruction.
    ///
    /// The returned vector is indexed by [`Pc`] index and has one entry per
    /// static instruction.
    pub fn execution_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.program.len()];
        for &pc in &self.pcs {
            counts[pc as usize] += 1;
        }
        counts
    }

    /// Summarises the dynamic instruction mix.
    pub fn mix(&self) -> TraceMix {
        let mut mix = TraceMix::default();
        let insts = self.program.insts();
        for (k, &pc) in self.pcs.iter().enumerate() {
            let inst = &insts[pc as usize];
            mix.total += 1;
            if inst.is_load() {
                mix.loads += 1;
            } else if inst.is_store() {
                mix.stores += 1;
            } else if inst.is_cond_branch() {
                mix.cond_branches += 1;
                if self.taken[k / 64] & (1u64 << (k % 64)) != 0 {
                    mix.taken_cond_branches += 1;
                }
            } else if inst.is_call() {
                mix.calls += 1;
            }
        }
        mix
    }
}

/// Aggregate dynamic instruction-mix statistics for a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMix {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic conditional branches that were taken.
    pub taken_cond_branches: u64,
    /// Dynamic subroutine calls.
    pub calls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::ProgramBuilder;

    fn loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn generate_counts_every_dynamic_instruction() {
        let trace = Trace::generate(loop_program(4), 1000).unwrap();
        // 2 setup + 4*2 loop + 1 halt
        assert_eq!(trace.len(), 11);
        assert_eq!(trace.final_reg(Reg::R1), 4);
    }

    #[test]
    fn step_limit_is_enforced() {
        let err = Trace::generate(loop_program(1_000_000), 100).unwrap_err();
        assert_eq!(err, TraceError::StepLimitExceeded { limit: 100 });
    }

    #[test]
    fn generated_traces_validate() {
        let trace = Trace::generate(loop_program(4), 1000).unwrap();
        trace.validate().unwrap();
    }

    #[test]
    fn bounded_generation_matches_unbounded_when_within_limits() {
        let a = Trace::generate(loop_program(4), 1000).unwrap();
        let b = Trace::generate_bounded(loop_program(4), 1000, 1 << 20).unwrap();
        assert_eq!(a.records_vec(), b.records_vec());
    }

    #[test]
    fn execution_counts_sum_to_trace_length() {
        let trace = Trace::generate(loop_program(7), 1000).unwrap();
        let counts = trace.execution_counts();
        assert_eq!(counts.iter().sum::<u64>(), trace.len() as u64);
        // The loop body executed 7 times.
        assert_eq!(counts[2], 7);
        assert_eq!(counts[3], 7);
    }

    #[test]
    fn mix_classifies_branches() {
        let trace = Trace::generate(loop_program(3), 1000).unwrap();
        let mix = trace.mix();
        assert_eq!(mix.total, trace.len() as u64);
        assert_eq!(mix.cond_branches, 3);
        assert_eq!(mix.taken_cond_branches, 2); // last iteration falls through
        assert_eq!(mix.loads + mix.stores + mix.calls, 0);
    }

    #[test]
    fn branch_records_mark_taken() {
        let trace = Trace::generate(loop_program(2), 1000).unwrap();
        let branch_records: Vec<DynInst> = trace
            .iter_records()
            .filter(|r| trace.program().inst(r.pc).unwrap().is_cond_branch())
            .collect();
        assert_eq!(branch_records.len(), 2);
        assert!(branch_records[0].taken);
        assert!(!branch_records[1].taken);
    }

    #[test]
    fn columnar_accessors_agree_with_records() {
        let trace = Trace::generate(loop_program(9), 1000).unwrap();
        for (k, rec) in trace.iter_records().enumerate() {
            assert_eq!(trace.pc_at(k), rec.pc);
            assert_eq!(trace.taken_at(k), rec.taken);
            assert_eq!(trace.addr_at(k), rec.addr);
            assert_eq!(trace.result_at(k), rec.result);
            assert_eq!(trace.record(k), Some(rec));
        }
        assert_eq!(trace.record(trace.len()), None);
        assert_eq!(trace.pcs().len(), trace.len());
    }

    #[test]
    fn taken_bits_pack_beyond_one_word() {
        // >64 records so the taken bitmap spans multiple words.
        let trace = Trace::generate(loop_program(40), 1000).unwrap();
        assert!(trace.len() > 64);
        let records = trace.records_vec();
        for (k, rec) in records.iter().enumerate() {
            assert_eq!(trace.taken_at(k), rec.taken, "record {k}");
        }
    }
}
