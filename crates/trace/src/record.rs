//! Dynamic instruction records and traces.

use std::sync::Arc;

use specmt_isa::{Inst, Pc, Program, Reg};

use crate::{Emulator, StepOutcome, TraceError};

/// One executed (dynamic) instruction.
///
/// The record captures everything the downstream analyses and the timing
/// simulator need to replay the instruction without re-emulating:
///
/// * `pc` — the static instruction it came from,
/// * `taken` — whether the instruction redirected fetch (taken conditional
///   branch, jump, call or return),
/// * `addr` — the effective byte address for loads and stores (zero
///   otherwise), and
/// * `result` — the value written to the destination register, or the value
///   stored to memory for stores (zero for instructions with no result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Static instruction address.
    pub pc: Pc,
    /// Whether fetch was redirected by this instruction.
    pub taken: bool,
    /// Effective address of the memory access, if any.
    pub addr: u64,
    /// Produced (register or stored) value.
    pub result: u64,
}

/// A complete dynamic instruction stream from one program execution,
/// together with the program that produced it and the final register file.
///
/// Traces are the interchange format of the whole toolkit: the profile
/// analyses in `specmt-analysis` read the block structure out of them, the
/// spawning-pair selectors in `specmt-spawn` mine them for candidate pairs,
/// and the processor model in `specmt-sim` replays them under a timing
/// model.
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::Trace;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 7);
/// b.halt();
/// let trace = Trace::generate(b.build()?, 100)?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.record(0).map(|r| r.result), Some(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    program: Arc<Program>,
    records: Vec<DynInst>,
    final_regs: [u64; specmt_isa::NUM_REGS],
}

impl Trace {
    /// Executes `program` to completion and records its dynamic instruction
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::StepLimitExceeded`] if the program does not
    /// halt within `max_steps`, or any emulation fault
    /// ([`TraceError::BadPc`], [`TraceError::UnalignedAccess`]).
    pub fn generate(program: Program, max_steps: u64) -> Result<Trace, TraceError> {
        Trace::generate_arc(Arc::new(program), max_steps)
    }

    /// As [`Trace::generate`], but additionally caps the emulated memory
    /// footprint at `max_mem_bytes` (see [`Emulator::set_memory_limit`]) —
    /// the bounded-resource entry point for running untrusted or fuzzed
    /// programs.
    ///
    /// # Errors
    ///
    /// As [`Trace::generate`], plus [`TraceError::Limit`] when the program
    /// touches more memory than allowed.
    pub fn generate_bounded(
        program: Program,
        max_steps: u64,
        max_mem_bytes: u64,
    ) -> Result<Trace, TraceError> {
        let mut emu = Emulator::new(program);
        emu.set_memory_limit(max_mem_bytes);
        Trace::record_from(emu, max_steps)
    }

    /// As [`Trace::generate`], but shares an existing [`Arc`]ed program.
    ///
    /// # Errors
    ///
    /// As [`Trace::generate`].
    pub fn generate_arc(program: Arc<Program>, max_steps: u64) -> Result<Trace, TraceError> {
        let emu = Emulator::from_arc(Arc::clone(&program));
        Trace::record_from(emu, max_steps)
    }

    /// Drives `emu` to completion, recording every executed instruction.
    fn record_from(mut emu: Emulator, max_steps: u64) -> Result<Trace, TraceError> {
        let program = Arc::clone(emu.program());
        let mut records = Vec::new();
        loop {
            if records.len() as u64 >= max_steps {
                return Err(TraceError::StepLimitExceeded { limit: max_steps });
            }
            match emu.step()? {
                StepOutcome::Executed(rec) => records.push(rec),
                StepOutcome::Halted => break,
            }
        }
        let mut final_regs = [0u64; specmt_isa::NUM_REGS];
        for r in Reg::all() {
            final_regs[r.index()] = emu.reg(r);
        }
        Ok(Trace {
            program,
            records,
            final_regs,
        })
    }

    /// Reassembles a trace from its parts (used by the binary
    /// deserializer). The caller is responsible for the records being a
    /// genuine execution of `program`.
    pub(crate) fn from_parts(
        program: Program,
        records: Vec<DynInst>,
        final_regs: [u64; specmt_isa::NUM_REGS],
    ) -> Trace {
        Trace {
            program: Arc::new(program),
            records,
            final_regs,
        }
    }

    /// The program this trace was recorded from.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Number of dynamic instructions (including the final `halt`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty (never true for a generated trace — the
    /// `halt` itself is recorded).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All dynamic records, in execution order.
    pub fn records(&self) -> &[DynInst] {
        &self.records
    }

    /// The record at dynamic index `k`.
    pub fn record(&self, k: usize) -> Option<&DynInst> {
        self.records.get(k)
    }

    /// The static instruction executed at dynamic index `k`.
    ///
    /// Every generated or deserialized trace keeps its pcs inside the
    /// program ([`Trace::validate`] checks exactly this), so the inner
    /// lookup is a plain slice index.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn inst(&self, k: usize) -> &Inst {
        &self.program.insts()[self.records[k].pc.index()]
    }

    /// Checks the structural invariant every downstream consumer relies on:
    /// each recorded pc names an instruction of the program.
    ///
    /// Generated traces satisfy this by construction and the binary reader
    /// re-checks it record by record; call this when records arrive from any
    /// other source.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadPc`] naming the first out-of-range pc.
    pub fn validate(&self) -> Result<(), TraceError> {
        let len = self.program.len();
        for r in &self.records {
            if r.pc.index() >= len {
                return Err(TraceError::BadPc { pc: r.pc, len });
            }
        }
        Ok(())
    }

    /// The final architectural value of `reg` after the program halted.
    pub fn final_reg(&self, reg: Reg) -> u64 {
        self.final_regs[reg.index()]
    }

    /// Counts the dynamic occurrences of each static instruction.
    ///
    /// The returned vector is indexed by [`Pc`] index and has one entry per
    /// static instruction.
    pub fn execution_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.program.len()];
        for r in &self.records {
            counts[r.pc.index()] += 1;
        }
        counts
    }

    /// Summarises the dynamic instruction mix.
    pub fn mix(&self) -> TraceMix {
        let mut mix = TraceMix::default();
        let insts = self.program.insts();
        for r in &self.records {
            let inst = &insts[r.pc.index()];
            mix.total += 1;
            if inst.is_load() {
                mix.loads += 1;
            } else if inst.is_store() {
                mix.stores += 1;
            } else if inst.is_cond_branch() {
                mix.cond_branches += 1;
                if r.taken {
                    mix.taken_cond_branches += 1;
                }
            } else if inst.is_call() {
                mix.calls += 1;
            }
        }
        mix
    }
}

/// Aggregate dynamic instruction-mix statistics for a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMix {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic conditional branches that were taken.
    pub taken_cond_branches: u64,
    /// Dynamic subroutine calls.
    pub calls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::ProgramBuilder;

    fn loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn generate_counts_every_dynamic_instruction() {
        let trace = Trace::generate(loop_program(4), 1000).unwrap();
        // 2 setup + 4*2 loop + 1 halt
        assert_eq!(trace.len(), 11);
        assert_eq!(trace.final_reg(Reg::R1), 4);
    }

    #[test]
    fn step_limit_is_enforced() {
        let err = Trace::generate(loop_program(1_000_000), 100).unwrap_err();
        assert_eq!(err, TraceError::StepLimitExceeded { limit: 100 });
    }

    #[test]
    fn generated_traces_validate() {
        let trace = Trace::generate(loop_program(4), 1000).unwrap();
        trace.validate().unwrap();
    }

    #[test]
    fn bounded_generation_matches_unbounded_when_within_limits() {
        let a = Trace::generate(loop_program(4), 1000).unwrap();
        let b = Trace::generate_bounded(loop_program(4), 1000, 1 << 20).unwrap();
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn execution_counts_sum_to_trace_length() {
        let trace = Trace::generate(loop_program(7), 1000).unwrap();
        let counts = trace.execution_counts();
        assert_eq!(counts.iter().sum::<u64>(), trace.len() as u64);
        // The loop body executed 7 times.
        assert_eq!(counts[2], 7);
        assert_eq!(counts[3], 7);
    }

    #[test]
    fn mix_classifies_branches() {
        let trace = Trace::generate(loop_program(3), 1000).unwrap();
        let mix = trace.mix();
        assert_eq!(mix.total, trace.len() as u64);
        assert_eq!(mix.cond_branches, 3);
        assert_eq!(mix.taken_cond_branches, 2); // last iteration falls through
        assert_eq!(mix.loads + mix.stores + mix.calls, 0);
    }

    #[test]
    fn branch_records_mark_taken() {
        let trace = Trace::generate(loop_program(2), 1000).unwrap();
        let branch_records: Vec<&DynInst> = trace
            .records()
            .iter()
            .filter(|r| trace.program().inst(r.pc).unwrap().is_cond_branch())
            .collect();
        assert_eq!(branch_records.len(), 2);
        assert!(branch_records[0].taken);
        assert!(!branch_records[1].taken);
    }
}
