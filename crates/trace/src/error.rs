//! Error types.

use std::error::Error;
use std::fmt;

use specmt_isa::Pc;

/// Errors produced during emulation or trace generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Control transferred to an address outside the program (typically a
    /// `ret` with a clobbered link register).
    BadPc {
        /// The invalid program counter.
        pc: Pc,
        /// Program length.
        len: usize,
    },
    /// A load or store used an address that is not a multiple of the word
    /// size.
    UnalignedAccess {
        /// Address of the faulting instruction.
        at: Pc,
        /// The unaligned effective address.
        addr: u64,
    },
    /// The program did not halt within the step budget.
    StepLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A bounded resource other than the step budget was exhausted
    /// (emulated memory, serialized-trace size, ...).
    Limit {
        /// What ran out (e.g. `"memory"`).
        resource: &'static str,
        /// The configured cap, in the resource's natural unit.
        limit: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadPc { pc, len } => {
                write!(
                    f,
                    "control transferred to {pc}, outside program of length {len}"
                )
            }
            TraceError::UnalignedAccess { at, addr } => {
                write!(f, "unaligned memory access to {addr:#x} at {at}")
            }
            TraceError::StepLimitExceeded { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
            TraceError::Limit { resource, limit } => {
                write!(f, "{resource} limit of {limit} exceeded")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::UnalignedAccess {
            at: Pc(3),
            addr: 13,
        };
        assert!(e.to_string().contains("0xd"));
        assert!(e.to_string().contains("@3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
