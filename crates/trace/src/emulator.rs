//! The functional emulator.

use std::sync::Arc;

use specmt_isa::{Inst, Pc, Program, Reg, WORD_BYTES};

use crate::{DynInst, Memory, TraceError, STACK_TOP};

/// Outcome of a single [`Emulator::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction executed; its dynamic record is returned.
    Executed(DynInst),
    /// The machine is halted; no instruction executed.
    Halted,
}

/// Architectural-level emulator: registers, sparse memory, a program counter.
///
/// The emulator is purely functional with respect to timing — it models no
/// pipeline, caches or speculation. It is used to generate [`Trace`]s and as
/// the golden reference the speculative simulator's committed state is
/// checked against.
///
/// The stack pointer is initialised to [`STACK_TOP`], and the program's
/// memory image is applied before execution starts.
///
/// [`Trace`]: crate::Trace
///
/// # Examples
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
/// use specmt_trace::{Emulator, StepOutcome};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 5);
/// b.halt();
/// let mut emu = Emulator::new(b.build()?);
/// emu.run(10)?;
/// assert!(emu.halted());
/// assert_eq!(emu.reg(Reg::R1), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Arc<Program>,
    regs: [u64; specmt_isa::NUM_REGS],
    mem: Memory,
    pc: Pc,
    halted: bool,
    steps: u64,
    /// Cap on resident memory pages (`None` = unbounded).
    max_pages: Option<usize>,
}

impl Emulator {
    /// Creates an emulator for `program`, applying its memory image.
    pub fn new(program: Program) -> Emulator {
        Emulator::from_arc(Arc::new(program))
    }

    /// As [`Emulator::new`], sharing an existing [`Arc`]ed program.
    pub fn from_arc(program: Arc<Program>) -> Emulator {
        let mut mem = Memory::new();
        for &(addr, value) in program.memory_image() {
            mem.store(addr, value);
        }
        let mut regs = [0u64; specmt_isa::NUM_REGS];
        regs[Reg::SP.index()] = STACK_TOP;
        let pc = program.entry();
        Emulator {
            program,
            regs,
            mem,
            pc,
            halted: false,
            steps: 0,
            max_pages: None,
        }
    }

    /// Caps emulated memory at roughly `bytes` (rounded up to whole 32 KiB
    /// pages, minimum one). A store that grows the footprint past the cap
    /// faults with [`TraceError::Limit`] — a runaway program cannot exhaust
    /// host memory.
    pub fn set_memory_limit(&mut self, bytes: u64) {
        let page_bytes = crate::Memory::PAGE_BYTES;
        self.max_pages = Some((bytes.div_ceil(page_bytes).max(1)) as usize);
    }

    /// The value of `reg` (always zero for [`Reg::ZERO`]).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index()]
    }

    /// Overwrites `reg`; writes to [`Reg::ZERO`] are discarded.
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    /// Reads the memory word at `addr`.
    pub fn load_word(&self, addr: u64) -> u64 {
        self.mem.load(addr)
    }

    /// Writes the memory word at `addr`.
    pub fn store_word(&mut self, addr: u64, value: u64) {
        self.mem.store(addr, value)
    }

    /// The current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the machine has executed a `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadPc`] if control has been transferred outside
    /// the program and [`TraceError::UnalignedAccess`] for misaligned memory
    /// operands.
    pub fn step(&mut self) -> Result<StepOutcome, TraceError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let inst = *self.program.inst(pc).ok_or(TraceError::BadPc {
            pc,
            len: self.program.len(),
        })?;

        let mut taken = false;
        let mut addr = 0u64;
        let mut result = 0u64;
        let mut next = pc.next();

        match inst {
            Inst::Alu { op, dst, a, b } => {
                result = op.apply(self.reg(a), self.reg(b));
                self.set_reg(dst, result);
            }
            Inst::AluImm { op, dst, a, imm } => {
                result = op.apply(self.reg(a), imm as u64);
                self.set_reg(dst, result);
            }
            Inst::Li { dst, imm } => {
                result = imm as u64;
                self.set_reg(dst, result);
            }
            Inst::Load { dst, base, offset } => {
                addr = self.reg(base).wrapping_add(offset as u64);
                if !addr.is_multiple_of(WORD_BYTES) {
                    return Err(TraceError::UnalignedAccess { at: pc, addr });
                }
                result = self.mem.load(addr);
                self.set_reg(dst, result);
            }
            Inst::Store { src, base, offset } => {
                addr = self.reg(base).wrapping_add(offset as u64);
                if !addr.is_multiple_of(WORD_BYTES) {
                    return Err(TraceError::UnalignedAccess { at: pc, addr });
                }
                result = self.reg(src);
                self.mem.store(addr, result);
                if let Some(max) = self.max_pages {
                    if self.mem.resident_pages() > max {
                        return Err(TraceError::Limit {
                            resource: "memory",
                            limit: max as u64 * crate::Memory::PAGE_BYTES,
                        });
                    }
                }
            }
            Inst::Branch { cond, a, b, target } => {
                if cond.eval(self.reg(a), self.reg(b)) {
                    taken = true;
                    next = target;
                }
            }
            Inst::Jump { target } => {
                taken = true;
                next = target;
            }
            Inst::Call { target } => {
                taken = true;
                result = pc.next().0 as u64;
                self.set_reg(Reg::RA, result);
                next = target;
            }
            Inst::Ret => {
                taken = true;
                let ra = self.reg(Reg::RA);
                next = Pc(ra as u32);
                if ra >= self.program.len() as u64 {
                    return Err(TraceError::BadPc {
                        pc: Pc(ra as u32),
                        len: self.program.len(),
                    });
                }
            }
            Inst::Halt => {
                self.halted = true;
            }
            Inst::Nop => {}
        }

        if !self.halted {
            self.pc = next;
        }
        self.steps += 1;
        Ok(StepOutcome::Executed(DynInst {
            pc,
            taken,
            addr,
            result,
        }))
    }

    /// Runs until `halt` or until `max_steps` further instructions have
    /// executed.
    ///
    /// Returns the number of instructions executed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::StepLimitExceeded`] if the program is still
    /// running after `max_steps`, or any fault from [`Emulator::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<u64, TraceError> {
        let mut executed = 0;
        while !self.halted {
            if executed >= max_steps {
                return Err(TraceError::StepLimitExceeded { limit: max_steps });
            }
            self.step()?;
            executed += 1;
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::ProgramBuilder;

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 99);
        b.addi(Reg::R1, Reg::ZERO, 1);
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.run(10).unwrap();
        assert_eq!(emu.reg(Reg::ZERO), 0);
        assert_eq!(emu.reg(Reg::R1), 1);
    }

    #[test]
    fn memory_image_is_applied() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x2000);
        b.ld(Reg::R2, Reg::R1, 8);
        b.halt();
        b.data_block(0x2000, &[10, 20]);
        let mut emu = Emulator::new(b.build().unwrap());
        emu.run(10).unwrap();
        assert_eq!(emu.reg(Reg::R2), 20);
    }

    #[test]
    fn call_and_ret_round_trip() {
        let mut b = ProgramBuilder::new();
        b.call("f"); // @0
        b.halt(); // @1
        b.begin_func("f");
        b.li(Reg::R1, 42); // @2
        b.ret(); // @3
        b.end_func();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.run(10).unwrap();
        assert!(emu.halted());
        assert_eq!(emu.reg(Reg::R1), 42);
        assert_eq!(emu.reg(Reg::RA), 1);
    }

    #[test]
    fn nested_calls_with_stack_discipline() {
        // outer calls inner twice, saving ra on the stack.
        let mut b = ProgramBuilder::new();
        b.call("outer");
        b.halt();
        b.begin_func("outer");
        b.prologue();
        b.call("inner");
        b.call("inner");
        b.epilogue_ret();
        b.end_func();
        b.begin_func("inner");
        b.addi(Reg::R1, Reg::R1, 1);
        b.ret();
        b.end_func();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.run(100).unwrap();
        assert!(emu.halted());
        assert_eq!(emu.reg(Reg::R1), 2);
        assert_eq!(emu.reg(Reg::SP), STACK_TOP);
    }

    #[test]
    fn unaligned_access_faults() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 3);
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        let err = emu.run(10).unwrap_err();
        assert!(matches!(err, TraceError::UnalignedAccess { addr: 3, .. }));
    }

    #[test]
    fn bad_return_address_faults() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::RA, 999);
        b.ret();
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        let err = emu.run(10).unwrap_err();
        assert!(matches!(err, TraceError::BadPc { .. }));
    }

    #[test]
    fn step_after_halt_reports_halted() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.run(10).unwrap();
        assert_eq!(emu.step().unwrap(), StepOutcome::Halted);
        assert_eq!(emu.steps(), 1);
    }

    #[test]
    fn memory_limit_faults_runaway_writer() {
        // Touch a fresh 32 KiB page per iteration, forever.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0x10000);
        b.bind(top);
        b.st(Reg::R1, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 32 * 1024);
        b.j(top);
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.set_memory_limit(4 * 32 * 1024);
        let err = emu.run(1_000_000).unwrap_err();
        assert!(
            matches!(err, TraceError::Limit { resource: "memory", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn store_records_effective_address_and_value() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x100);
        b.li(Reg::R2, 77);
        b.st(Reg::R2, Reg::R1, 16);
        b.halt();
        let mut emu = Emulator::new(b.build().unwrap());
        emu.step().unwrap();
        emu.step().unwrap();
        match emu.step().unwrap() {
            StepOutcome::Executed(rec) => {
                assert_eq!(rec.addr, 0x110);
                assert_eq!(rec.result, 77);
            }
            StepOutcome::Halted => panic!("expected store to execute"),
        }
        assert_eq!(emu.load_word(0x110), 77);
    }
}
