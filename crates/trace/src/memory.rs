//! Sparse, paged word-addressable memory.

use std::collections::HashMap;

use specmt_isa::WORD_BYTES;

const PAGE_WORDS_LOG2: u64 = 12;
const PAGE_WORDS: usize = 1 << PAGE_WORDS_LOG2;

/// Sparse 64-bit word memory, allocated in 32 KiB pages on first touch.
///
/// Addresses are byte addresses; all accesses are word (8-byte) granular and
/// must be word aligned (the [`Emulator`](crate::Emulator) enforces this for
/// emulated programs; direct users should align addresses themselves).
/// Untouched memory reads as zero.
///
/// # Examples
///
/// ```
/// use specmt_trace::Memory;
///
/// let mut mem = Memory::new();
/// assert_eq!(mem.load(0x1000), 0);
/// mem.store(0x1000, 42);
/// assert_eq!(mem.load(0x1000), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl Memory {
    /// Bytes per allocation page.
    pub const PAGE_BYTES: u64 = (PAGE_WORDS as u64) * WORD_BYTES;

    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let word = addr / WORD_BYTES;
        (
            word >> PAGE_WORDS_LOG2,
            (word & (PAGE_WORDS as u64 - 1)) as usize,
        )
    }

    /// Reads the word at byte address `addr` (aligned down to a word
    /// boundary).
    pub fn load(&self, addr: u64) -> u64 {
        let (page, off) = Memory::split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes the word at byte address `addr` (aligned down to a word
    /// boundary).
    pub fn store(&mut self, addr: u64, value: u64) {
        let (page, off) = Memory::split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[off] = value;
    }

    /// Number of resident pages (for memory-footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_zero() {
        let mem = Memory::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(!7u64), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut mem = Memory::new();
        mem.store(0x10, u64::MAX);
        mem.store(0x18, 7);
        assert_eq!(mem.load(0x10), u64::MAX);
        assert_eq!(mem.load(0x18), 7);
    }

    #[test]
    fn distant_addresses_use_distinct_pages() {
        let mut mem = Memory::new();
        mem.store(0, 1);
        mem.store(1 << 40, 2);
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.load(0), 1);
        assert_eq!(mem.load(1 << 40), 2);
    }

    #[test]
    fn adjacent_words_do_not_alias() {
        let mut mem = Memory::new();
        for i in 0..100u64 {
            mem.store(i * 8, i);
        }
        for i in 0..100u64 {
            assert_eq!(mem.load(i * 8), i);
        }
    }

    #[test]
    fn page_boundary_is_seamless() {
        let mut mem = Memory::new();
        // Page holds 4096 words = 32768 bytes; straddle the boundary.
        let boundary = 4096 * 8;
        mem.store(boundary - 8, 10);
        mem.store(boundary, 20);
        assert_eq!(mem.load(boundary - 8), 10);
        assert_eq!(mem.load(boundary), 20);
        assert_eq!(mem.resident_pages(), 2);
    }
}
