//! Architectural registers.

use std::fmt;

/// One of the 32 architectural 64-bit registers.
///
/// Conventions mirror classic MIPS/Alpha usage:
///
/// * [`Reg::ZERO`] (`r0`) always reads as zero; writes are discarded.
/// * [`Reg::SP`] (`r29`) is the stack pointer by software convention.
/// * [`Reg::RA`] (`r31`) receives the return address on [`call`].
///
/// [`call`]: crate::Inst::Call
///
/// # Examples
///
/// ```
/// use specmt_isa::Reg;
///
/// let r = Reg::new(5).unwrap();
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl serde::Serialize for Reg {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.0))
    }
}

// Deserialization funnels through `Reg::new` so out-of-range indices in
// corrupted input are rejected instead of materializing an invalid register.
impl serde::Deserialize for Reg {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let idx = <u8 as serde::Deserialize>::from_value(v)?;
        Reg::new(idx)
            .ok_or_else(|| serde::Error::custom(format!("register index {idx} out of range")))
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr, $doc:expr;)*) => {
        $(
            #[doc = $doc]
            pub const $name: Reg = Reg($idx);
        )*
    };
}

impl Reg {
    named_regs! {
        ZERO = 0, "`r0`: hardwired zero.";
        R1 = 1, "`r1`: general purpose.";
        R2 = 2, "`r2`: general purpose.";
        R3 = 3, "`r3`: general purpose.";
        R4 = 4, "`r4`: general purpose.";
        R5 = 5, "`r5`: general purpose.";
        R6 = 6, "`r6`: general purpose.";
        R7 = 7, "`r7`: general purpose.";
        R8 = 8, "`r8`: general purpose.";
        R9 = 9, "`r9`: general purpose.";
        R10 = 10, "`r10`: general purpose.";
        R11 = 11, "`r11`: general purpose.";
        R12 = 12, "`r12`: general purpose.";
        R13 = 13, "`r13`: general purpose.";
        R14 = 14, "`r14`: general purpose.";
        R15 = 15, "`r15`: general purpose.";
        R16 = 16, "`r16`: general purpose.";
        R17 = 17, "`r17`: general purpose.";
        R18 = 18, "`r18`: general purpose.";
        R19 = 19, "`r19`: general purpose.";
        R20 = 20, "`r20`: general purpose.";
        R21 = 21, "`r21`: general purpose.";
        R22 = 22, "`r22`: general purpose.";
        R23 = 23, "`r23`: general purpose.";
        R24 = 24, "`r24`: general purpose.";
        R25 = 25, "`r25`: general purpose.";
        R26 = 26, "`r26`: general purpose.";
        R27 = 27, "`r27`: general purpose.";
        R28 = 28, "`r28`: general purpose.";
        SP = 29, "`r29`: stack pointer (software convention).";
        R30 = 30, "`r30`: general purpose (frame/temp by convention).";
        RA = 31, "`r31`: link register, written by `call`.";
    }

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::Reg;
    /// assert_eq!(Reg::new(31), Some(Reg::RA));
    /// assert_eq!(Reg::new(32), None);
    /// ```
    pub fn new(index: u8) -> Option<Reg> {
        if (index as usize) < crate::NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `r0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::Reg;
    /// assert_eq!(Reg::all().count(), 32);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..crate::NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "zero"),
            Reg::SP => write!(f, "sp"),
            Reg::RA => write!(f, "ra"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn named_constants_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    fn display_uses_conventional_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(Reg::R7.to_string(), "r7");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn only_r0_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::all().filter(|r| r.is_zero()).count() == 1);
    }
}
