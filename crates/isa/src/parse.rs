//! A text assembler: parses the mnemonic syntax produced by
//! [`Program::disassemble`] (plus labels and directives) back into a
//! [`Program`].
//!
//! # Syntax
//!
//! One statement per line; `;` and `#` start comments. Operands are
//! registers (`r0`–`r31`, `zero`, `sp`, `ra`), immediates (decimal or
//! `0x…`), `offset(base)` memory operands, and either `@N` absolute targets
//! or `name:` labels:
//!
//! ```text
//! ; sum = 1 + 2 + ... + 10
//!         li   r1, 0
//!         li   r2, 0
//! top:    addi r1, r1, 1
//!         add  r2, r2, r1
//!         li   r3, 10
//!         blt  r1, r3, top
//!         halt
//! .data 0x1000 42        ; one word of initial memory
//! .entry main            ; optional entry label
//! ```
//!
//! # Examples
//!
//! ```
//! use specmt_isa::parse_program;
//!
//! let program = parse_program(
//!     "li r1, 7\n\
//!      loop: addi r1, r1, -1\n\
//!      bgt r1, zero, loop\n\
//!      halt\n",
//! )?;
//! assert_eq!(program.len(), 4);
//! # Ok::<(), specmt_isa::ParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::AluOp;
use crate::{BranchCond, Function, Inst, IsaError, Pc, Program, Reg};

/// Errors produced by [`parse_program`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A control instruction referenced an unknown label.
    UnknownLabel {
        /// 1-based line number.
        line: usize,
        /// The label name.
        name: String,
    },
    /// The assembled program failed structural validation.
    Invalid(IsaError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::UnknownLabel { line, name } => {
                write!(f, "line {line}: unknown label `{name}`")
            }
            ParseError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for ParseError {
    fn from(e: IsaError) -> ParseError {
        ParseError::Invalid(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, ParseError> {
    match s {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::new)
        .ok_or_else(|| syntax(line, format!("expected register, got `{s}`")))
}

fn parse_imm(line: usize, s: &str) -> Result<i64, ParseError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| syntax(line, format!("expected immediate, got `{s}`")))?;
    Ok(if neg { value.wrapping_neg() } else { value })
}

/// A branch/jump/call target: absolute or a label to resolve later.
enum Target {
    Absolute(Pc),
    Label(String),
}

fn parse_target(line: usize, s: &str) -> Result<Target, ParseError> {
    if let Some(n) = s.strip_prefix('@') {
        let v: u32 = n
            .parse()
            .map_err(|_| syntax(line, format!("bad absolute target `{s}`")))?;
        Ok(Target::Absolute(Pc(v)))
    } else if s
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.is_empty()
    {
        Ok(Target::Label(s.to_owned()))
    } else {
        Err(syntax(line, format!("bad target `{s}`")))
    }
}

/// `offset(base)` memory operand.
fn parse_mem(line: usize, s: &str) -> Result<(i64, Reg), ParseError> {
    let open = s
        .find('(')
        .ok_or_else(|| syntax(line, format!("expected offset(base), got `{s}`")))?;
    let close = s
        .strip_suffix(')')
        .ok_or_else(|| syntax(line, format!("missing `)` in `{s}`")))?;
    let offset = if open == 0 {
        0
    } else {
        parse_imm(line, &s[..open])?
    };
    let base = parse_reg(line, &close[open + 1..])?;
    Ok((offset, base))
}

const ALU_OPS: [(&str, AluOp); 14] = [
    ("add", AluOp::Add),
    ("sub", AluOp::Sub),
    ("mul", AluOp::Mul),
    ("div", AluOp::Div),
    ("and", AluOp::And),
    ("or", AluOp::Or),
    ("xor", AluOp::Xor),
    ("shl", AluOp::Shl),
    ("shr", AluOp::Shr),
    ("slt", AluOp::Slt),
    ("sltu", AluOp::Sltu),
    ("fadd", AluOp::FAdd),
    ("fmul", AluOp::FMul),
    ("fdiv", AluOp::FDiv),
];

const BRANCHES: [(&str, BranchCond); 6] = [
    ("beq", BranchCond::Eq),
    ("bne", BranchCond::Ne),
    ("blt", BranchCond::Lt),
    ("bge", BranchCond::Ge),
    ("ble", BranchCond::Le),
    ("bgt", BranchCond::Gt),
];

/// One parsed statement before target resolution.
enum Stmt {
    Inst(Inst),
    /// Branch awaiting target resolution: rebuilt at fixup time.
    Pending {
        line: usize,
        inst: Inst,
        target: Target,
    },
}

/// Parses assembly text into a validated [`Program`].
///
/// See the module-level documentation for the syntax.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for malformed lines,
/// [`ParseError::UnknownLabel`] for unresolved targets and
/// [`ParseError::Invalid`] if the assembled program fails
/// [`Program`] validation.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut labels: HashMap<String, Pc> = HashMap::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut memory: Vec<(u64, u64)> = Vec::new();
    let mut entry_label: Option<(usize, String)> = None;
    let mut open_func: Option<(String, Pc)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let mut rest = line.trim();
        // Labels (several may share a line).
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(syntax(line_no, format!("bad label `{name}`")));
            }
            if labels
                .insert(name.to_owned(), Pc(stmts.len() as u32))
                .is_some()
            {
                return Err(syntax(line_no, format!("duplicate label `{name}`")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        // An optional `@N` address column, as printed by
        // `Program::disassemble`, is ignored.
        if let Some(tail) = rest.strip_prefix('@') {
            if let Some((addr, after)) = tail.split_once(char::is_whitespace) {
                if addr.chars().all(|c| c.is_ascii_digit()) {
                    rest = after.trim();
                }
            }
        }

        // Directives.
        if let Some(args) = rest.strip_prefix(".data") {
            let parts: Vec<&str> = args.split_whitespace().collect();
            if parts.len() < 2 {
                return Err(syntax(
                    line_no,
                    ".data needs an address and at least one word",
                ));
            }
            let addr = parse_imm(line_no, parts[0])? as u64;
            for (i, w) in parts[1..].iter().enumerate() {
                memory.push((addr + 8 * i as u64, parse_imm(line_no, w)? as u64));
            }
            continue;
        }
        if let Some(args) = rest.strip_prefix(".entry") {
            entry_label = Some((line_no, args.trim().to_owned()));
            continue;
        }
        if let Some(args) = rest.strip_prefix(".func") {
            if let Some((name, start)) = open_func.take() {
                functions.push(Function {
                    name,
                    entry: start,
                    end: Pc(stmts.len() as u32),
                });
            }
            let name = args.trim();
            if !name.is_empty() {
                open_func = Some((name.to_owned(), Pc(stmts.len() as u32)));
            }
            continue;
        }

        // Instructions.
        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = if operands.is_empty() {
            Vec::new()
        } else {
            operands.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(syntax(
                    line_no,
                    format!("`{mnemonic}` takes {n} operands, got {}", ops.len()),
                ))
            }
        };

        let stmt = if let Some(&(_, op)) = ALU_OPS.iter().find(|&&(m, _)| m == mnemonic) {
            need(3)?;
            Stmt::Inst(Inst::Alu {
                op,
                dst: parse_reg(line_no, ops[0])?,
                a: parse_reg(line_no, ops[1])?,
                b: parse_reg(line_no, ops[2])?,
            })
        } else if let Some(&(_, op)) = ALU_OPS.iter().find(|&&(m, _)| format!("{m}i") == mnemonic) {
            need(3)?;
            Stmt::Inst(Inst::AluImm {
                op,
                dst: parse_reg(line_no, ops[0])?,
                a: parse_reg(line_no, ops[1])?,
                imm: parse_imm(line_no, ops[2])?,
            })
        } else if let Some(&(_, cond)) = BRANCHES.iter().find(|&&(m, _)| m == mnemonic) {
            need(3)?;
            Stmt::Pending {
                line: line_no,
                inst: Inst::Branch {
                    cond,
                    a: parse_reg(line_no, ops[0])?,
                    b: parse_reg(line_no, ops[1])?,
                    target: Pc(0),
                },
                target: parse_target(line_no, ops[2])?,
            }
        } else {
            match mnemonic {
                "li" => {
                    need(2)?;
                    Stmt::Inst(Inst::Li {
                        dst: parse_reg(line_no, ops[0])?,
                        imm: parse_imm(line_no, ops[1])?,
                    })
                }
                "ld" => {
                    need(2)?;
                    let (offset, base) = parse_mem(line_no, ops[1])?;
                    Stmt::Inst(Inst::Load {
                        dst: parse_reg(line_no, ops[0])?,
                        base,
                        offset,
                    })
                }
                "st" => {
                    need(2)?;
                    let (offset, base) = parse_mem(line_no, ops[1])?;
                    Stmt::Inst(Inst::Store {
                        src: parse_reg(line_no, ops[0])?,
                        base,
                        offset,
                    })
                }
                "j" => {
                    need(1)?;
                    Stmt::Pending {
                        line: line_no,
                        inst: Inst::Jump { target: Pc(0) },
                        target: parse_target(line_no, ops[0])?,
                    }
                }
                "call" => {
                    need(1)?;
                    Stmt::Pending {
                        line: line_no,
                        inst: Inst::Call { target: Pc(0) },
                        target: parse_target(line_no, ops[0])?,
                    }
                }
                "ret" => {
                    need(0)?;
                    Stmt::Inst(Inst::Ret)
                }
                "halt" => {
                    need(0)?;
                    Stmt::Inst(Inst::Halt)
                }
                "nop" => {
                    need(0)?;
                    Stmt::Inst(Inst::Nop)
                }
                other => return Err(syntax(line_no, format!("unknown mnemonic `{other}`"))),
            }
        };
        stmts.push(stmt);
    }
    if let Some((name, start)) = open_func.take() {
        functions.push(Function {
            name,
            entry: start,
            end: Pc(stmts.len() as u32),
        });
    }

    // Resolve targets.
    let mut insts = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        match stmt {
            Stmt::Inst(i) => insts.push(i),
            Stmt::Pending { line, inst, target } => {
                let pc = match target {
                    Target::Absolute(pc) => pc,
                    Target::Label(name) => *labels
                        .get(&name)
                        .ok_or(ParseError::UnknownLabel { line, name })?,
                };
                insts.push(match inst {
                    Inst::Branch { cond, a, b, .. } => Inst::Branch {
                        cond,
                        a,
                        b,
                        target: pc,
                    },
                    Inst::Jump { .. } => Inst::Jump { target: pc },
                    Inst::Call { .. } => Inst::Call { target: pc },
                    other => other,
                });
            }
        }
    }

    let entry = match entry_label {
        None => Pc(0),
        Some((line, name)) => *labels
            .get(&name)
            .ok_or(ParseError::UnknownLabel { line, name })?,
    };
    Ok(Program::with_parts(insts, entry, functions, memory)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn parses_a_counted_loop() {
        let p = parse_program(
            "li r1, 0\n\
             li r2, 10\n\
             top: addi r1, r1, 1\n\
             blt r1, r2, top\n\
             halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(
            p.inst(Pc(3)),
            Some(&Inst::Branch {
                cond: BranchCond::Lt,
                a: Reg::R1,
                b: Reg::R2,
                target: Pc(2)
            })
        );
    }

    #[test]
    fn memory_operands_and_named_registers() {
        let p = parse_program(
            "li sp, 0x100\n\
             st ra, -8(sp)\n\
             ld r1, (sp)\n\
             halt\n",
        )
        .unwrap();
        assert_eq!(
            p.inst(Pc(1)),
            Some(&Inst::Store {
                src: Reg::RA,
                base: Reg::SP,
                offset: -8
            })
        );
        assert_eq!(
            p.inst(Pc(2)),
            Some(&Inst::Load {
                dst: Reg::R1,
                base: Reg::SP,
                offset: 0
            })
        );
    }

    #[test]
    fn directives_work() {
        let p = parse_program(
            "halt\n\
             start: li r1, 1\n\
             halt\n\
             .entry start\n\
             .data 0x2000 1 2 0x3\n",
        )
        .unwrap();
        assert_eq!(p.entry(), Pc(1));
        assert_eq!(p.memory_image(), &[(0x2000, 1), (0x2008, 2), (0x2010, 3)]);
    }

    #[test]
    fn functions_are_recorded() {
        let p = parse_program(
            "call f\n\
             halt\n\
             .func f\n\
             f: addi r1, r1, 1\n\
             ret\n\
             .func\n",
        )
        .unwrap();
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.functions()[0].name, "f");
        assert_eq!(p.functions()[0].entry, Pc(2));
        assert_eq!(p.functions()[0].end, Pc(4));
    }

    #[test]
    fn disassembly_round_trips() {
        // Build a program with every instruction form, print it, re-parse
        // it, and compare instruction-for-instruction.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, -5);
        b.bind(top);
        b.add(Reg::R2, Reg::R1, Reg::R3);
        b.muli(Reg::R4, Reg::R2, 12);
        b.fdiv(Reg::R5, Reg::R4, Reg::R1);
        b.ld(Reg::R6, Reg::SP, 16);
        b.st(Reg::R6, Reg::SP, -16);
        b.beq(Reg::R6, Reg::ZERO, top);
        b.call("leaf");
        b.j(top);
        b.halt();
        b.begin_func("leaf");
        b.nop();
        b.ret();
        b.end_func();
        let original = b.build().unwrap();
        let reparsed = parse_program(&original.disassemble()).unwrap();
        assert_eq!(original.insts(), reparsed.insts());
    }

    #[test]
    fn error_reporting_is_precise() {
        let err = parse_program("li r1, 1\nfrob r1\nhalt\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
        let err = parse_program("j nowhere\nhalt\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownLabel { line: 1, .. }));
        let err = parse_program("li r99, 1\nhalt\n").unwrap_err();
        assert!(err.to_string().contains("register"));
    }

    #[test]
    fn invalid_programs_are_rejected_by_validation() {
        let err = parse_program("j @9\nhalt\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
        let err = parse_program("nop\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(IsaError::MissingHalt)));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let err = parse_program("x: nop\nx: halt\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }
}
