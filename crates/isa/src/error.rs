//! Error types.

use std::error::Error;
use std::fmt;

use crate::Pc;

/// Errors produced while constructing or validating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The program contains no instructions.
    EmptyProgram,
    /// The program contains no `halt` instruction and could never terminate.
    MissingHalt,
    /// A control instruction targets an address outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        at: Pc,
        /// The out-of-range target.
        target: Pc,
        /// Program length.
        len: usize,
    },
    /// The entry point is outside the program.
    EntryOutOfRange {
        /// The out-of-range entry.
        entry: Pc,
        /// Program length.
        len: usize,
    },
    /// A function symbol covers an invalid range.
    FunctionOutOfRange {
        /// Function name.
        name: String,
        /// Declared entry.
        entry: Pc,
        /// Declared end.
        end: Pc,
        /// Program length.
        len: usize,
    },
    /// A label was used in a control instruction but never bound.
    UnboundLabel {
        /// The label's debug name.
        name: String,
    },
    /// A label was bound more than once.
    DuplicateLabelBinding {
        /// The label's debug name.
        name: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::EmptyProgram => write!(f, "program contains no instructions"),
            IsaError::MissingHalt => write!(f, "program contains no halt instruction"),
            IsaError::TargetOutOfRange { at, target, len } => write!(
                f,
                "control instruction at {at} targets {target}, outside program of length {len}"
            ),
            IsaError::EntryOutOfRange { entry, len } => {
                write!(f, "entry point {entry} outside program of length {len}")
            }
            IsaError::FunctionOutOfRange {
                name,
                entry,
                end,
                len,
            } => write!(
                f,
                "function `{name}` range {entry}..{end} invalid for program of length {len}"
            ),
            IsaError::UnboundLabel { name } => {
                write!(f, "label `{name}` referenced but never bound")
            }
            IsaError::DuplicateLabelBinding { name } => {
                write!(f, "label `{name}` bound more than once")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_trailing_period() {
        let errs: Vec<IsaError> = vec![
            IsaError::EmptyProgram,
            IsaError::MissingHalt,
            IsaError::TargetOutOfRange {
                at: Pc(1),
                target: Pc(9),
                len: 3,
            },
            IsaError::EntryOutOfRange {
                entry: Pc(9),
                len: 3,
            },
            IsaError::FunctionOutOfRange {
                name: "f".into(),
                entry: Pc(0),
                end: Pc(9),
                len: 3,
            },
            IsaError::UnboundLabel { name: "l".into() },
            IsaError::DuplicateLabelBinding { name: "l".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
