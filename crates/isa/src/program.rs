//! Programs: validated instruction memories with function symbols.

use std::fmt;

use crate::{Inst, IsaError};

/// A program counter: an index into a program's instruction memory.
///
/// `Pc` is an instruction index, not a byte address; instruction `k` lives at
/// `Pc(k)`.
///
/// # Examples
///
/// ```
/// use specmt_isa::Pc;
/// let pc = Pc(4);
/// assert_eq!(pc.next(), Pc(5));
/// assert_eq!(pc.to_string(), "@4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

serde::impl_serde_newtype!(Pc(u32));

impl Pc {
    /// The address of the sequentially-following instruction.
    pub fn next(self) -> Pc {
        Pc(self.0 + 1)
    }

    /// The instruction index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Pc {
    fn from(v: u32) -> Pc {
        Pc(v)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A named function: a contiguous range of instructions.
///
/// Functions are metadata only — control flow is free to ignore them — but
/// workloads record them so analyses and reports can attribute code to
/// subroutines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbolic name.
    pub name: String,
    /// First instruction of the function.
    pub entry: Pc,
    /// One past the last instruction of the function.
    pub end: Pc,
}

serde::impl_serde_struct!(Function { name, entry, end });

impl Function {
    /// Whether `pc` lies within this function's range.
    pub fn contains(&self, pc: Pc) -> bool {
        self.entry <= pc && pc < self.end
    }

    /// Number of static instructions in the function.
    pub fn len(&self) -> usize {
        (self.end.0 - self.entry.0) as usize
    }

    /// Whether the function contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.entry == self.end
    }
}

/// A validated program: a flat instruction memory plus optional function
/// symbols and an initial memory image.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder);
/// [`Program::new`] validates raw instruction vectors directly.
///
/// # Examples
///
/// ```
/// use specmt_isa::{Inst, Program, Pc};
///
/// let program = Program::new(vec![Inst::Nop, Inst::Halt])?;
/// assert_eq!(program.len(), 2);
/// assert_eq!(program.inst(Pc(1)), Some(&Inst::Halt));
/// # Ok::<(), specmt_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: Pc,
    functions: Vec<Function>,
    /// Initial memory image: `(byte address, word value)` pairs applied
    /// before execution starts. Addresses should be word aligned.
    memory_image: Vec<(u64, u64)>,
}

impl Program {
    /// Creates a program from raw instructions with entry point `@0` and no
    /// symbols.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] for an empty vector,
    /// [`IsaError::MissingHalt`] if no [`Inst::Halt`] is present, and
    /// [`IsaError::TargetOutOfRange`] if any control target points outside
    /// the program.
    pub fn new(insts: Vec<Inst>) -> Result<Program, IsaError> {
        Program::with_parts(insts, Pc(0), Vec::new(), Vec::new())
    }

    /// Creates a program from all its parts, validating control targets, the
    /// entry point and function ranges.
    ///
    /// # Errors
    ///
    /// As [`Program::new`], plus [`IsaError::EntryOutOfRange`] and
    /// [`IsaError::FunctionOutOfRange`].
    pub fn with_parts(
        insts: Vec<Inst>,
        entry: Pc,
        functions: Vec<Function>,
        memory_image: Vec<(u64, u64)>,
    ) -> Result<Program, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        if !insts.iter().any(|i| i.is_halt()) {
            return Err(IsaError::MissingHalt);
        }
        let len = insts.len() as u32;
        for (idx, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.control_target() {
                if t.0 >= len {
                    return Err(IsaError::TargetOutOfRange {
                        at: Pc(idx as u32),
                        target: t,
                        len: len as usize,
                    });
                }
            }
        }
        if entry.0 >= len {
            return Err(IsaError::EntryOutOfRange {
                entry,
                len: len as usize,
            });
        }
        for f in &functions {
            if f.entry > f.end || f.end.0 > len {
                return Err(IsaError::FunctionOutOfRange {
                    name: f.name.clone(),
                    entry: f.entry,
                    end: f.end,
                    len: len as usize,
                });
            }
        }
        Ok(Program {
            insts,
            entry,
            functions,
            memory_image,
        })
    }

    /// The instruction at `pc`, or `None` if out of range.
    pub fn inst(&self, pc: Pc) -> Option<&Inst> {
        self.insts.get(pc.index())
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions (never true for a validated
    /// program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry point.
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Function symbols, in the order they were declared.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The function containing `pc`, if any.
    pub fn function_at(&self, pc: Pc) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(pc))
    }

    /// The function whose entry point is exactly `pc`, if any.
    pub fn function_entered_at(&self, pc: Pc) -> Option<&Function> {
        self.functions.iter().find(|f| f.entry == pc)
    }

    /// The initial memory image: `(byte address, word value)` pairs.
    pub fn memory_image(&self) -> &[(u64, u64)] {
        &self.memory_image
    }

    /// Produces a textual disassembly of the whole program.
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::{Inst, Program};
    /// let p = Program::new(vec![Inst::Nop, Inst::Halt])?;
    /// let asm = p.disassemble();
    /// assert!(asm.contains("nop"));
    /// assert!(asm.contains("halt"));
    /// # Ok::<(), specmt_isa::IsaError>(())
    /// ```
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (idx, inst) in self.insts.iter().enumerate() {
            let pc = Pc(idx as u32);
            if let Some(f) = self.function_entered_at(pc) {
                let _ = writeln!(out, "{}:", f.name);
            }
            let _ = writeln!(out, "  @{idx:<6} {inst}");
        }
        out
    }
}

impl serde::Serialize for Program {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("insts".to_string(), serde::Serialize::to_value(&self.insts)),
            ("entry".to_string(), serde::Serialize::to_value(&self.entry)),
            (
                "functions".to_string(),
                serde::Serialize::to_value(&self.functions),
            ),
            (
                "memory_image".to_string(),
                serde::Serialize::to_value(&self.memory_image),
            ),
        ])
    }
}

// Deserialization funnels through `with_parts` so a corrupted or hostile
// program header can never produce a `Program` that violates the validation
// invariants (entry/targets/functions in range, halt present).
impl serde::Deserialize for Program {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Program::with_parts(
            serde::field(v, "insts")?,
            serde::field(v, "entry")?,
            serde::field(v, "functions")?,
            serde::field(v, "memory_image")?,
        )
        .map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn halt_program(mut insts: Vec<Inst>) -> Vec<Inst> {
        insts.push(Inst::Halt);
        insts
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(Program::new(vec![]), Err(IsaError::EmptyProgram)));
    }

    #[test]
    fn rejects_missing_halt() {
        assert!(matches!(
            Program::new(vec![Inst::Nop]),
            Err(IsaError::MissingHalt)
        ));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let insts = halt_program(vec![Inst::Jump { target: Pc(9) }]);
        assert!(matches!(
            Program::new(insts),
            Err(IsaError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_entry_and_function() {
        let insts = halt_program(vec![Inst::Nop]);
        assert!(matches!(
            Program::with_parts(insts.clone(), Pc(5), vec![], vec![]),
            Err(IsaError::EntryOutOfRange { .. })
        ));
        let f = Function {
            name: "f".into(),
            entry: Pc(1),
            end: Pc(9),
        };
        assert!(matches!(
            Program::with_parts(insts, Pc(0), vec![f], vec![]),
            Err(IsaError::FunctionOutOfRange { .. })
        ));
    }

    #[test]
    fn function_lookup() {
        let insts = halt_program(vec![Inst::Nop, Inst::Nop, Inst::Ret]);
        let f = Function {
            name: "leaf".into(),
            entry: Pc(1),
            end: Pc(3),
        };
        let p = Program::with_parts(insts, Pc(0), vec![f], vec![]).unwrap();
        assert_eq!(p.function_at(Pc(2)).unwrap().name, "leaf");
        assert!(p.function_at(Pc(0)).is_none());
        assert_eq!(p.function_entered_at(Pc(1)).unwrap().name, "leaf");
        assert!(p.function_entered_at(Pc(2)).is_none());
    }

    #[test]
    fn disassembly_includes_function_labels() {
        let insts = vec![
            Inst::Call { target: Pc(2) },
            Inst::Halt,
            Inst::Li {
                dst: Reg::R1,
                imm: 42,
            },
            Inst::Ret,
        ];
        let f = Function {
            name: "answer".into(),
            entry: Pc(2),
            end: Pc(4),
        };
        let p = Program::with_parts(insts, Pc(0), vec![f], vec![]).unwrap();
        let asm = p.disassemble();
        assert!(asm.contains("answer:"));
        assert!(asm.contains("li r1, 42"));
    }

    #[test]
    fn pc_helpers() {
        assert_eq!(Pc(3).next(), Pc(4));
        assert_eq!(Pc(3).index(), 3);
        assert_eq!(Pc::from(7u32), Pc(7));
    }
}
