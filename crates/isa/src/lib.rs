//! # specmt-isa
//!
//! A minimal load/store RISC instruction set used as the program substrate for
//! the `specmt` speculative-multithreading toolkit.
//!
//! The original paper (Marcuello & González, *Thread-Spawning Schemes for
//! Speculative Multithreading*, HPCA 2002) drove its simulator with Alpha
//! binaries instrumented by ATOM. This crate plays the role of that Alpha ISA:
//! it defines
//!
//! * [`Reg`] — 32 general-purpose 64-bit registers with MIPS-like conventions
//!   (`r0` is hardwired to zero, `r29` is the stack pointer, `r31` the link
//!   register),
//! * [`Inst`] — the instruction set: integer and floating-point ALU
//!   operations, loads/stores, conditional branches, calls and returns,
//! * [`Program`] — a validated, flat instruction memory with optional function
//!   symbols, and
//! * [`ProgramBuilder`] — a label-based assembler for constructing programs
//!   from Rust.
//!
//! Everything downstream — the functional emulator in `specmt-trace`, the
//! profile analyses in `specmt-analysis`, and the clustered speculative
//! multithreaded processor model in `specmt-sim` — consumes these types.
//!
//! # Examples
//!
//! Build and inspect a small counted loop:
//!
//! ```
//! use specmt_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.fresh_label("top");
//! b.li(Reg::R1, 0); // induction variable
//! b.li(Reg::R2, 10); // trip count
//! b.bind(top);
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.blt(Reg::R1, Reg::R2, top);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert_eq!(program.len(), 5);
//! assert!(program.inst(specmt_isa::Pc(3)).unwrap().is_branch());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
pub mod inst;
mod parse;
mod program;
mod reg;

pub use builder::{Label, ProgramBuilder};
pub use error::IsaError;
pub use inst::{AluOp, BranchCond, FuClass, Inst};
pub use parse::{parse_program, ParseError};
pub use program::{Function, Pc, Program};
pub use reg::Reg;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// Size, in bytes, of the machine word (all loads/stores are word sized).
pub const WORD_BYTES: u64 = 8;
