//! Instruction definitions.

use std::fmt;

use crate::{Pc, Reg};

/// Binary ALU operation kinds.
///
/// The `F*` operations exist so workloads can exercise the long-latency
/// floating-point functional units of the simulated processor (see
/// [`FuClass`]); they operate on the same 64-bit register file, treating
/// values as opaque bit patterns with integer semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division; division by zero yields zero (no traps).
    Div,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Set-if-less-than, signed: `dst = (a as i64) < (b as i64)`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// "Floating" add: integer add executed on the 4-cycle FP adder.
    FAdd,
    /// "Floating" multiply: integer multiply executed on the 6-cycle FP multiplier.
    FMul,
    /// "Floating" divide: unsigned divide executed on the 17-cycle FP divider.
    FDiv,
}

impl AluOp {
    /// The functional-unit class that executes this operation.
    pub fn fu_class(self) -> FuClass {
        match self {
            AluOp::Add
            | AluOp::Sub
            | AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Shl
            | AluOp::Shr
            | AluOp::Slt
            | AluOp::Sltu => FuClass::SimpleInt,
            AluOp::Mul | AluOp::Div => FuClass::IntMul,
            AluOp::FAdd => FuClass::FpSimple,
            AluOp::FMul => FuClass::FpMul,
            AluOp::FDiv => FuClass::FpDiv,
        }
    }

    /// Applies the operation to two 64-bit values (wrapping semantics).
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::inst::AluOp;
    /// assert_eq!(AluOp::Add.apply(2, 3), 5);
    /// assert_eq!(AluOp::Div.apply(7, 0), 0); // division by zero yields zero
    /// assert_eq!(AluOp::Slt.apply(u64::MAX, 1), 1); // -1 < 1 signed
    /// ```
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add | AluOp::FAdd => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul | AluOp::FMul => a.wrapping_mul(b),
            AluOp::Div | AluOp::FDiv => a.checked_div(b).unwrap_or(0),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::FAdd => "fadd",
            AluOp::FMul => "fmul",
            AluOp::FDiv => "fdiv",
        };
        f.write_str(s)
    }
}

/// Condition codes for conditional branches (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl BranchCond {
    /// Evaluates the condition over two register values (signed).
    ///
    /// # Examples
    ///
    /// ```
    /// use specmt_isa::BranchCond;
    /// assert!(BranchCond::Lt.eval(1, 2));
    /// assert!(!BranchCond::Lt.eval(2, 1));
    /// assert!(BranchCond::Ge.eval(u64::MAX, u64::MAX)); // -1 >= -1
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (a, b) = (a as i64, b as i64);
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The logically-negated condition.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Ge => "ge",
            BranchCond::Le => "le",
            BranchCond::Gt => "gt",
        };
        f.write_str(s)
    }
}

/// Functional-unit classes, matching the paper's per-thread-unit resources
/// (§4.1): 2 simple integer units (1 cycle), 2 load/store units (1 cycle of
/// address calculation plus cache access), 1 integer multiplier (4 cycles),
/// 2 simple FP units (4 cycles), 1 FP multiplier (6 cycles) and 1 FP divider
/// (17 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FuClass {
    SimpleInt,
    LoadStore,
    IntMul,
    FpSimple,
    FpMul,
    FpDiv,
}

impl FuClass {
    /// All functional-unit classes, in a fixed order usable for indexing.
    pub const ALL: [FuClass; 6] = [
        FuClass::SimpleInt,
        FuClass::LoadStore,
        FuClass::IntMul,
        FuClass::FpSimple,
        FuClass::FpMul,
        FuClass::FpDiv,
    ];

    /// A dense index in `0..6` for table lookups.
    pub fn index(self) -> usize {
        match self {
            FuClass::SimpleInt => 0,
            FuClass::LoadStore => 1,
            FuClass::IntMul => 2,
            FuClass::FpSimple => 3,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 5,
        }
    }

    /// The execution latency of this class in cycles, excluding cache access
    /// time for [`FuClass::LoadStore`] (which contributes only its 1-cycle
    /// address calculation here).
    pub fn latency(self) -> u64 {
        match self {
            FuClass::SimpleInt => 1,
            FuClass::LoadStore => 1,
            FuClass::IntMul => 4,
            FuClass::FpSimple => 4,
            FuClass::FpMul => 6,
            FuClass::FpDiv => 17,
        }
    }

    /// Number of units of this class per thread unit (paper §4.1).
    pub fn units(self) -> usize {
        match self {
            FuClass::SimpleInt => 2,
            FuClass::LoadStore => 2,
            FuClass::IntMul => 1,
            FuClass::FpSimple => 2,
            FuClass::FpMul => 1,
            FuClass::FpDiv => 1,
        }
    }

    /// Whether the unit is pipelined (can start a new operation every cycle).
    ///
    /// The FP divider is the only non-pipelined unit.
    pub fn pipelined(self) -> bool {
        !matches!(self, FuClass::FpDiv)
    }
}

/// One machine instruction.
///
/// Branch and jump targets are absolute [`Pc`] values (instruction indices);
/// programs are built with symbolic labels via
/// [`ProgramBuilder`](crate::ProgramBuilder) and resolved at build time.
///
/// # Examples
///
/// ```
/// use specmt_isa::{BranchCond, Inst, Pc, Reg};
/// use specmt_isa::inst::AluOp;
///
/// let add = Inst::Alu { op: AluOp::Add, dst: Reg::R1, a: Reg::R2, b: Reg::R3 };
/// assert_eq!(add.dst(), Some(Reg::R1));
/// assert_eq!(add.srcs(), [Some(Reg::R2), Some(Reg::R3)]);
///
/// let b = Inst::Branch { cond: BranchCond::Ne, a: Reg::R1, b: Reg::ZERO, target: Pc(7) };
/// assert!(b.is_cond_branch());
/// assert_eq!(b.control_target(), Some(Pc(7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Register-register ALU operation: `dst = op(a, b)`.
    Alu {
        /// Operation kind.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// Register-immediate ALU operation: `dst = op(a, imm)`.
    AluImm {
        /// Operation kind.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand (sign-extended to 64 bits).
        imm: i64,
    },
    /// Load immediate: `dst = imm`.
    Li {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Word load: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset (should be word aligned).
        offset: i64,
    },
    /// Word store: `mem[base + offset] = src`.
    Store {
        /// Source (data) register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset (should be word aligned).
        offset: i64,
    },
    /// Conditional branch: `if cond(a, b) goto target`.
    Branch {
        /// Condition code.
        cond: BranchCond,
        /// First comparison register.
        a: Reg,
        /// Second comparison register.
        b: Reg,
        /// Branch target.
        target: Pc,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Subroutine call: `ra = pc + 1; goto target`.
    Call {
        /// Entry point of the callee.
        target: Pc,
    },
    /// Subroutine return: `goto ra`.
    Ret,
    /// Stops the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// The destination register written by this instruction, if any.
    ///
    /// [`Inst::Call`] writes the link register [`Reg::RA`]. Writes to
    /// [`Reg::ZERO`] are architecturally discarded but still reported here;
    /// consumers that care should check [`Reg::is_zero`].
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::Li { dst, .. }
            | Inst::Load { dst, .. } => Some(dst),
            Inst::Call { .. } => Some(Reg::RA),
            _ => None,
        }
    }

    /// The source registers read by this instruction (up to two).
    ///
    /// Reads of [`Reg::ZERO`] are included; it always yields zero.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { a, b, .. } => [Some(a), Some(b)],
            Inst::AluImm { a, .. } => [Some(a), None],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::Store { src, base, .. } => [Some(src), Some(base)],
            Inst::Branch { a, b, .. } => [Some(a), Some(b)],
            Inst::Ret => [Some(Reg::RA), None],
            Inst::Li { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Halt | Inst::Nop => {
                [None, None]
            }
        }
    }

    /// Whether this is any control-transfer instruction (branch, jump, call
    /// or return).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this instruction can redirect fetch (any control or halt).
    pub fn is_branch(&self) -> bool {
        self.is_control() || matches!(self, Inst::Halt)
    }

    /// Whether this is a subroutine call.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }

    /// Whether this is a subroutine return.
    pub fn is_ret(&self) -> bool {
        matches!(self, Inst::Ret)
    }

    /// Whether this is a memory access (load or store).
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this halts the machine.
    pub fn is_halt(&self) -> bool {
        matches!(self, Inst::Halt)
    }

    /// The static control-flow target of this instruction, if it has one.
    ///
    /// Returns `None` for non-control instructions and for [`Inst::Ret`],
    /// whose target is dynamic.
    pub fn control_target(&self) -> Option<Pc> {
        match *self {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// The functional-unit class that executes this instruction.
    ///
    /// Control instructions and `li`/`nop`/`halt` use the simple integer
    /// units.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.fu_class(),
            Inst::Load { .. } | Inst::Store { .. } => FuClass::LoadStore,
            _ => FuClass::SimpleInt,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Inst::AluImm { op, dst, a, imm } => write!(f, "{op}i {dst}, {a}, {imm}"),
            Inst::Li { dst, imm } => write!(f, "li {dst}, {imm}"),
            Inst::Load { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Inst::Branch { cond, a, b, target } => write!(f, "b{cond} {a}, {b}, {target}"),
            Inst::Jump { target } => write!(f, "j {target}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

serde::impl_serde_enum!(AluOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Slt,
    Sltu,
    FAdd,
    FMul,
    FDiv,
});

serde::impl_serde_enum!(BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
});

serde::impl_serde_enum!(FuClass {
    SimpleInt,
    LoadStore,
    IntMul,
    FpSimple,
    FpMul,
    FpDiv,
});

serde::impl_serde_enum!(Inst {
    Alu { op, dst, a, b },
    AluImm { op, dst, a, imm },
    Li { dst, imm },
    Load { dst, base, offset },
    Store { src, base, offset },
    Branch { cond, a, b, target },
    Jump { target },
    Call { target },
    Ret,
    Halt,
    Nop,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 4), 12);
        assert_eq!(AluOp::Div.apply(10, 3), 3);
        assert_eq!(AluOp::Div.apply(10, 0), 0);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift amount mod 64
        assert_eq!(AluOp::Shr.apply(4, 1), 2);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1);
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
    }

    #[test]
    fn branch_conditions_are_signed() {
        assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0
        assert!(!BranchCond::Gt.eval(u64::MAX, 0));
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Le.eval(5, 5));
        assert!(BranchCond::Ge.eval(5, 5));
    }

    #[test]
    fn negate_is_involutive_and_complementary() {
        for c in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn fu_classes_match_paper_resources() {
        assert_eq!(FuClass::SimpleInt.latency(), 1);
        assert_eq!(FuClass::IntMul.latency(), 4);
        assert_eq!(FuClass::FpSimple.latency(), 4);
        assert_eq!(FuClass::FpMul.latency(), 6);
        assert_eq!(FuClass::FpDiv.latency(), 17);
        assert_eq!(FuClass::SimpleInt.units(), 2);
        assert_eq!(FuClass::LoadStore.units(), 2);
        assert_eq!(FuClass::IntMul.units(), 1);
        assert!(!FuClass::FpDiv.pipelined());
        assert!(FuClass::FpMul.pipelined());
        // Dense indices cover 0..6 without collision.
        let mut seen = [false; 6];
        for c in FuClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }

    #[test]
    fn dst_and_srcs() {
        let call = Inst::Call { target: Pc(3) };
        assert_eq!(call.dst(), Some(Reg::RA));
        assert_eq!(Inst::Ret.srcs(), [Some(Reg::RA), None]);
        let st = Inst::Store {
            src: Reg::R1,
            base: Reg::R2,
            offset: 8,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), [Some(Reg::R1), Some(Reg::R2)]);
    }

    #[test]
    fn classification_predicates() {
        let j = Inst::Jump { target: Pc(0) };
        assert!(j.is_control() && j.is_branch() && !j.is_cond_branch());
        assert!(Inst::Halt.is_branch() && !Inst::Halt.is_control());
        assert!(Inst::Ret.is_ret() && Inst::Ret.control_target().is_none());
        let ld = Inst::Load {
            dst: Reg::R1,
            base: Reg::SP,
            offset: 0,
        };
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::Branch {
            cond: BranchCond::Ne,
            a: Reg::R1,
            b: Reg::ZERO,
            target: Pc(12),
        };
        assert_eq!(i.to_string(), "bne r1, zero, @12");
    }
}
