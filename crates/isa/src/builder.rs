//! A label-based assembler for constructing [`Program`]s from Rust.

use crate::inst::AluOp;
use crate::{BranchCond, Function, Inst, IsaError, Pc, Program, Reg, WORD_BYTES};

/// A forward-referenceable code label handed out by
/// [`ProgramBuilder::fresh_label`].
///
/// Labels are cheap copyable handles; they belong to the builder that created
/// them and must be bound exactly once with [`ProgramBuilder::bind`] before
/// [`ProgramBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug)]
struct LabelState {
    name: String,
    pc: Option<Pc>,
    bound_twice: bool,
}

#[derive(Debug)]
struct OpenFunction {
    name: String,
    entry: Pc,
}

/// Incrementally builds a [`Program`] with symbolic labels, function symbols
/// and an initial memory image.
///
/// Every emitter method returns the [`Pc`] of the instruction it appended, so
/// callers can record interesting addresses (e.g. candidate spawning points).
///
/// # Examples
///
/// A function computing `2 * x` called from the entry code:
///
/// ```
/// use specmt_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 21);
/// b.call("double");
/// b.halt();
///
/// b.begin_func("double");
/// b.add(Reg::R1, Reg::R1, Reg::R1);
/// b.ret();
/// b.end_func();
///
/// let program = b.build()?;
/// assert_eq!(program.functions().len(), 1);
/// assert_eq!(program.functions()[0].name, "double");
/// # Ok::<(), specmt_isa::IsaError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: Vec<LabelState>,
    /// `(instruction index, label)` pairs patched at build time.
    fixups: Vec<(usize, Label)>,
    functions: Vec<Function>,
    func_labels: Vec<(String, Label)>,
    open_function: Option<OpenFunction>,
    entry: Option<Label>,
    memory_image: Vec<(u64, u64)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The address the next emitted instruction will occupy.
    pub fn pc(&self) -> Pc {
        Pc(self.insts.len() as u32)
    }

    /// Creates a new unbound label. `name` is used only in error messages.
    pub fn fresh_label(&mut self, name: &str) -> Label {
        self.labels.push(LabelState {
            name: name.to_owned(),
            pc: None,
            bound_twice: false,
        });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// Binding the same label twice is recorded and reported as
    /// [`IsaError::DuplicateLabelBinding`] by [`ProgramBuilder::build`].
    pub fn bind(&mut self, label: Label) {
        let here = self.pc();
        let state = &mut self.labels[label.0];
        if state.pc.is_some() {
            state.bound_twice = true;
        } else {
            state.pc = Some(here);
        }
    }

    /// Declares (or retrieves) the entry label of the function `name`,
    /// allowing calls before the function body is emitted.
    pub fn func_label(&mut self, name: &str) -> Label {
        if let Some((_, l)) = self.func_labels.iter().find(|(n, _)| n == name) {
            return *l;
        }
        let l = self.fresh_label(name);
        self.func_labels.push((name.to_owned(), l));
        l
    }

    /// Starts the body of function `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if another function body is still open; close it with
    /// [`ProgramBuilder::end_func`] first.
    pub fn begin_func(&mut self, name: &str) {
        assert!(
            self.open_function.is_none(),
            "begin_func(\"{name}\") while function `{}` is still open",
            self.open_function
                .as_ref()
                .map(|f| f.name.as_str())
                .unwrap_or("?")
        );
        let l = self.func_label(name);
        self.bind(l);
        self.open_function = Some(OpenFunction {
            name: name.to_owned(),
            entry: self.pc(),
        });
    }

    /// Ends the currently-open function body.
    ///
    /// # Panics
    ///
    /// Panics if no function body is open.
    pub fn end_func(&mut self) {
        let open = self
            .open_function
            .take()
            .expect("end_func without matching begin_func");
        self.functions.push(Function {
            name: open.name,
            entry: open.entry,
            end: self.pc(),
        });
    }

    /// Selects the program entry point (defaults to `@0`).
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Adds one word to the initial memory image.
    pub fn data(&mut self, addr: u64, value: u64) {
        self.memory_image.push((addr, value));
    }

    /// Adds a contiguous block of words starting at `addr`.
    pub fn data_block(&mut self, addr: u64, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.memory_image.push((addr + i as u64 * WORD_BYTES, v));
        }
    }

    fn emit(&mut self, inst: Inst) -> Pc {
        let pc = self.pc();
        self.insts.push(inst);
        pc
    }

    fn emit_fixup(&mut self, inst: Inst, label: Label) -> Pc {
        let pc = self.emit(inst);
        self.fixups.push((pc.index(), label));
        pc
    }

    // --- ALU emitters -----------------------------------------------------

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.emit(Inst::Alu { op, dst, a, b })
    }

    /// Emits a register-immediate ALU operation.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.emit(Inst::AluImm { op, dst, a, imm })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::Add, dst, a, imm)
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// `dst = a * b` (4-cycle integer multiplier)
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// `dst = a * imm`
    pub fn muli(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::Mul, dst, a, imm)
    }

    /// `dst = a / b` (unsigned; zero divisor yields zero)
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Div, dst, a, b)
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::And, dst, a, b)
    }

    /// `dst = a & imm`
    pub fn andi(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::And, dst, a, imm)
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Or, dst, a, b)
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// `dst = a ^ imm`
    pub fn xori(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::Xor, dst, a, imm)
    }

    /// `dst = a << imm`
    pub fn shli(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::Shl, dst, a, imm)
    }

    /// `dst = a >> imm` (logical)
    pub fn shri(&mut self, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.alu_imm(AluOp::Shr, dst, a, imm)
    }

    /// `dst = (a < b)` signed
    pub fn slt(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::Slt, dst, a, b)
    }

    /// `dst = a + b` on the FP adder (4 cycles)
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::FAdd, dst, a, b)
    }

    /// `dst = a * b` on the FP multiplier (6 cycles)
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::FMul, dst, a, b)
    }

    /// `dst = a / b` on the FP divider (17 cycles)
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.alu(AluOp::FDiv, dst, a, b)
    }

    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) -> Pc {
        self.emit(Inst::Li { dst, imm })
    }

    /// `dst = src` (encoded as `addi dst, src, 0`)
    pub fn mv(&mut self, dst: Reg, src: Reg) -> Pc {
        self.addi(dst, src, 0)
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> Pc {
        self.emit(Inst::Nop)
    }

    // --- Memory emitters ---------------------------------------------------

    /// `dst = mem[base + offset]`
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> Pc {
        self.emit(Inst::Load { dst, base, offset })
    }

    /// `mem[base + offset] = src`
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> Pc {
        self.emit(Inst::Store { src, base, offset })
    }

    /// Pushes `reg` onto the stack (`sp -= 8; mem[sp] = reg`).
    pub fn push(&mut self, reg: Reg) -> Pc {
        let pc = self.addi(Reg::SP, Reg::SP, -(WORD_BYTES as i64));
        self.st(reg, Reg::SP, 0);
        pc
    }

    /// Pops the stack top into `reg` (`reg = mem[sp]; sp += 8`).
    pub fn pop(&mut self, reg: Reg) -> Pc {
        let pc = self.ld(reg, Reg::SP, 0);
        self.addi(Reg::SP, Reg::SP, WORD_BYTES as i64);
        pc
    }

    /// Standard non-leaf function prologue: saves the link register.
    pub fn prologue(&mut self) -> Pc {
        self.push(Reg::RA)
    }

    /// Standard non-leaf function epilogue: restores the link register and
    /// returns.
    pub fn epilogue_ret(&mut self) -> Pc {
        let pc = self.pop(Reg::RA);
        self.ret();
        pc
    }

    // --- Control emitters ---------------------------------------------------

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, a: Reg, b: Reg, label: Label) -> Pc {
        self.emit_fixup(
            Inst::Branch {
                cond,
                a,
                b,
                target: Pc(0),
            },
            label,
        )
    }

    /// `if a == b goto label`
    pub fn beq(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Eq, a, b, label)
    }

    /// `if a != b goto label`
    pub fn bne(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Ne, a, b, label)
    }

    /// `if a < b goto label` (signed)
    pub fn blt(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Lt, a, b, label)
    }

    /// `if a >= b goto label` (signed)
    pub fn bge(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Ge, a, b, label)
    }

    /// `if a <= b goto label` (signed)
    pub fn ble(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Le, a, b, label)
    }

    /// `if a > b goto label` (signed)
    pub fn bgt(&mut self, a: Reg, b: Reg, label: Label) -> Pc {
        self.branch(BranchCond::Gt, a, b, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn j(&mut self, label: Label) -> Pc {
        self.emit_fixup(Inst::Jump { target: Pc(0) }, label)
    }

    /// Emits a call to the function `name` (declared on first use).
    pub fn call(&mut self, name: &str) -> Pc {
        let l = self.func_label(name);
        self.emit_fixup(Inst::Call { target: Pc(0) }, l)
    }

    /// Emits a subroutine return.
    pub fn ret(&mut self) -> Pc {
        self.emit(Inst::Ret)
    }

    /// Emits a halt.
    pub fn halt(&mut self) -> Pc {
        self.emit(Inst::Halt)
    }

    /// Resolves all labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] or
    /// [`IsaError::DuplicateLabelBinding`] for label misuse, and any error
    /// from [`Program::with_parts`] for structural problems.
    ///
    /// # Panics
    ///
    /// Panics if a function body opened with
    /// [`ProgramBuilder::begin_func`] was never closed.
    pub fn build(self) -> Result<Program, IsaError> {
        assert!(
            self.open_function.is_none(),
            "build() with function `{}` still open",
            self.open_function
                .as_ref()
                .map(|f| f.name.as_str())
                .unwrap_or("?")
        );
        for state in &self.labels {
            if state.bound_twice {
                return Err(IsaError::DuplicateLabelBinding {
                    name: state.name.clone(),
                });
            }
        }
        let mut insts = self.insts;
        for (idx, label) in self.fixups {
            let state = &self.labels[label.0];
            let target = state.pc.ok_or_else(|| IsaError::UnboundLabel {
                name: state.name.clone(),
            })?;
            match &mut insts[idx] {
                Inst::Branch { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t } => {
                    *t = target;
                }
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let entry = match self.entry {
            Some(l) => self.labels[l.0].pc.ok_or_else(|| IsaError::UnboundLabel {
                name: self.labels[l.0].name.clone(),
            })?,
            None => Pc(0),
        };
        Program::with_parts(insts, entry, self.functions, self.memory_image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.fresh_label("fwd");
        let back = b.fresh_label("back");
        b.bind(back);
        b.j(fwd); // @0 -> @2
        b.j(back); // @1 -> @0
        b.bind(fwd);
        b.halt(); // @2
        let p = b.build().unwrap();
        assert_eq!(p.inst(Pc(0)), Some(&Inst::Jump { target: Pc(2) }));
        assert_eq!(p.inst(Pc(1)), Some(&Inst::Jump { target: Pc(0) }));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("nowhere");
        b.j(l);
        b.halt();
        assert!(matches!(b.build(), Err(IsaError::UnboundLabel { .. })));
    }

    #[test]
    fn duplicate_binding_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("twice");
        b.bind(l);
        b.nop();
        b.bind(l);
        b.halt();
        assert!(matches!(
            b.build(),
            Err(IsaError::DuplicateLabelBinding { .. })
        ));
    }

    #[test]
    fn call_before_definition_resolves() {
        let mut b = ProgramBuilder::new();
        b.call("late");
        b.halt();
        b.begin_func("late");
        b.ret();
        b.end_func();
        let p = b.build().unwrap();
        assert_eq!(p.inst(Pc(0)), Some(&Inst::Call { target: Pc(2) }));
        assert_eq!(p.functions()[0].entry, Pc(2));
        assert_eq!(p.functions()[0].end, Pc(3));
    }

    #[test]
    fn push_pop_expand_to_two_instructions() {
        let mut b = ProgramBuilder::new();
        b.push(Reg::R1);
        b.pop(Reg::R1);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 5);
        assert!(matches!(p.inst(Pc(1)), Some(Inst::Store { .. })));
        assert!(matches!(p.inst(Pc(2)), Some(Inst::Load { .. })));
    }

    #[test]
    fn entry_label_is_honored() {
        let mut b = ProgramBuilder::new();
        let start = b.fresh_label("start");
        b.halt(); // @0: dead
        b.bind(start);
        b.set_entry(start);
        b.halt(); // @1
        let p = b.build().unwrap();
        assert_eq!(p.entry(), Pc(1));
    }

    #[test]
    fn data_block_lays_out_consecutive_words() {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.data_block(0x1000, &[1, 2, 3]);
        let p = b.build().unwrap();
        assert_eq!(p.memory_image(), &[(0x1000, 1), (0x1008, 2), (0x1010, 3)]);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_begin_func_panics() {
        let mut b = ProgramBuilder::new();
        b.begin_func("a");
        b.begin_func("b");
    }
}
