//! # specmt-workloads
//!
//! A synthetic benchmark suite standing in for SpecInt95.
//!
//! The HPCA 2002 paper this project reproduces evaluates its thread-spawning
//! schemes on the eight SpecInt95 programs compiled for Alpha. Those
//! binaries (and their inputs) are not reproducible here, so this crate
//! provides one deterministic synthetic program per benchmark, written in
//! the `specmt-isa` instruction set and engineered to mimic the structural
//! character that drives each benchmark's published behaviour:
//!
//! | Workload | Mimics | Character |
//! |---|---|---|
//! | [`go`] | go | irregular data-dependent branching over a board array |
//! | [`m88ksim`] | m88ksim | fetch/decode/dispatch simulator loop over in-memory state |
//! | [`gcc`] | gcc | many small functions dispatched from a driver, large CFG |
//! | [`compress`] | compress | one dominant loop with a serial register/memory chain |
//! | [`li`] | li | recursive tree traversal, call-continuation parallelism |
//! | [`ijpeg`] | ijpeg | regular nested loops over independent blocks |
//! | [`perl`] | perl | interpreter dispatch with rare expensive opcodes (imbalance) |
//! | [`vortex`] | vortex | call-heavy transactions over a hash-table store |
//!
//! Each workload carries a reference checksum computed by a Rust
//! transliteration of the same algorithm; the test suite asserts the
//! emulated program reproduces it exactly, pinning the emulator and the
//! generators to each other.
//!
//! # Examples
//!
//! ```
//! use specmt_workloads::{Scale, Workload};
//!
//! let w = specmt_workloads::ijpeg(Scale::Tiny);
//! assert_eq!(w.name, "ijpeg");
//! assert!(w.program.len() > 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
mod compress;
mod gcc;
mod go;
mod ijpeg;
mod li;
mod m88ksim;
mod perl;
mod vortex;

pub use common::InputSet;
pub use compress::compress;
pub use compress::compress_with_input;
pub use gcc::{gcc, gcc_with_input};
pub use go::{go, go_with_input};
pub use ijpeg::{ijpeg, ijpeg_with_input};
pub use li::{li, li_with_input};
pub use m88ksim::{m88ksim, m88ksim_with_input};
pub use perl::{perl, perl_with_input};
pub use vortex::{vortex, vortex_with_input};

use specmt_isa::Program;

/// Problem-size presets.
///
/// Sizes target dynamic instruction counts of roughly 10–30 k
/// ([`Scale::Tiny`], unit tests), ~100 k ([`Scale::Small`]), ~0.5 M
/// ([`Scale::Medium`], the default for figure regeneration) and several
/// million ([`Scale::Large`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Smallest: fast enough for debug-mode unit tests.
    Tiny,
    /// Small: quick experiments.
    Small,
    /// Medium: the default evaluation size.
    Medium,
    /// Large: long traces for stable statistics.
    Large,
}

/// A synthetic benchmark: a program plus the checksum a correct execution
/// must produce (left in register `r10` at halt).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (matches its SpecInt95 namesake).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Expected final value of `r10`, computed by the Rust reference
    /// implementation.
    pub expected_checksum: u64,
    /// A generous step budget for trace generation (several times the
    /// expected dynamic length).
    pub step_budget: u64,
}

/// The full suite in the paper's reporting order:
/// go, m88ksim, gcc, compress, li, ijpeg, perl, vortex.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        go(scale),
        m88ksim(scale),
        gcc(scale),
        compress(scale),
        li(scale),
        ijpeg(scale),
        perl(scale),
        vortex(scale),
    ]
}

/// Names of the suite in reporting order.
pub const SUITE_NAMES: [&str; 8] = [
    "go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
];

/// Looks up a single workload by name.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    by_name_with_input(name, scale, InputSet::Train)
}

/// As [`by_name`], selecting the input set (training vs reference data).
pub fn by_name_with_input(name: &str, scale: Scale, input: InputSet) -> Option<Workload> {
    match name {
        "go" => Some(go_with_input(scale, input)),
        "m88ksim" => Some(m88ksim_with_input(scale, input)),
        "gcc" => Some(gcc_with_input(scale, input)),
        "compress" => Some(compress_with_input(scale, input)),
        "li" => Some(li_with_input(scale, input)),
        "ijpeg" => Some(ijpeg_with_input(scale, input)),
        "perl" => Some(perl_with_input(scale, input)),
        "vortex" => Some(vortex_with_input(scale, input)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_workloads_in_paper_order() {
        let s = suite(Scale::Tiny);
        let names: Vec<&str> = s.iter().map(|w| w.name).collect();
        assert_eq!(names, SUITE_NAMES.to_vec());
    }

    #[test]
    fn by_name_round_trips() {
        for name in SUITE_NAMES {
            assert_eq!(by_name(name, Scale::Tiny).unwrap().name, name);
        }
        assert!(by_name("eon", Scale::Tiny).is_none());
    }

    #[test]
    fn scales_change_the_computation() {
        // Different scales must produce different checksums (more work is
        // actually being done, not just re-run).
        for name in SUITE_NAMES {
            let a = by_name(name, Scale::Tiny).unwrap().expected_checksum;
            let b = by_name(name, Scale::Small).unwrap().expected_checksum;
            assert_ne!(a, b, "{name} checksum scale-insensitive");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in SUITE_NAMES {
            let a = by_name(name, Scale::Tiny).unwrap();
            let b = by_name(name, Scale::Tiny).unwrap();
            assert_eq!(a.expected_checksum, b.expected_checksum);
            assert_eq!(a.program.insts(), b.program.insts());
        }
    }

    #[test]
    fn reference_inputs_differ_and_are_bigger() {
        use specmt_isa::Reg;
        let _ = Reg::ZERO;
        for name in SUITE_NAMES {
            let train = by_name_with_input(name, Scale::Tiny, InputSet::Train).unwrap();
            let reference = by_name_with_input(name, Scale::Tiny, InputSet::Ref).unwrap();
            assert_ne!(
                train.expected_checksum, reference.expected_checksum,
                "{name}: ref input identical to train"
            );
        }
    }

    #[test]
    fn every_workload_declares_functions_or_loops() {
        // The suite must exercise both spawning-source kinds across the
        // board: calls exist in at least half the suite, every program has
        // a backward branch.
        let mut with_calls = 0;
        for w in suite(Scale::Tiny) {
            let has_backward = w.program.insts().iter().enumerate().any(|(i, inst)| {
                inst.control_target().is_some_and(|t| t.index() <= i) && !inst.is_call()
            });
            assert!(has_backward, "{} has no loop", w.name);
            if w.program.insts().iter().any(|i| i.is_call()) {
                with_calls += 1;
            }
        }
        assert!(with_calls >= 4, "only {with_calls} workloads make calls");
    }
}
