//! `gcc`: many small functions dispatched from a driver loop.
//!
//! SpecInt95's gcc has the largest static footprint of the suite: hundreds
//! of small pass functions invoked from dispatch-heavy drivers, several from
//! multiple call sites. This analogue dispatches over six leaf "passes" with
//! distinct access patterns (two of them called from two different sites, so
//! their return points have the low per-site reaching probability that
//! motivates the paper's explicit return-pair injection).

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED_ARR: u64 = 0x6cc0;
const SEED_SEL: u64 = 0x6cc1;
const ARR: u64 = DATA_BASE;
const SEL: u64 = DATA_BASE + 0x10_0000;
const OUT: u64 = DATA_BASE + 0x20_0000;
const ARR_MASK: u64 = 1023;
const SEL_MASK: u64 = 511;
const OUT_MASK: u64 = 1023;

fn dispatches(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 128,
        Scale::Small => 1_024,
        Scale::Medium => 2_048,
        Scale::Large => 10_000,
    }
}

mod passes {
    use super::ARR_MASK;

    pub fn f0(arr: &[u64], x: u64) -> u64 {
        (0..8).fold(0u64, |r, t| {
            r.wrapping_add(arr[((x.wrapping_add(t)) & ARR_MASK) as usize])
        })
    }

    pub fn f1(arr: &[u64], x: u64) -> u64 {
        (0..12).fold(0u64, |r, t| {
            r ^ arr[((x.wrapping_add(3 * t)) & ARR_MASK) as usize]
        })
    }

    pub fn f2(arr: &[u64], x: u64) -> u64 {
        (0..6).fold(0u64, |r, t| {
            r.wrapping_mul(3)
                .wrapping_add(arr[((x.wrapping_add(5 * t)) & ARR_MASK) as usize])
        })
    }

    pub fn f3(arr: &mut [u64], x: u64) -> u64 {
        let mut r = 0u64;
        for t in 0..8 {
            let idx = ((x.wrapping_add(7 * t)) & ARR_MASK) as usize;
            arr[idx] = arr[idx].wrapping_add(x);
            r = r.wrapping_add(arr[idx]);
        }
        r
    }

    pub fn f4(arr: &[u64], x: u64) -> u64 {
        let mut r = 0u64;
        for t in 0..16 {
            let v = arr[((x.wrapping_add(t)) & ARR_MASK) as usize];
            if v & 1 != 0 {
                r = r.wrapping_add(v);
            } else {
                r ^= v;
            }
        }
        r
    }

    pub fn f5(arr: &[u64], x: u64) -> u64 {
        (0..4).fold(0u64, |r, t| {
            r.wrapping_add(arr[((x.wrapping_add(9 * t)) & ARR_MASK) as usize] / (t + 1))
        })
    }
}

fn reference(arr_init: &[u64], sel: &[u64], m: u64) -> u64 {
    let mut arr = arr_init.to_vec();
    // Pass results land in a per-iteration log slot (like gcc writing pass
    // output into IR), not a register-carried checksum that would
    // serialise the driver loop.
    let mut out = vec![0u64; (OUT_MASK + 1) as usize];
    for i in 0..m {
        let s = sel[(i & SEL_MASK) as usize] & 7;
        let r = match s {
            0 => passes::f0(&arr, i),
            1 => passes::f1(&arr, i),
            2 => passes::f2(&arr, i),
            3 => passes::f3(&mut arr, i),
            4 => passes::f4(&arr, i),
            5 => passes::f5(&arr, i),
            6 => passes::f0(&arr, i.wrapping_add(17)),
            _ => passes::f2(&arr, i.wrapping_add(29)),
        };
        let slot = (i & OUT_MASK) as usize;
        out[slot] ^= r.wrapping_add(i);
    }
    out.iter()
        .fold(0u64, |acc, &s| acc.wrapping_mul(31).wrapping_add(s))
}

/// Emits a leaf loop `for t in 0..trips` over `arr[(x + stride*t) & mask]`.
/// The per-element op is supplied by `body`, which receives the loaded
/// element in `R8` and must accumulate into `R4`. `x` arrives in `R3`.
fn emit_scan_loop(
    b: &mut ProgramBuilder,
    name: &str,
    trips: i64,
    stride: i64,
    body: impl Fn(&mut ProgramBuilder),
) {
    b.begin_func(name);
    let looph = b.fresh_label("loop");
    b.li(Reg::R4, 0);
    b.li(Reg::R5, 0); // t
    b.li(Reg::R6, trips);
    b.mv(Reg::R9, Reg::R3); // running index
    b.bind(looph);
    b.andi(Reg::R7, Reg::R9, ARR_MASK as i64);
    b.shli(Reg::R7, Reg::R7, 3);
    b.add(Reg::R7, Reg::R14, Reg::R7);
    b.ld(Reg::R8, Reg::R7, 0);
    body(b);
    b.addi(Reg::R9, Reg::R9, stride);
    b.addi(Reg::R5, Reg::R5, 1);
    b.blt(Reg::R5, Reg::R6, looph);
    b.ret();
    b.end_func();
}

fn build(m: u64, arr_init: &[u64], sel: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    let join = b.fresh_label("join");
    let sites: Vec<_> = (0..8).map(|k| b.fresh_label(&format!("site{k}"))).collect();

    let reduce = b.fresh_label("reduce");
    b.li(Reg::R14, ARR as i64); // global: array base (read by all passes)
    b.li(Reg::R15, SEL as i64);
    b.li(Reg::R16, OUT as i64);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, m as i64);

    b.bind(top);
    b.andi(Reg::R5, Reg::R1, SEL_MASK as i64);
    b.shli(Reg::R5, Reg::R5, 3);
    b.add(Reg::R5, Reg::R15, Reg::R5);
    b.ld(Reg::R6, Reg::R5, 0);
    b.andi(Reg::R6, Reg::R6, 7);
    // Dispatch chain (gcc-style switch lowering).
    for (k, &site) in sites.iter().enumerate().take(7) {
        b.li(Reg::R7, k as i64);
        b.beq(Reg::R6, Reg::R7, site);
    }
    b.j(sites[7]);

    let funcs = ["f0", "f1", "f2", "f3", "f4", "f5", "f0", "f2"];
    let arg_offsets = [0i64, 0, 0, 0, 0, 0, 17, 29];
    for k in 0..8 {
        b.bind(sites[k]);
        if arg_offsets[k] == 0 {
            b.mv(Reg::R3, Reg::R1);
        } else {
            b.addi(Reg::R3, Reg::R1, arg_offsets[k]);
        }
        b.call(funcs[k]);
        b.j(join);
    }

    b.bind(join);
    b.add(Reg::R4, Reg::R4, Reg::R1);
    b.andi(Reg::R11, Reg::R1, OUT_MASK as i64);
    b.shli(Reg::R11, Reg::R11, 3);
    b.add(Reg::R11, Reg::R16, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.xor(Reg::R12, Reg::R12, Reg::R4);
    b.st(Reg::R12, Reg::R11, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);

    // Final reduction over the result log.
    b.li(Reg::R10, 0);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, (OUT_MASK + 1) as i64);
    b.bind(reduce);
    b.shli(Reg::R11, Reg::R1, 3);
    b.add(Reg::R11, Reg::R16, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.muli(Reg::R10, Reg::R10, 31);
    b.add(Reg::R10, Reg::R10, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, reduce);
    b.halt();

    // Pass bodies.
    emit_scan_loop(&mut b, "f0", 8, 1, |b| {
        b.add(Reg::R4, Reg::R4, Reg::R8);
    });
    emit_scan_loop(&mut b, "f1", 12, 3, |b| {
        b.xor(Reg::R4, Reg::R4, Reg::R8);
    });
    emit_scan_loop(&mut b, "f2", 6, 5, |b| {
        b.muli(Reg::R4, Reg::R4, 3);
        b.add(Reg::R4, Reg::R4, Reg::R8);
    });
    // f3: read-modify-write pass (creates cross-call memory dependences).
    {
        b.begin_func("f3");
        let looph = b.fresh_label("loop");
        b.li(Reg::R4, 0);
        b.li(Reg::R5, 0);
        b.li(Reg::R6, 8);
        b.mv(Reg::R9, Reg::R3);
        b.bind(looph);
        b.andi(Reg::R7, Reg::R9, ARR_MASK as i64);
        b.shli(Reg::R7, Reg::R7, 3);
        b.add(Reg::R7, Reg::R14, Reg::R7);
        b.ld(Reg::R8, Reg::R7, 0);
        b.add(Reg::R8, Reg::R8, Reg::R3);
        b.st(Reg::R8, Reg::R7, 0);
        b.add(Reg::R4, Reg::R4, Reg::R8);
        b.addi(Reg::R9, Reg::R9, 7);
        b.addi(Reg::R5, Reg::R5, 1);
        b.blt(Reg::R5, Reg::R6, looph);
        b.ret();
        b.end_func();
    }
    // f4: conditional accumulate (data-dependent branch in the hot loop).
    {
        b.begin_func("f4");
        let looph = b.fresh_label("loop");
        let odd = b.fresh_label("odd");
        let next = b.fresh_label("next");
        b.li(Reg::R4, 0);
        b.li(Reg::R5, 0);
        b.li(Reg::R6, 16);
        b.mv(Reg::R9, Reg::R3);
        b.bind(looph);
        b.andi(Reg::R7, Reg::R9, ARR_MASK as i64);
        b.shli(Reg::R7, Reg::R7, 3);
        b.add(Reg::R7, Reg::R14, Reg::R7);
        b.ld(Reg::R8, Reg::R7, 0);
        b.andi(Reg::R11, Reg::R8, 1);
        b.bne(Reg::R11, Reg::ZERO, odd);
        b.xor(Reg::R4, Reg::R4, Reg::R8);
        b.j(next);
        b.bind(odd);
        b.add(Reg::R4, Reg::R4, Reg::R8);
        b.bind(next);
        b.addi(Reg::R9, Reg::R9, 1);
        b.addi(Reg::R5, Reg::R5, 1);
        b.blt(Reg::R5, Reg::R6, looph);
        b.ret();
        b.end_func();
    }
    // f5: divide-heavy pass (long-latency functional units).
    {
        b.begin_func("f5");
        let looph = b.fresh_label("loop");
        b.li(Reg::R4, 0);
        b.li(Reg::R5, 0);
        b.li(Reg::R6, 4);
        b.mv(Reg::R9, Reg::R3);
        b.bind(looph);
        b.andi(Reg::R7, Reg::R9, ARR_MASK as i64);
        b.shli(Reg::R7, Reg::R7, 3);
        b.add(Reg::R7, Reg::R14, Reg::R7);
        b.ld(Reg::R8, Reg::R7, 0);
        b.addi(Reg::R11, Reg::R5, 1);
        b.div(Reg::R8, Reg::R8, Reg::R11);
        b.add(Reg::R4, Reg::R4, Reg::R8);
        b.addi(Reg::R9, Reg::R9, 9);
        b.addi(Reg::R5, Reg::R5, 1);
        b.blt(Reg::R5, Reg::R6, looph);
        b.ret();
        b.end_func();
    }

    b.data_block(ARR, arr_init);
    b.data_block(SEL, sel);
    b.build().expect("gcc program is valid")
}

/// Builds the `gcc` workload at the given scale.
pub fn gcc(scale: Scale) -> Workload {
    gcc_with_input(scale, InputSet::Train)
}

/// As [`gcc`], with an explicit input set (see
/// [`InputSet`]).
pub fn gcc_with_input(scale: Scale, input: InputSet) -> Workload {
    let m = input.work(dispatches(scale));
    let arr = random_words(SEED_ARR ^ input.salt(), (ARR_MASK + 1) as usize);
    let sel = random_words(SEED_SEL ^ input.salt(), (SEL_MASK + 1) as usize);
    let expected = reference(&arr, &sel, m);
    let program = build(m, &arr, &sel);
    Workload {
        name: "gcc",
        program,
        expected_checksum: expected,
        step_budget: (m * 160 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = gcc(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn has_six_functions() {
        let w = gcc(Scale::Tiny);
        let names: Vec<&str> = w
            .program
            .functions()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["f0", "f1", "f2", "f3", "f4", "f5"]);
    }

    #[test]
    fn every_dispatch_calls_something() {
        let w = gcc(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.mix().calls, 128);
    }
}
