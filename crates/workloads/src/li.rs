//! `li`: recursive tree traversal with call-continuation parallelism.
//!
//! SpecInt95's li is a Lisp interpreter dominated by recursive list/tree
//! walks and garbage-collector sweeps. This analogue alternates a recursive
//! binary-tree sum (deep call chains whose sibling-subtree continuations are
//! the classic subroutine-continuation spawning opportunity) with a flat
//! mutation sweep over the node array (regular loop parallelism).

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED: u64 = 0x11_5b;
const NODES: u64 = DATA_BASE;
/// Node record: `[value, left, right]`, 24 bytes.
const NODE_BYTES: u64 = 24;

fn params(scale: Scale) -> (u32, u64) {
    // (tree depth, rounds)
    match scale {
        Scale::Tiny => (6, 3),
        Scale::Small => (8, 5),
        Scale::Medium => (9, 10),
        Scale::Large => (11, 12),
    }
}

fn node_addr(i: usize) -> u64 {
    NODES + i as u64 * NODE_BYTES
}

fn reference(values: &[u64], rounds: u64) -> u64 {
    fn tree_sum(values: &[u64], i: usize) -> u64 {
        if i >= values.len() {
            return 0;
        }
        values[i]
            .wrapping_add(tree_sum(values, 2 * i + 1))
            .wrapping_add(tree_sum(values, 2 * i + 2))
    }
    let mut values = values.to_vec();
    let mut check = 0u64;
    for k in 0..rounds {
        let s = tree_sum(&values, 0).wrapping_add(k);
        check ^= s;
        for v in values.iter_mut() {
            let mut x = v.wrapping_add(k);
            for _ in 0..10 {
                x = x.wrapping_mul(7) ^ (x >> 11);
            }
            *v = x;
        }
    }
    check
}

fn build(depth: u32, rounds: u64, values: &[u64]) -> Program {
    let nn = values.len();
    let mut b = ProgramBuilder::new();
    let round = b.fresh_label("round");
    let mutate = b.fresh_label("mutate");

    // Driver.
    b.li(Reg::R20, NODES as i64);
    b.li(Reg::R10, 0); // checksum
    b.li(Reg::R21, 0); // round counter k
    b.li(Reg::R22, rounds as i64);
    b.bind(round);
    b.mv(Reg::R3, Reg::R20);
    b.call("treesum");
    b.add(Reg::R4, Reg::R4, Reg::R21);
    b.xor(Reg::R10, Reg::R10, Reg::R4);
    // Mutation sweep: values[i] += k.
    b.li(Reg::R24, 0);
    b.li(Reg::R25, nn as i64);
    b.bind(mutate);
    b.muli(Reg::R26, Reg::R24, NODE_BYTES as i64);
    b.add(Reg::R26, Reg::R20, Reg::R26);
    b.ld(Reg::R27, Reg::R26, 0);
    b.add(Reg::R27, Reg::R27, Reg::R21);
    // A GC-sweep-like value scrub: ten mixing rounds per node keep the
    // sweep's loop body above the 32-instruction minimum thread size.
    for _ in 0..10 {
        b.muli(Reg::R28, Reg::R27, 7);
        b.shri(Reg::R27, Reg::R27, 11);
        b.xor(Reg::R27, Reg::R28, Reg::R27);
    }
    b.st(Reg::R27, Reg::R26, 0);
    b.addi(Reg::R24, Reg::R24, 1);
    b.blt(Reg::R24, Reg::R25, mutate);
    b.addi(Reg::R21, Reg::R21, 1);
    b.blt(Reg::R21, Reg::R22, round);
    b.halt();

    // Recursive tree sum: argument node pointer in r3 (0 = nil), result in
    // r4. r5/r6 are callee-saved scratch.
    b.begin_func("treesum");
    let rec = b.fresh_label("rec");
    b.bne(Reg::R3, Reg::ZERO, rec);
    b.li(Reg::R4, 0);
    b.ret();
    b.bind(rec);
    b.push(Reg::RA);
    b.push(Reg::R5);
    b.push(Reg::R6);
    b.ld(Reg::R5, Reg::R3, 0); // value
    b.push(Reg::R3);
    b.ld(Reg::R3, Reg::R3, 8); // left child
    b.call("treesum");
    b.mv(Reg::R6, Reg::R4);
    b.pop(Reg::R3);
    b.ld(Reg::R3, Reg::R3, 16); // right child
    b.call("treesum");
    b.add(Reg::R4, Reg::R4, Reg::R6);
    b.add(Reg::R4, Reg::R4, Reg::R5);
    b.pop(Reg::R6);
    b.pop(Reg::R5);
    b.pop(Reg::RA);
    b.ret();
    b.end_func();

    // Lay out the complete binary tree.
    for (i, &v) in values.iter().enumerate() {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        b.data(node_addr(i), v);
        b.data(
            node_addr(i) + 8,
            if left < nn { node_addr(left) } else { 0 },
        );
        b.data(
            node_addr(i) + 16,
            if right < nn { node_addr(right) } else { 0 },
        );
    }
    let _ = depth;
    b.build().expect("li program is valid")
}

/// Builds the `li` workload at the given scale.
pub fn li(scale: Scale) -> Workload {
    li_with_input(scale, InputSet::Train)
}

/// As [`li`], with an explicit input set (see
/// [`InputSet`]).
pub fn li_with_input(scale: Scale, input: InputSet) -> Workload {
    let (depth, rounds) = params(scale);
    let rounds = input.work(rounds);
    let nn = (1usize << depth) - 1;
    let values = random_words(SEED ^ input.salt(), nn);
    let expected = reference(&values, rounds);
    let program = build(depth, rounds, &values);
    Workload {
        name: "li",
        program,
        expected_checksum: expected,
        step_budget: (nn as u64 * 80 + 2_000) * rounds * 2 + 20_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = li(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn recursion_exercises_calls() {
        let w = li(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        let mix = trace.mix();
        // 2n+1 calls per round: every node plus every nil child.
        let nn = (1u64 << 6) - 1;
        assert_eq!(mix.calls, (2 * nn + 1) * 3);
    }

    #[test]
    fn reference_depends_on_rounds() {
        let values = random_words(SEED, 63);
        assert_ne!(reference(&values, 2), reference(&values, 3));
    }
}
