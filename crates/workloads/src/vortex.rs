//! `vortex`: call-heavy transactions over a hash-table object store.
//!
//! SpecInt95's vortex runs database transactions against an in-memory
//! object store — deep call chains with mostly-independent transactions.
//! The paper reports its largest profile-vs-heuristics win on vortex
//! (Figure 8). The analogue drives insert/update/lookup transactions against
//! an open-addressing hash table through dedicated functions, so both
//! subroutine continuations and the profile-selected pairs have plenty to
//! work with.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED_KEYS: u64 = 0x7038;
const TBL: u64 = DATA_BASE;
const KEYS: u64 = DATA_BASE + 0x40_0000;
const OUT: u64 = DATA_BASE + 0x50_0000;
const KEYS_MASK: u64 = 8191;
const OUT_MASK: u64 = 2047;
/// Slots are `[key, val]` pairs, 16 bytes; key 0 means empty.
const SLOT_BYTES: u64 = 16;
const TBL_MASK: u64 = 8191;
const KEY_MASK: u64 = 1023;
const HASH_MUL: u64 = 2654435761;

fn transactions(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 384,
        Scale::Small => 3_000,
        Scale::Medium => 6_000,
        Scale::Large => 30_000,
    }
}

fn hash(key: u64) -> u64 {
    (key.wrapping_mul(HASH_MUL) >> 16) & TBL_MASK
}

fn reference(keys_data: &[u64], m: u64) -> u64 {
    let mut table = vec![(0u64, 0u64); (TBL_MASK + 1) as usize];
    // Transaction results land in a per-transaction log slot (vortex writes
    // query results into its output buffers), avoiding a register-carried
    // serial chain across transactions.
    let mut out = vec![0u64; (OUT_MASK + 1) as usize];
    for i in 0..m {
        let s = keys_data[(i & KEYS_MASK) as usize];
        let key = ((s >> 20) & KEY_MASK) | 1;
        let r = if s & 7 < 3 {
            // insert-or-update
            let val = s >> 13;
            let mut h = hash(key);
            loop {
                let (k, _) = table[h as usize];
                if k == 0 {
                    table[h as usize] = (key, val);
                    break 1;
                }
                if k == key {
                    table[h as usize].1 = val;
                    break 2;
                }
                h = (h + 1) & TBL_MASK;
            }
        } else {
            // lookup
            let mut h = hash(key);
            loop {
                let (k, v) = table[h as usize];
                if k == key {
                    break v;
                }
                if k == 0 {
                    break 0;
                }
                h = (h + 1) & TBL_MASK;
            }
        };
        let slot = (i & OUT_MASK) as usize;
        out[slot] = out[slot].wrapping_add(r.wrapping_add(i));
    }
    out.iter()
        .fold(0u64, |acc, &s| acc.wrapping_mul(31).wrapping_add(s))
}

fn build(m: u64, keys_data: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    let do_lookup = b.fresh_label("do_lookup");
    let join = b.fresh_label("join");
    let reduce = b.fresh_label("reduce");

    b.li(Reg::R14, TBL as i64);
    b.li(Reg::R21, KEYS as i64);
    b.li(Reg::R22, OUT as i64);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, m as i64);

    b.bind(top);
    b.andi(Reg::R20, Reg::R1, KEYS_MASK as i64);
    b.shli(Reg::R20, Reg::R20, 3);
    b.add(Reg::R20, Reg::R21, Reg::R20);
    b.ld(Reg::R20, Reg::R20, 0); // transaction descriptor
    b.shri(Reg::R3, Reg::R20, 20);
    b.andi(Reg::R3, Reg::R3, KEY_MASK as i64);
    b.alu_imm(specmt_isa::AluOp::Or, Reg::R3, Reg::R3, 1); // key
    b.andi(Reg::R6, Reg::R20, 7);
    b.li(Reg::R7, 3);
    b.bge(Reg::R6, Reg::R7, do_lookup);
    b.shri(Reg::R5, Reg::R20, 13); // value
    b.call("insert");
    b.j(join);
    b.bind(do_lookup);
    b.call("lookup");
    b.bind(join);
    b.add(Reg::R4, Reg::R4, Reg::R1);
    b.andi(Reg::R11, Reg::R1, OUT_MASK as i64);
    b.shli(Reg::R11, Reg::R11, 3);
    b.add(Reg::R11, Reg::R22, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.add(Reg::R12, Reg::R12, Reg::R4);
    b.st(Reg::R12, Reg::R11, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);

    // Final reduction over the transaction log.
    b.li(Reg::R10, 0);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, (OUT_MASK + 1) as i64);
    b.bind(reduce);
    b.shli(Reg::R11, Reg::R1, 3);
    b.add(Reg::R11, Reg::R22, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.muli(Reg::R10, Reg::R10, 31);
    b.add(Reg::R10, Reg::R10, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, reduce);
    b.halt();

    // Shared probe-address computation: h in r6 -> slot address in r7.
    // insert(key=r3, val=r5) -> r4 in {1 inserted, 2 updated}
    b.begin_func("insert");
    let iprobe = b.fresh_label("probe");
    let iupdate = b.fresh_label("update");
    let inext = b.fresh_label("next");
    b.muli(Reg::R6, Reg::R3, HASH_MUL as i64);
    b.shri(Reg::R6, Reg::R6, 16);
    b.andi(Reg::R6, Reg::R6, TBL_MASK as i64);
    b.bind(iprobe);
    b.muli(Reg::R7, Reg::R6, SLOT_BYTES as i64);
    b.add(Reg::R7, Reg::R14, Reg::R7);
    b.ld(Reg::R8, Reg::R7, 0); // key slot
    b.beq(Reg::R8, Reg::R3, iupdate);
    b.bne(Reg::R8, Reg::ZERO, inext);
    // empty: claim it
    b.st(Reg::R3, Reg::R7, 0);
    b.st(Reg::R5, Reg::R7, 8);
    b.li(Reg::R4, 1);
    b.ret();
    b.bind(iupdate);
    b.st(Reg::R5, Reg::R7, 8);
    b.li(Reg::R4, 2);
    b.ret();
    b.bind(inext);
    b.addi(Reg::R6, Reg::R6, 1);
    b.andi(Reg::R6, Reg::R6, TBL_MASK as i64);
    b.j(iprobe);
    b.end_func();

    // lookup(key=r3) -> r4 = value or 0
    b.begin_func("lookup");
    let lprobe = b.fresh_label("probe");
    let lhit = b.fresh_label("hit");
    let lnext = b.fresh_label("next");
    b.muli(Reg::R6, Reg::R3, HASH_MUL as i64);
    b.shri(Reg::R6, Reg::R6, 16);
    b.andi(Reg::R6, Reg::R6, TBL_MASK as i64);
    b.bind(lprobe);
    b.muli(Reg::R7, Reg::R6, SLOT_BYTES as i64);
    b.add(Reg::R7, Reg::R14, Reg::R7);
    b.ld(Reg::R8, Reg::R7, 0);
    b.beq(Reg::R8, Reg::R3, lhit);
    b.bne(Reg::R8, Reg::ZERO, lnext);
    b.li(Reg::R4, 0);
    b.ret();
    b.bind(lhit);
    b.ld(Reg::R4, Reg::R7, 8);
    b.ret();
    b.bind(lnext);
    b.addi(Reg::R6, Reg::R6, 1);
    b.andi(Reg::R6, Reg::R6, TBL_MASK as i64);
    b.j(lprobe);
    b.end_func();

    b.data_block(KEYS, keys_data);
    b.build().expect("vortex program is valid")
}

/// Builds the `vortex` workload at the given scale.
pub fn vortex(scale: Scale) -> Workload {
    vortex_with_input(scale, InputSet::Train)
}

/// As [`vortex`], with an explicit input set (see
/// [`InputSet`]).
pub fn vortex_with_input(scale: Scale, input: InputSet) -> Workload {
    let m = input.work(transactions(scale));
    let keys_data = random_words(SEED_KEYS ^ input.salt(), (KEYS_MASK + 1) as usize);
    let expected = reference(&keys_data, m);
    let program = build(m, &keys_data);
    Workload {
        name: "vortex",
        program,
        expected_checksum: expected,
        step_budget: (m * 60 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = vortex(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn is_call_heavy() {
        let w = vortex(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        // Exactly one call per transaction.
        assert_eq!(trace.mix().calls, 384);
    }

    #[test]
    fn hash_spreads_keys() {
        let h1 = hash(1);
        let h2 = hash(2);
        assert_ne!(h1, h2);
        assert!(h1 <= TBL_MASK && h2 <= TBL_MASK);
    }
}
