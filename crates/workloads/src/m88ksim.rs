//! `m88ksim`: a fetch/decode/dispatch CPU-simulator loop.
//!
//! SpecInt95's m88ksim simulates a Motorola 88100: its hot code is a
//! fetch/decode/execute loop whose state (simulated registers and data
//! memory) lives in memory and whose dispatch is a branch tree over the
//! decoded opcode. The analogue interprets a fixed stream of six synthetic
//! opcodes over a 16-entry simulated register file and a small data memory —
//! serial through the in-memory machine state, with predictable decode
//! control flow but data-dependent dispatch targets.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED: u64 = 0x88;
const IMEM: u64 = DATA_BASE;
const SREGS: u64 = DATA_BASE + 0x10_0000;
const DMEM: u64 = DATA_BASE + 0x20_0000;
const STATS: u64 = DATA_BASE + 0x30_0000;
const IMEM_WORDS: usize = 256;
const DMEM_MASK: u64 = 255;
const STATS_MASK: u64 = 255;

fn rounds(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 2,
        Scale::Small => 8,
        Scale::Medium => 32,
        Scale::Large => 160,
    }
}

/// Builds the synthetic instruction stream: opcode pre-masked to 0..6.
fn encode_imem(salt: u64) -> Vec<u64> {
    random_words(SEED ^ salt, IMEM_WORDS)
        .into_iter()
        .map(|r| {
            let op = r % 6;
            (r >> 11 << 11) | ((r >> 7 & 15) << 7) | ((r >> 3 & 15) << 3) | op
        })
        .collect()
}

fn reference(imem: &[u64], rounds: u64) -> u64 {
    let mut sregs = [0u64; 16];
    let mut dmem = vec![0u64; (DMEM_MASK + 1) as usize];
    let mut stats = vec![0u64; (STATS_MASK + 1) as usize];
    let mut acc = 0u64;
    let mut cycles = 0u64;
    for _ in 0..rounds {
        for (i, &w) in imem.iter().enumerate() {
            let op = w & 7;
            let rd = (w >> 3 & 15) as usize;
            let rs = (w >> 7 & 15) as usize;
            let imm = w >> 11;
            let rs_val = sregs[rs];
            // Per-instruction statistics land in a per-pc slot, the way
            // m88ksim's profiling counters do — not in a register-carried
            // global that would serialise iterations.
            let mix = ((rs_val >> 17) ^ rs_val).wrapping_mul(0x9e3779b97f4a7c15) ^ w;
            let slot = i & STATS_MASK as usize;
            stats[slot] = stats[slot].wrapping_add(mix) ^ (mix >> 29).wrapping_mul(31);
            cycles = cycles.wrapping_add(op + 1);
            match op {
                0 => sregs[rd] = rs_val.wrapping_add(imm),
                1 => sregs[rd] = rs_val ^ imm,
                2 => sregs[rd] = rs_val >> (imm & 31),
                3 => sregs[rd] = dmem[((rs_val.wrapping_add(imm)) & DMEM_MASK) as usize],
                4 => {
                    let idx = ((rs_val.wrapping_add(imm)) & DMEM_MASK) as usize;
                    dmem[idx] = sregs[rd].wrapping_add(imm);
                }
                _ => acc ^= rs_val.wrapping_add(imm),
            }
        }
    }
    let mut check = acc ^ cycles;
    for &s in &sregs {
        check = check.wrapping_mul(31).wrapping_add(s);
    }
    for &s in &stats {
        check = check.wrapping_mul(31).wrapping_add(s);
    }
    check
}

fn build(rounds: u64, imem: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let round = b.fresh_label("round");
    let fetch = b.fresh_label("fetch");
    let next = b.fresh_label("next");
    let sites: Vec<_> = (0..6).map(|k| b.fresh_label(&format!("op{k}"))).collect();
    let sum = b.fresh_label("sum");

    b.li(Reg::R14, IMEM as i64);
    b.li(Reg::R15, SREGS as i64);
    b.li(Reg::R16, DMEM as i64);
    b.li(Reg::R21, STATS as i64);
    b.li(Reg::R4, 0); // acc
    b.li(Reg::R22, 0); // simulated cycles
    b.li(Reg::R3, 0); // round
    b.li(Reg::R17, rounds as i64);

    b.bind(round);
    b.li(Reg::R1, 0); // simulated pc
    b.li(Reg::R2, imem.len() as i64);

    b.bind(fetch);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R5, Reg::R14, Reg::R5);
    b.ld(Reg::R5, Reg::R5, 0); // w
    b.andi(Reg::R6, Reg::R5, 7); // op
    b.shri(Reg::R7, Reg::R5, 3);
    b.andi(Reg::R7, Reg::R7, 15); // rd
    b.shri(Reg::R8, Reg::R5, 7);
    b.andi(Reg::R8, Reg::R8, 15); // rs
    b.shri(Reg::R9, Reg::R5, 11); // imm
                                  // rs_val = sregs[rs]
    b.shli(Reg::R11, Reg::R8, 3);
    b.add(Reg::R11, Reg::R15, Reg::R11);
    b.ld(Reg::R11, Reg::R11, 0);
    // Decode-time accounting: mix the operand into this pc's statistics
    // slot (models m88ksim's per-instruction profiling counters, and keeps
    // the fetch block above the paper's 32-instruction minimum thread
    // size). Slot-local read-modify-write: no cross-iteration register
    // chain.
    b.shri(Reg::R18, Reg::R11, 17);
    b.xor(Reg::R18, Reg::R18, Reg::R11);
    b.muli(Reg::R18, Reg::R18, 0x9e3779b97f4a7c15u64 as i64);
    b.xor(Reg::R18, Reg::R18, Reg::R5);
    b.andi(Reg::R19, Reg::R1, STATS_MASK as i64);
    b.shli(Reg::R19, Reg::R19, 3);
    b.add(Reg::R19, Reg::R21, Reg::R19);
    b.ld(Reg::R20, Reg::R19, 0);
    b.add(Reg::R20, Reg::R20, Reg::R18);
    b.shri(Reg::R18, Reg::R18, 29);
    b.muli(Reg::R18, Reg::R18, 31);
    b.xor(Reg::R20, Reg::R20, Reg::R18);
    b.st(Reg::R20, Reg::R19, 0);
    // rd slot address
    b.shli(Reg::R12, Reg::R7, 3);
    b.add(Reg::R12, Reg::R15, Reg::R12);
    // Dispatch tree.
    for (k, &site) in sites.iter().enumerate().take(5) {
        b.li(Reg::R13, k as i64);
        b.beq(Reg::R6, Reg::R13, site);
    }
    b.j(sites[5]);

    // op0: add
    b.bind(sites[0]);
    b.add(Reg::R13, Reg::R11, Reg::R9);
    b.st(Reg::R13, Reg::R12, 0);
    b.j(next);
    // op1: xor
    b.bind(sites[1]);
    b.xor(Reg::R13, Reg::R11, Reg::R9);
    b.st(Reg::R13, Reg::R12, 0);
    b.j(next);
    // op2: shift
    b.bind(sites[2]);
    b.andi(Reg::R13, Reg::R9, 31);
    b.alu(specmt_isa::AluOp::Shr, Reg::R13, Reg::R11, Reg::R13);
    b.st(Reg::R13, Reg::R12, 0);
    b.j(next);
    // op3: load from dmem
    b.bind(sites[3]);
    b.add(Reg::R13, Reg::R11, Reg::R9);
    b.andi(Reg::R13, Reg::R13, DMEM_MASK as i64);
    b.shli(Reg::R13, Reg::R13, 3);
    b.add(Reg::R13, Reg::R16, Reg::R13);
    b.ld(Reg::R13, Reg::R13, 0);
    b.st(Reg::R13, Reg::R12, 0);
    b.j(next);
    // op4: store to dmem (value = sregs[rd] + imm)
    b.bind(sites[4]);
    b.add(Reg::R13, Reg::R11, Reg::R9);
    b.andi(Reg::R13, Reg::R13, DMEM_MASK as i64);
    b.shli(Reg::R13, Reg::R13, 3);
    b.add(Reg::R13, Reg::R16, Reg::R13);
    b.ld(Reg::R18, Reg::R12, 0); // sregs[rd]
    b.add(Reg::R18, Reg::R18, Reg::R9);
    b.st(Reg::R18, Reg::R13, 0);
    b.j(next);
    // op5: accumulate
    b.bind(sites[5]);
    b.add(Reg::R13, Reg::R11, Reg::R9);
    b.xor(Reg::R4, Reg::R4, Reg::R13);

    b.bind(next);
    b.addi(Reg::R13, Reg::R6, 1);
    b.add(Reg::R22, Reg::R22, Reg::R13); // simulated cycle count
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, fetch);
    b.addi(Reg::R3, Reg::R3, 1);
    b.blt(Reg::R3, Reg::R17, round);

    // Fold the cycle count, register file and statistics slots into the
    // checksum.
    let sum2 = b.fresh_label("sum2");
    b.xor(Reg::R10, Reg::R4, Reg::R22);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 16);
    b.bind(sum);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R5, Reg::R15, Reg::R5);
    b.ld(Reg::R6, Reg::R5, 0);
    b.muli(Reg::R10, Reg::R10, 31);
    b.add(Reg::R10, Reg::R10, Reg::R6);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, sum);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, (STATS_MASK + 1) as i64);
    b.bind(sum2);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R5, Reg::R21, Reg::R5);
    b.ld(Reg::R6, Reg::R5, 0);
    b.muli(Reg::R10, Reg::R10, 31);
    b.add(Reg::R10, Reg::R10, Reg::R6);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, sum2);
    b.halt();

    b.data_block(IMEM, imem);
    b.build().expect("m88ksim program is valid")
}

/// Builds the `m88ksim` workload at the given scale.
pub fn m88ksim(scale: Scale) -> Workload {
    m88ksim_with_input(scale, InputSet::Train)
}

/// As [`m88ksim`], with an explicit input set (see
/// [`InputSet`]).
pub fn m88ksim_with_input(scale: Scale, input: InputSet) -> Workload {
    let r = input.work(rounds(scale));
    let imem = encode_imem(input.salt());
    let expected = reference(&imem, r);
    let program = build(r, &imem);
    Workload {
        name: "m88ksim",
        program,
        expected_checksum: expected,
        step_budget: (r * IMEM_WORDS as u64 * 35 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = m88ksim(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn all_opcodes_appear_in_imem() {
        let imem = encode_imem(0);
        let mut seen = [false; 6];
        for &w in &imem {
            seen[(w & 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reference_changes_with_rounds() {
        let imem = encode_imem(0);
        assert_ne!(reference(&imem, 1), reference(&imem, 2));
    }
}
