//! `ijpeg`: regular nested loops over independent data blocks.
//!
//! SpecInt95's ijpeg is the most regular program of the suite — image
//! compression over independent 8×8 blocks — and posts the paper's highest
//! speed-up (11.9 with 16 thread units). This synthetic analogue transforms
//! independent 16-word blocks in a perfectly regular outer loop whose only
//! cross-iteration values are the (stride-predictable) induction variable
//! and base addresses; partial checksums go through a per-block array and a
//! final reduction so no serial register chain crosses iterations.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED: u64 = 0x1_0a61;
const SEED_Q: u64 = 0x1_0a62;
const BLOCK: usize = 16;
const IN: u64 = DATA_BASE;
const OUT: u64 = DATA_BASE + 0x20_0000;
const PARTIAL: u64 = DATA_BASE + 0x40_0000;
const QTAB: u64 = DATA_BASE + 0x60_0000;
const QTAB_WORDS: usize = 64;
/// Rounds of per-block scalar mixing in the outer-loop header. Besides
/// modelling ijpeg's per-block quantisation setup, this keeps the inner
/// loop below the 90 % instruction-coverage pruning threshold so the outer
/// loop head survives as a spawning point.
const MIX_ROUNDS: usize = 8;

fn blocks(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 16,
        Scale::Small => 64,
        Scale::Medium => 768,
        Scale::Large => 4096,
    }
}

/// The per-element transform, shared by the program and the reference.
#[inline]
fn transform(x: u64) -> u64 {
    let mut v = x.wrapping_mul(3).wrapping_add(7);
    v ^= x >> 2;
    v.wrapping_add(x.wrapping_mul(x))
}

/// The per-block header mixing, shared by the program and the reference.
#[inline]
fn header_mix(q: u64, ib: u64) -> u64 {
    let mut v = q;
    for _ in 0..MIX_ROUNDS {
        v = v.wrapping_mul(3).wrapping_add(ib) ^ (v >> 5);
    }
    v
}

fn reference(input: &[u64], qtab: &[u64], nb: usize) -> u64 {
    let mut total = 0u64;
    for ib in 0..nb {
        let q = qtab[ib & (QTAB_WORDS - 1)];
        let mut partial = header_mix(q, ib as u64);
        for j in 0..BLOCK {
            partial = partial.wrapping_add(transform(input[ib * BLOCK + j]));
        }
        total = total.wrapping_add(partial);
    }
    total
}

fn build(nb: usize, input: &[u64], qtab: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let outer = b.fresh_label("outer");
    let inner = b.fresh_label("inner");
    let red = b.fresh_label("reduce");

    b.li(Reg::R14, IN as i64);
    b.li(Reg::R15, OUT as i64);
    b.li(Reg::R16, PARTIAL as i64);
    b.li(Reg::R17, QTAB as i64);
    b.li(Reg::R1, 0); // block index
    b.li(Reg::R2, nb as i64);

    b.bind(outer);
    b.shli(Reg::R3, Reg::R1, 7); // byte offset of the block (16 words)
    b.add(Reg::R4, Reg::R15, Reg::R3);
    b.add(Reg::R3, Reg::R14, Reg::R3);
    // Per-block quantisation setup: load the table entry and mix it with
    // the block index; the result seeds the partial checksum.
    b.andi(Reg::R9, Reg::R1, QTAB_WORDS as i64 - 1);
    b.shli(Reg::R9, Reg::R9, 3);
    b.add(Reg::R9, Reg::R17, Reg::R9);
    b.ld(Reg::R5, Reg::R9, 0); // q
    for _ in 0..MIX_ROUNDS {
        b.muli(Reg::R18, Reg::R5, 3);
        b.add(Reg::R18, Reg::R18, Reg::R1);
        b.shri(Reg::R19, Reg::R5, 5);
        b.xor(Reg::R5, Reg::R18, Reg::R19);
    }
    b.li(Reg::R6, 0); // element index
    b.li(Reg::R7, BLOCK as i64);

    b.bind(inner);
    b.shli(Reg::R9, Reg::R6, 3);
    b.add(Reg::R11, Reg::R3, Reg::R9);
    b.ld(Reg::R8, Reg::R11, 0);
    b.muli(Reg::R12, Reg::R8, 3);
    b.addi(Reg::R12, Reg::R12, 7);
    b.shri(Reg::R13, Reg::R8, 2);
    b.xor(Reg::R12, Reg::R12, Reg::R13);
    b.fmul(Reg::R13, Reg::R8, Reg::R8);
    b.add(Reg::R12, Reg::R12, Reg::R13);
    b.add(Reg::R11, Reg::R4, Reg::R9);
    b.st(Reg::R12, Reg::R11, 0);
    b.add(Reg::R5, Reg::R5, Reg::R12);
    b.addi(Reg::R6, Reg::R6, 1);
    b.blt(Reg::R6, Reg::R7, inner);

    b.shli(Reg::R9, Reg::R1, 3);
    b.add(Reg::R11, Reg::R16, Reg::R9);
    b.st(Reg::R5, Reg::R11, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, outer);

    // Final reduction over the per-block partials.
    b.li(Reg::R5, 0);
    b.li(Reg::R6, 0);
    b.bind(red);
    b.shli(Reg::R9, Reg::R6, 3);
    b.add(Reg::R11, Reg::R16, Reg::R9);
    b.ld(Reg::R8, Reg::R11, 0);
    b.add(Reg::R5, Reg::R5, Reg::R8);
    b.addi(Reg::R6, Reg::R6, 1);
    b.blt(Reg::R6, Reg::R2, red);
    b.mv(Reg::R10, Reg::R5);
    b.halt();

    b.data_block(IN, input);
    b.data_block(QTAB, qtab);
    b.build().expect("ijpeg program is valid")
}

/// Builds the `ijpeg` workload at the given scale.
pub fn ijpeg(scale: Scale) -> Workload {
    ijpeg_with_input(scale, InputSet::Train)
}

/// As [`ijpeg`], with an explicit input set (see
/// [`InputSet`]).
pub fn ijpeg_with_input(scale: Scale, input: InputSet) -> Workload {
    let nb = input.work(blocks(scale) as u64) as usize;
    let data = random_words(SEED ^ input.salt(), nb * BLOCK);
    let qtab = random_words(SEED_Q ^ input.salt(), QTAB_WORDS);
    let expected = reference(&data, &qtab, nb);
    let program = build(nb, &data, &qtab);
    Workload {
        name: "ijpeg",
        program,
        expected_checksum: expected,
        step_budget: (nb as u64 * 300 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::Reg;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = ijpeg(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn transform_is_nontrivial() {
        assert_ne!(transform(1), transform(2));
        assert_eq!(transform(0), 7);
    }

    #[test]
    fn scales_are_monotonic() {
        let t = ijpeg(Scale::Tiny).program.len();
        let l = ijpeg(Scale::Large).program.len();
        // Static size is scale-independent; dynamic budget is not.
        assert_eq!(t, l);
        assert!(ijpeg(Scale::Tiny).step_budget < ijpeg(Scale::Large).step_budget);
    }
}
