//! `go`: irregular, data-dependent branching over a board array.
//!
//! SpecInt95's go is the suite's most branch-irregular program: move
//! evaluation over a 19×19 board with deeply data-dependent control flow.
//! This analogue evaluates pseudo-random board positions with nested
//! data-dependent branches, short variable-trip inner loops and occasional
//! board mutation — lots of basic blocks, mediocre branch predictability,
//! moderate thread-level parallelism.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED: u64 = 0x60;
const SEED_MOVES: u64 = 0x61;
const BOARD: u64 = DATA_BASE;
const MOVES: u64 = DATA_BASE + 0x10_0000;
const SCORES: u64 = DATA_BASE + 0x20_0000;
const BOARD_CELLS: usize = 361;
const MOVES_MASK: u64 = 4095;
const SCORES_MASK: u64 = 2047;

fn moves(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 256,
        Scale::Small => 2_048,
        Scale::Medium => 4_500,
        Scale::Large => 24_000,
    }
}

fn reference(board_init: &[u64], move_data: &[u64], moves: u64) -> u64 {
    let mut board = board_init.to_vec();
    let mut scores = vec![0u64; (SCORES_MASK + 1) as usize];
    for i in 0..moves {
        let r5 = move_data[(i & MOVES_MASK) as usize] >> 33;
        let pos = (r5 % BOARD_CELLS as u64) as usize;
        let v = board[pos];
        // Per-move score: accumulated locally, then written to the move's
        // slot in the score log (real evaluators record per-move results;
        // a register-carried global sum would also be an artificial serial
        // chain across iterations).
        let mut score = 0u64;
        if v & 1 != 0 {
            score = score.wrapping_add(pos as u64);
            if v & 6 != 0 {
                score ^= v;
            }
        } else {
            score ^= v >> 3;
        }
        let trips = pos as u64 & 7;
        for t in 0..trips {
            let mut idx = pos as u64 + t;
            if idx >= BOARD_CELLS as u64 {
                idx -= BOARD_CELLS as u64;
            }
            score = score.wrapping_add(board[idx as usize]);
        }
        if i & 15 == 0 {
            board[pos] = v.wrapping_add(1);
        }
        let slot = (i & SCORES_MASK) as usize;
        scores[slot] = scores[slot].wrapping_add(score).rotate_left(1);
    }
    scores
        .iter()
        .fold(0u64, |acc, &s| acc.wrapping_mul(31).wrapping_add(s))
}

fn build(moves: u64, board_init: &[u64], move_data: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    let even = b.fresh_label("even");
    let skipodd = b.fresh_label("skipodd");
    let after = b.fresh_label("after");
    let inner = b.fresh_label("inner");
    let nowrap = b.fresh_label("nowrap");
    let innerdone = b.fresh_label("innerdone");
    let noupd = b.fresh_label("noupd");

    let reduce = b.fresh_label("reduce");
    b.li(Reg::R14, BOARD as i64);
    b.li(Reg::R21, MOVES as i64);
    b.li(Reg::R22, SCORES as i64);
    b.li(Reg::R1, 0); // move counter
    b.li(Reg::R2, moves as i64);

    b.bind(top);
    b.li(Reg::R4, 0); // per-move score
    b.andi(Reg::R5, Reg::R1, MOVES_MASK as i64);
    b.shli(Reg::R5, Reg::R5, 3);
    b.add(Reg::R5, Reg::R21, Reg::R5);
    b.ld(Reg::R5, Reg::R5, 0);
    b.shri(Reg::R5, Reg::R5, 33);
    b.li(Reg::R6, BOARD_CELLS as i64);
    b.div(Reg::R7, Reg::R5, Reg::R6);
    b.muli(Reg::R7, Reg::R7, BOARD_CELLS as i64);
    b.sub(Reg::R7, Reg::R5, Reg::R7); // position
    b.shli(Reg::R8, Reg::R7, 3);
    b.add(Reg::R8, Reg::R14, Reg::R8);
    b.ld(Reg::R9, Reg::R8, 0); // v = board[pos]
    b.andi(Reg::R11, Reg::R9, 1);
    b.beq(Reg::R11, Reg::ZERO, even);
    b.add(Reg::R4, Reg::R4, Reg::R7);
    b.andi(Reg::R11, Reg::R9, 6);
    b.beq(Reg::R11, Reg::ZERO, skipodd);
    b.xor(Reg::R4, Reg::R4, Reg::R9);
    b.bind(skipodd);
    b.j(after);
    b.bind(even);
    b.shri(Reg::R11, Reg::R9, 3);
    b.xor(Reg::R4, Reg::R4, Reg::R11);
    b.bind(after);

    // Variable-trip neighbourhood scan: t in 0..(pos & 7).
    b.li(Reg::R12, 0);
    b.andi(Reg::R13, Reg::R7, 7);
    b.bind(inner);
    b.bge(Reg::R12, Reg::R13, innerdone);
    b.add(Reg::R15, Reg::R7, Reg::R12);
    b.li(Reg::R6, BOARD_CELLS as i64);
    b.blt(Reg::R15, Reg::R6, nowrap);
    b.sub(Reg::R15, Reg::R15, Reg::R6);
    b.bind(nowrap);
    b.shli(Reg::R16, Reg::R15, 3);
    b.add(Reg::R16, Reg::R14, Reg::R16);
    b.ld(Reg::R17, Reg::R16, 0);
    b.add(Reg::R4, Reg::R4, Reg::R17);
    b.addi(Reg::R12, Reg::R12, 1);
    b.j(inner);
    b.bind(innerdone);

    // Occasional board mutation.
    b.andi(Reg::R11, Reg::R1, 15);
    b.bne(Reg::R11, Reg::ZERO, noupd);
    b.addi(Reg::R9, Reg::R9, 1);
    b.st(Reg::R9, Reg::R8, 0);
    b.bind(noupd);
    // Log the move's score into its slot (read-modify-write keeps the
    // slot's history without a cross-iteration register chain).
    b.andi(Reg::R11, Reg::R1, SCORES_MASK as i64);
    b.shli(Reg::R11, Reg::R11, 3);
    b.add(Reg::R11, Reg::R22, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.add(Reg::R12, Reg::R12, Reg::R4);
    b.alu_imm(specmt_isa::AluOp::Shl, Reg::R13, Reg::R12, 1);
    b.shri(Reg::R12, Reg::R12, 63);
    b.or(Reg::R12, Reg::R13, Reg::R12); // rotate_left(1)
    b.st(Reg::R12, Reg::R11, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);

    // Final reduction over the score log.
    b.li(Reg::R10, 0);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, (SCORES_MASK + 1) as i64);
    b.bind(reduce);
    b.shli(Reg::R11, Reg::R1, 3);
    b.add(Reg::R11, Reg::R22, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0);
    b.muli(Reg::R10, Reg::R10, 31);
    b.add(Reg::R10, Reg::R10, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, reduce);
    b.halt();

    b.data_block(BOARD, board_init);
    b.data_block(MOVES, move_data);
    b.build().expect("go program is valid")
}

/// Builds the `go` workload at the given scale.
pub fn go(scale: Scale) -> Workload {
    go_with_input(scale, InputSet::Train)
}

/// As [`go`], with an explicit input set (see
/// [`InputSet`]).
pub fn go_with_input(scale: Scale, input: InputSet) -> Workload {
    let m = input.work(moves(scale));
    let board = random_words(SEED ^ input.salt(), BOARD_CELLS);
    let move_data = random_words(SEED_MOVES ^ input.salt(), (MOVES_MASK + 1) as usize);
    let expected = reference(&board, &move_data, m);
    let program = build(m, &board, &move_data);
    Workload {
        name: "go",
        program,
        expected_checksum: expected,
        step_budget: (m * 70 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = go(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn branches_are_data_dependent() {
        let w = go(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        let mix = trace.mix();
        // A healthy share of conditional branches, neither all-taken nor
        // never-taken.
        assert!(mix.cond_branches > 1000);
        let taken_frac = mix.taken_cond_branches as f64 / mix.cond_branches as f64;
        assert!(taken_frac > 0.2 && taken_frac < 0.8, "taken {taken_frac}");
    }

    #[test]
    fn reference_is_sensitive_to_board_contents() {
        let moves = random_words(SEED_MOVES, (MOVES_MASK + 1) as usize);
        let a = reference(&random_words(1, BOARD_CELLS), &moves, 100);
        let b = reference(&random_words(2, BOARD_CELLS), &moves, 100);
        assert_ne!(a, b);
    }
}
