//! Shared helpers for workload generators.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Base byte address for workload data regions. Everything lives far below
/// the stack top.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Deterministic data generator: a seeded ChaCha stream, stable across
/// platforms and crate versions.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `n` deterministic pseudo-random words for the given seed.
pub fn random_words(seed: u64, n: usize) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen::<u64>()).collect()
}

/// Which input a workload is generated with.
///
/// SPEC distinguishes *training* inputs (used for profiling) from
/// *reference* inputs (used for reporting); the paper profiles and
/// evaluates on training data. This toolkit supports both so the
/// `crossinput` harness can test how well training-selected spawning pairs
/// transfer to a different input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputSet {
    /// The default input every `Scale` uses.
    #[default]
    Train,
    /// A differently-seeded, 25 % larger input.
    Ref,
}

impl InputSet {
    /// Salt mixed into every data seed.
    pub fn salt(self) -> u64 {
        match self {
            InputSet::Train => 0,
            InputSet::Ref => 0x5eed_0000_0000_0001,
        }
    }

    /// Scales an iteration/trip count for this input.
    pub fn work(self, n: u64) -> u64 {
        match self {
            InputSet::Train => n,
            InputSet::Ref => n + n / 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_words_are_deterministic() {
        assert_eq!(random_words(7, 16), random_words(7, 16));
        assert_ne!(random_words(7, 16), random_words(8, 16));
    }
}
