//! `compress`: one dominant loop carrying a serial register/memory chain.
//!
//! SpecInt95's compress (LZW) is the suite's most serial program: each
//! iteration's hash state depends on the previous iteration through both a
//! register accumulator and hash tables in memory. Its tiny static footprint
//! gives the profile analysis very few candidate spawning pairs (the paper
//! reports only ~30 selected pairs), which is why aggressive pair removal
//! collapses its performance in Figure 5a. This analogue reproduces exactly
//! that shape: one hot loop, a data-dependent state chain through registers
//! and two tables, a rarely-taken hit path.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED: u64 = 0xc0_4e55;
const INPUT: u64 = DATA_BASE;
const TABLE: u64 = DATA_BASE + 0x20_0000;
const TABLE2: u64 = DATA_BASE + 0x40_0000;
const TABLE_MASK: u64 = 4095;
const STATE_MUL: u64 = 2654435761;

fn iterations(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 512,
        Scale::Small => 3_000,
        Scale::Medium => 6_000,
        Scale::Large => 32_000,
    }
}

fn reference(input: &[u64]) -> u64 {
    let mut table = vec![0u64; (TABLE_MASK + 1) as usize];
    let mut table2 = vec![0u64; (TABLE_MASK + 1) as usize];
    let mut state = 12345u64;
    let mut out = 0u64;
    for &inw in input {
        state = state.wrapping_mul(31).wrapping_add(inw);
        state ^= state >> 13;
        state = state.wrapping_mul(STATE_MUL);
        let h = ((state >> 7) ^ state) & TABLE_MASK;
        let h2 = ((inw >> 9) ^ inw) & TABLE_MASK;
        let t = table[h as usize];
        let t2 = table2[h2 as usize];
        if t == inw {
            out = out.wrapping_add(1);
        } else {
            table[h as usize] = state;
            let mix = t ^ state;
            table2[h2 as usize] = mix;
            out = out.wrapping_add(mix).wrapping_add(t2);
            out ^= out >> 11;
            out = out.wrapping_mul(5).wrapping_add(inw);
        }
    }
    out ^ state
}

fn build(n: usize, input: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    let hit = b.fresh_label("hit");
    let cont = b.fresh_label("cont");

    b.li(Reg::R14, INPUT as i64);
    b.li(Reg::R15, TABLE as i64);
    b.li(Reg::R16, TABLE2 as i64);
    b.li(Reg::R5, 12345); // hash state
    b.li(Reg::R4, 0); // output accumulator
    b.li(Reg::R1, 0); // index
    b.li(Reg::R2, n as i64);

    b.bind(top);
    b.shli(Reg::R9, Reg::R1, 3);
    b.add(Reg::R9, Reg::R14, Reg::R9);
    b.ld(Reg::R6, Reg::R9, 0); // in
                               // The serial state chain: two mixing stages.
    b.muli(Reg::R5, Reg::R5, 31);
    b.add(Reg::R5, Reg::R5, Reg::R6);
    b.shri(Reg::R7, Reg::R5, 13);
    b.xor(Reg::R5, Reg::R5, Reg::R7);
    b.muli(Reg::R5, Reg::R5, STATE_MUL as i64);
    // Primary probe.
    b.shri(Reg::R7, Reg::R5, 7);
    b.xor(Reg::R7, Reg::R7, Reg::R5);
    b.andi(Reg::R7, Reg::R7, TABLE_MASK as i64);
    b.shli(Reg::R7, Reg::R7, 3);
    b.add(Reg::R9, Reg::R15, Reg::R7);
    b.ld(Reg::R8, Reg::R9, 0); // t
                               // Secondary probe, indexed by the input word.
    b.shri(Reg::R11, Reg::R6, 9);
    b.xor(Reg::R11, Reg::R11, Reg::R6);
    b.andi(Reg::R11, Reg::R11, TABLE_MASK as i64);
    b.shli(Reg::R11, Reg::R11, 3);
    b.add(Reg::R11, Reg::R16, Reg::R11);
    b.ld(Reg::R12, Reg::R11, 0); // t2
    b.beq(Reg::R8, Reg::R6, hit);
    // Miss (the common case): install state, mix the evicted entries.
    b.st(Reg::R5, Reg::R9, 0);
    b.xor(Reg::R13, Reg::R8, Reg::R5);
    b.st(Reg::R13, Reg::R11, 0);
    b.add(Reg::R4, Reg::R4, Reg::R13);
    b.add(Reg::R4, Reg::R4, Reg::R12);
    b.shri(Reg::R13, Reg::R4, 11);
    b.xor(Reg::R4, Reg::R4, Reg::R13);
    b.muli(Reg::R4, Reg::R4, 5);
    b.add(Reg::R4, Reg::R4, Reg::R6);
    b.j(cont);
    b.bind(hit);
    b.addi(Reg::R4, Reg::R4, 1);
    b.bind(cont);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);

    b.xor(Reg::R10, Reg::R4, Reg::R5);
    b.halt();

    b.data_block(INPUT, input);
    b.build().expect("compress program is valid")
}

/// Builds the `compress` workload at the given scale.
pub fn compress(scale: Scale) -> Workload {
    compress_with_input(scale, InputSet::Train)
}

/// As [`compress`], with an explicit input set (see
/// [`InputSet`]).
pub fn compress_with_input(scale: Scale, input: InputSet) -> Workload {
    let n = input.work(iterations(scale) as u64) as usize;
    let data = random_words(SEED ^ input.salt(), n);
    let expected = reference(&data);
    let program = build(n, &data);
    Workload {
        name: "compress",
        program,
        expected_checksum: expected,
        step_budget: (n as u64 * 45 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = compress(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn hit_path_is_rare_but_tables_mutate() {
        // The reference mutates the tables on (nearly) every iteration; two
        // different inputs must change the checksum.
        let a = reference(&random_words(1, 256));
        let b = reference(&random_words(2, 256));
        assert_ne!(a, b);
    }

    #[test]
    fn static_footprint_is_small() {
        // compress must remain a tiny program: one hot loop.
        let w = compress(Scale::Medium);
        assert!(w.program.len() < 50);
    }

    #[test]
    fn loop_body_clears_min_thread_size() {
        // The dominant loop iteration must exceed the paper's 32-instruction
        // minimum distance so compress selects (a few) spawning pairs.
        let w = compress(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        let per_iter = trace.len() as f64 / 512.0;
        assert!(per_iter > 32.0, "per-iteration length {per_iter}");
    }
}
