//! `perl`: interpreter dispatch with rare expensive opcodes.
//!
//! SpecInt95's perl interprets opcodes whose costs vary wildly — most are
//! cheap, a few (string/hash operations) run long inner loops. That work
//! imbalance is exactly what makes perl the one benchmark where the paper's
//! profile-based policy *loses* to the heuristics (Figure 8, an 8 %
//! slow-down). The analogue dispatches over a synthetic opcode stream where
//! 2 of 16 opcode classes call a string-hash routine with a data-dependent
//! trip count of 24–87 iterations.

use specmt_isa::{Program, ProgramBuilder, Reg};

use crate::common::{random_words, DATA_BASE};
use crate::{InputSet, Scale, Workload};

const SEED_OPS: u64 = 0x9e51;
const SEED_STR: u64 = 0x9e52;
const OPS: u64 = DATA_BASE;
const STR: u64 = DATA_BASE + 0x10_0000;
const STR_MASK: u64 = 255;

fn ops_count(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 256,
        Scale::Small => 2_048,
        Scale::Medium => 4_096,
        Scale::Large => 20_000,
    }
}

fn hashstr(strdata: &[u64], w: u64) -> u64 {
    let len = ((w >> 4) & 63) + 24;
    let idx0 = (w >> 10) & STR_MASK;
    let mut h = 5381u64;
    for t in 0..len {
        h = h
            .wrapping_mul(33)
            .wrapping_add(strdata[((idx0 + t) & STR_MASK) as usize]);
    }
    h
}

fn reference(ops: &[u64], strdata: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (i, &w) in ops.iter().enumerate() {
        let op = w & 15;
        if op >= 14 {
            acc = acc.wrapping_add(hashstr(strdata, w));
        } else if op >= 8 {
            let v = strdata[((w >> 4) & STR_MASK) as usize];
            acc = acc.wrapping_add(w >> 4).wrapping_add(v);
        } else if op >= 4 {
            acc ^= w.wrapping_mul(5);
        } else {
            acc = acc.wrapping_add(w & 0xffff);
        }
        acc = acc.wrapping_add(i as u64);
    }
    acc
}

fn build(ops: &[u64], strdata: &[u64]) -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.fresh_label("top");
    let class_b = b.fresh_label("class_b");
    let class_c = b.fresh_label("class_c");
    let class_d = b.fresh_label("class_d");
    let join = b.fresh_label("join");

    b.li(Reg::R14, OPS as i64);
    b.li(Reg::R15, STR as i64);
    b.li(Reg::R21, 0); // accumulator
    b.li(Reg::R1, 0);
    b.li(Reg::R2, ops.len() as i64);

    b.bind(top);
    b.shli(Reg::R5, Reg::R1, 3);
    b.add(Reg::R5, Reg::R14, Reg::R5);
    b.ld(Reg::R6, Reg::R5, 0); // w
    b.andi(Reg::R7, Reg::R6, 15); // op class
    b.li(Reg::R8, 14);
    b.bge(Reg::R7, Reg::R8, class_d); // expensive: 2 of 16
    b.li(Reg::R8, 8);
    b.bge(Reg::R7, Reg::R8, class_b);
    b.li(Reg::R8, 4);
    b.bge(Reg::R7, Reg::R8, class_c);
    // class a: trivially cheap
    b.andi(Reg::R9, Reg::R6, 0xffff);
    b.add(Reg::R21, Reg::R21, Reg::R9);
    b.j(join);
    b.bind(class_b); // cheap with one memory touch
    b.shri(Reg::R9, Reg::R6, 4);
    b.add(Reg::R21, Reg::R21, Reg::R9);
    b.andi(Reg::R9, Reg::R9, STR_MASK as i64);
    b.shli(Reg::R9, Reg::R9, 3);
    b.add(Reg::R9, Reg::R15, Reg::R9);
    b.ld(Reg::R9, Reg::R9, 0);
    b.add(Reg::R21, Reg::R21, Reg::R9);
    b.j(join);
    b.bind(class_c); // cheap ALU
    b.muli(Reg::R9, Reg::R6, 5);
    b.xor(Reg::R21, Reg::R21, Reg::R9);
    b.j(join);
    b.bind(class_d); // the rare, expensive opcode
    b.mv(Reg::R3, Reg::R6);
    b.call("hashstr");
    b.add(Reg::R21, Reg::R21, Reg::R4);
    b.bind(join);
    b.add(Reg::R21, Reg::R21, Reg::R1);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.mv(Reg::R10, Reg::R21);
    b.halt();

    // hashstr: arg w in r3, result in r4. djb2-style hash with a
    // data-dependent trip count.
    b.begin_func("hashstr");
    let looph = b.fresh_label("loop");
    b.shri(Reg::R5, Reg::R3, 4);
    b.andi(Reg::R5, Reg::R5, 63);
    b.addi(Reg::R5, Reg::R5, 24); // len
    b.shri(Reg::R6, Reg::R3, 10);
    b.andi(Reg::R6, Reg::R6, STR_MASK as i64); // idx0
    b.li(Reg::R4, 5381);
    b.li(Reg::R7, 0); // t
    b.bind(looph);
    b.add(Reg::R8, Reg::R6, Reg::R7);
    b.andi(Reg::R8, Reg::R8, STR_MASK as i64);
    b.shli(Reg::R8, Reg::R8, 3);
    b.add(Reg::R8, Reg::R15, Reg::R8);
    b.ld(Reg::R8, Reg::R8, 0);
    b.muli(Reg::R4, Reg::R4, 33);
    b.add(Reg::R4, Reg::R4, Reg::R8);
    b.addi(Reg::R7, Reg::R7, 1);
    b.blt(Reg::R7, Reg::R5, looph);
    b.ret();
    b.end_func();

    b.data_block(OPS, ops);
    b.data_block(STR, strdata);
    b.build().expect("perl program is valid")
}

/// Builds the `perl` workload at the given scale.
pub fn perl(scale: Scale) -> Workload {
    perl_with_input(scale, InputSet::Train)
}

/// As [`perl`], with an explicit input set (see
/// [`InputSet`]).
pub fn perl_with_input(scale: Scale, input: InputSet) -> Workload {
    let n = input.work(ops_count(scale) as u64) as usize;
    let ops = random_words(SEED_OPS ^ input.salt(), n);
    let strdata = random_words(SEED_STR ^ input.salt(), (STR_MASK + 1) as usize);
    let expected = reference(&ops, &strdata);
    let program = build(&ops, &strdata);
    Workload {
        name: "perl",
        program,
        expected_checksum: expected,
        step_budget: (n as u64 * 80 + 10_000) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_trace::Trace;

    #[test]
    fn emulated_checksum_matches_reference() {
        let w = perl(Scale::Tiny);
        let trace = Trace::generate(w.program.clone(), w.step_budget).unwrap();
        assert_eq!(trace.final_reg(Reg::R10), w.expected_checksum);
    }

    #[test]
    fn expensive_opcodes_are_rare() {
        let ops = random_words(SEED_OPS, 4096);
        let expensive = ops.iter().filter(|&&w| w & 15 >= 14).count();
        let frac = expensive as f64 / 4096.0;
        assert!(frac > 0.08 && frac < 0.18, "expensive fraction {frac}");
    }

    #[test]
    fn hashstr_trip_counts_vary() {
        let strdata = random_words(SEED_STR, 256);
        // Different encodings yield different lengths, hence different work.
        assert_ne!(hashstr(&strdata, 0), hashstr(&strdata, 63 << 4));
    }
}
