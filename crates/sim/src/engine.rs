//! The trace-driven simulation engine.
//!
//! # Model
//!
//! The sequential dynamic trace is the oracle. Every committed thread owns a
//! contiguous *window* of the trace; windows are created by spawns (a window
//! starts at the next dynamic occurrence of the pair's CQIP) and always
//! partition the trace exactly, so policies change timing, never results.
//!
//! Threads are processed in speculation (= program) order. Because every
//! data dependence points backwards in the trace, one forward pass computes
//! per-instruction completion times with full knowledge of producer timing,
//! while per-thread-unit state (gshare, L1 cache, functional units) is
//! reused in the same order real hardware would observe.
//!
//! Deliberate simplifications, kept because they preserve the paper's
//! trends (see DESIGN.md §6):
//!
//! * A memory-dependence violation delays and restarts the offending
//!   thread at the violating load (selective squash) rather than rolling
//!   back the whole unit.
//! * Mispredicted live-ins stall their consumers until the producer
//!   forwards the value, modelling the revalidation cost as dependence
//!   stalls.
//! * Spawns the hardware would discover to be doomed (their CQIP never
//!   recurs) occupy a thread unit until their spawner commits, then squash.
//!
//! # Layout
//!
//! The hot state lives in flat arenas / structure-of-arrays with dense
//! index handles (DESIGN.md §13): per-pair runtime counters in a
//! [`PairArena`] addressed by `PairId` (interned once, in sorted key
//! order), spawn candidates and CQIP occurrences in CSR offset+value
//! tables, per-thread-unit issue ports and functional units in flat
//! columns, and per-static-instruction facts predecoded into a [`PreInst`]
//! table so the cycle loop never interrogates the `Inst` enum.

use specmt_isa::{FuClass, Pc};
use specmt_obs::{Event, EventSink, FaultKind, GateReason, MetricsRegistry, SquashReason};
use specmt_predict::{Gshare, PredKey, SpawnConfidence, ValuePredictor, ValuePredictorKind};
use specmt_spawn::{AdaptiveState, SpawnTable};
use specmt_trace::{DepGraph, Trace, NO_PRODUCER};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::min_index;
use crate::faults::FaultInjector;
use crate::{L1Cache, SimConfig, SimError, SimResult};

/// Dense handle into the [`PairArena`] columns.
type PairId = u32;

/// Per-static-instruction facts, predecoded once so the per-dynamic-
/// instruction loop reads one flat table entry instead of interrogating
/// the `Inst` enum (`dst`/`srcs`/`fu_class`/`is_*` calls per instruction).
#[derive(Debug, Clone, Copy)]
struct PreInst {
    flags: u8,
    /// Source register index per operand slot (`NO_SRC` = absent or the
    /// hardwired zero register, which never has a producer).
    src: [u8; 2],
    /// Functional-unit class index (into the `fu_*` layout tables).
    class: u8,
    /// Result latency of that class.
    latency: u8,
}

const F_WRITES_REG: u8 = 1;
const F_LOAD: u8 = 1 << 1;
const F_STORE: u8 = 1 << 2;
const F_COND_BRANCH: u8 = 1 << 3;
/// Control flow that is not a conditional branch (jump/call/ret).
const F_CONTROL: u8 = 1 << 4;
/// The pc is a spawning point *and* the config has units to spawn into.
const F_SPAWN: u8 = 1 << 5;
const NO_SRC: u8 = u8::MAX;

/// SoA arena of per-pair dynamic state, indexed by [`PairId`].
///
/// Ids are interned once at engine construction in sorted `(sp, cqip)`
/// order — exactly the iteration order of the `BTreeMap<(u32, u32),
/// PairRuntime>` this replaces — so every scan over the arena (the
/// minimum-size removal pick in particular) keeps its deterministic visit
/// order by construction.
#[derive(Debug, Default)]
struct PairArena {
    /// Sorted, deduplicated `(sp, cqip)` keys: the interning table.
    keys: Vec<(u32, u32)>,
    removed: Vec<bool>,
    /// Cycle of the most recent removal (for reinstatement).
    removed_at: Vec<u64>,
    alone_count: Vec<u32>,
    size_samples: Vec<u32>,
    size_sum: Vec<u64>,
    /// Samples that were squashed spawns (size zero).
    size_zeros: Vec<u32>,
}

impl PairArena {
    fn new(table: &SpawnTable) -> PairArena {
        let mut keys: Vec<(u32, u32)> = table.iter().map(|p| (p.sp.0, p.cqip.0)).collect();
        keys.sort_unstable();
        keys.dedup();
        let n = keys.len();
        PairArena {
            keys,
            removed: vec![false; n],
            removed_at: vec![0; n],
            alone_count: vec![0; n],
            size_samples: vec![0; n],
            size_sum: vec![0; n],
            size_zeros: vec![0; n],
        }
    }

    fn id_of(&self, key: (u32, u32)) -> Option<PairId> {
        self.keys.binary_search(&key).ok().map(|i| i as PairId)
    }
}

/// A spawned-but-doomed thread: its CQIP never recurs, so it burns a thread
/// unit until its spawner joins and the mismatch is discovered.
#[derive(Debug, Clone, Copy)]
struct DoomedChild {
    /// Per-run thread id (for the event stream).
    id: u64,
    tu: usize,
    spawn_time: u64,
    /// Dense CQIP index of the pair's CQIP (for the busy-count column).
    cd: u32,
    /// The pair that created it, charged with a zero-size thread by the
    /// minimum-size policy.
    pair: PairId,
    /// Whether the fault injector, not control misspeculation, doomed it.
    fault: bool,
}

/// An active thread awaiting processing.
#[derive(Debug)]
struct PendingThread {
    /// Per-run thread id (root = 0; for the event stream).
    id: u64,
    /// First dynamic instruction of the window.
    start: usize,
    /// Cycle the spawn fired.
    spawn_time: u64,
    /// Cycle the thread may fetch its first instruction
    /// (`spawn_time + 1 + init_overhead`).
    init_done: u64,
    /// Assigned thread unit.
    tu: usize,
    /// The pair that spawned it (`None` for the root).
    pair: Option<PairId>,
    /// Dense CQIP index of the window's starting CQIP (`u32::MAX` for the
    /// root, whose start is not a spawned CQIP and never blocks one).
    cd: u32,
}

/// Committed threads observed per pair before the minimum-size policy
/// judges the pair's *average* size. Interleaved spawning legitimately cuts
/// individual threads short (paper Figure 7a), so single observations would
/// remove every pair.
const MIN_SIZE_SAMPLES: u32 = 8;

/// Number of functional-unit classes (the `fu_*` layout tables are fixed
/// arrays of this size).
const NUM_FU_CLASSES: usize = FuClass::ALL.len();

/// The trace-driven Clustered Speculative Multithreaded Processor model.
///
/// Construct with [`Simulator::new`] (no spawning — the superscalar
/// baseline) or [`Simulator::with_table`], then call [`Simulator::run`].
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Simulator<'a> {
    trace: &'a Trace,
    deps: Arc<DepGraph>,
    config: SimConfig,
    table: SpawnTable,
    /// `Some` when [`Simulator::with_batch_slots`] overrode the batch
    /// capacity, which also disables the short-window scalar drain so the
    /// pipeline is exercised at every seam.
    batch_slots: Option<usize>,
}

impl<'a> Simulator<'a> {
    /// A simulator with no spawning pairs: execution is single-threaded
    /// regardless of the unit count.
    pub fn new(trace: &'a Trace, config: SimConfig) -> Simulator<'a> {
        Simulator::with_table(trace, config, &SpawnTable::empty())
    }

    /// A simulator driven by the given spawn table (cloned: tables are
    /// small relative to traces).
    pub fn with_table(trace: &'a Trace, config: SimConfig, table: &SpawnTable) -> Simulator<'a> {
        Simulator::with_deps(trace, Arc::new(DepGraph::build(trace)), config, table)
    }

    /// As [`Simulator::with_table`], reusing a prebuilt dependence graph.
    ///
    /// The graph is a pure function of the trace, so callers running many
    /// configurations or tables over one trace (parameter sweeps, the
    /// figure builders) build it once and share it instead of paying the
    /// full-trace analysis on every run.
    ///
    /// The graph MUST have been built from `trace`; a mismatched graph
    /// makes the run meaningless (producer indices point at the wrong
    /// instructions) and will typically fail the engine's post-run audit.
    pub fn with_deps(
        trace: &'a Trace,
        deps: Arc<DepGraph>,
        config: SimConfig,
        table: &SpawnTable,
    ) -> Simulator<'a> {
        Simulator {
            trace,
            deps,
            config,
            table: table.clone(),
            batch_slots: None,
        }
    }

    /// Overrides the windowed engine's batch capacity and disables the
    /// short-window scalar drain (`BATCH_DRAIN_MIN`). Test-only surface:
    /// shrinking the batch to 1–3 slots forces a pass seam between (almost)
    /// every pair of instructions, which is how the differential suites get
    /// seam coverage everywhere instead of every `BATCH_SLOTS` slots — and
    /// suppressing the drain keeps those seams on the batched path however
    /// short the window.
    #[doc(hidden)]
    #[must_use]
    pub fn with_batch_slots(mut self, slots: usize) -> Self {
        self.batch_slots = Some(slots.max(1));
        self
    }

    /// Runs the simulation to completion and returns aggregate statistics.
    ///
    /// The configuration (including any fault plan) is validated first, and
    /// the engine audits its hard invariants after the last commit: the
    /// committed windows must partition the trace exactly, every thread unit
    /// must be free, and the thread statistics must balance. Fault injection
    /// perturbs timing and policy only, so the audit holds under any valid
    /// [`FaultPlan`](crate::FaultPlan).
    ///
    /// If [`SimConfig::observe`] is set, the returned
    /// [`SimResult::metrics`] carries a [`Metrics`](specmt_obs::Metrics)
    /// snapshot aggregated from the run's event stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] / [`SimError::InvalidFaultPlan`]
    /// without simulating, or an audit variant ([`SimError::TracePartition`],
    /// [`SimError::CommitMismatch`], [`SimError::ThreadUnitLeak`],
    /// [`SimError::StatsConservation`], [`SimError::BrokenInvariant`]) if the
    /// model's correctness invariants do not survive the run.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.config.validate()?;
        Engine::new(self, None).run()
    }

    /// As [`Simulator::run`], additionally streaming every lifecycle
    /// [`Event`] into `sink` as it happens. Timing and results are
    /// bit-identical to an unobserved run: emission never feeds back into
    /// the model (a tested invariant).
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_with_sink(self, sink: &mut dyn EventSink) -> Result<SimResult, SimError> {
        self.config.validate()?;
        Engine::new(self, Some(sink)).run()
    }

    /// As [`Simulator::run`], but forcing the instruction-at-a-time
    /// *reference* path for every window instead of the batched
    /// pass-per-section pipeline (DESIGN.md §16). The two are bit-identical
    /// by contract; the reference path is the executable specification the
    /// windowed engine is differential-tested against, in the same spirit
    /// as the reaching analysis's naive reference.
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_reference(self) -> Result<SimResult, SimError> {
        self.config.validate()?;
        let mut e = Engine::new(self, None);
        e.force_scalar = true;
        e.run()
    }

    /// As [`Simulator::run_reference`], streaming events into `sink` (see
    /// [`Simulator::run_with_sink`]).
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_reference_with_sink(self, sink: &mut dyn EventSink) -> Result<SimResult, SimError> {
        self.config.validate()?;
        let mut e = Engine::new(self, Some(sink));
        e.force_scalar = true;
        e.run()
    }

    /// As [`Simulator::run`], additionally measuring the wall-clock time
    /// spent in each section pass of the windowed engine. The
    /// instrumentation lives only behind this entry point, so ordinary runs
    /// pay nothing for it; the simulation result stays bit-identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_timed(self) -> Result<(SimResult, PassTimes), SimError> {
        self.config.validate()?;
        let mut times = PassTimes::default();
        let mut e = Engine::new(self, None);
        e.pass_times = Some(&mut times);
        let result = e.run()?;
        Ok((result, times))
    }
}

impl<'a> Simulator<'a> {
    fn into_parts(self) -> (&'a Trace, Arc<DepGraph>, SimConfig, SpawnTable, Option<usize>) {
        (self.trace, self.deps, self.config, self.table, self.batch_slots)
    }
}

/// Capacity of the window batch buffer (in dynamic instructions): the
/// decode pass fills at most this many slots before the section passes
/// sweep them. Sized so all columns together (~30 bytes/slot) stay
/// L1-resident while still amortising per-batch setup over long windows.
const BATCH_SLOTS: usize = 256;

/// Window remainders shorter than this drain through the scalar step
/// instead of the section passes: below it the packed-record round trip
/// (one `Slot` written then re-read per slot) dominates what a batch can
/// amortise, and the fused scalar step is measurably faster (EXPERIMENTS.md
/// §window-pipeline). Suite-realistic speculative windows average ~a dozen
/// slots, so in production the pipeline engages on the long windows —
/// sparse spawn tables, superscalar baselines — where batching is
/// architecturally meaningful. [`Simulator::with_batch_slots`] sets the
/// bound to zero so differential suites cover the batched path at every
/// window length.
const BATCH_DRAIN_MIN: usize = 64;

/// Wall-clock nanoseconds spent in each pass of the windowed engine,
/// reported by [`Simulator::run_timed`]. `scalar_ns` covers the
/// instruction-at-a-time slow path (spawn slots under adaptive policies,
/// and every slot when a fault plan is active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassTimes {
    /// Fill pass: decode, operand readiness (producer resolution + live-in
    /// prediction), branch prediction, and cache touches/probes, fused
    /// into one sweep that writes the packed per-slot records.
    pub fill_ns: u64,
    /// Fused timing pass (fetch hazards, issue tournaments, write-back).
    pub timing_ns: u64,
    /// Instruction-at-a-time slow path (spawn slots under adaptive
    /// policies; whole windows under fault plans or `run_reference`).
    pub scalar_ns: u64,
    /// Number of batches decoded.
    pub batches: u64,
    /// Number of slots drained through the scalar path.
    pub scalar_steps: u64,
}

/// One window-buffer slot: every pre-timing fact the timing pass needs,
/// packed into 24 bytes so a slot costs one cache-line touch instead of a
/// gather across parallel columns.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Readiness lower bound from producers outside the window (live-in
    /// prediction / forwarding).
    avail: u64,
    /// Dynamic index whose completion bounds operand 0/1 readiness: the
    /// in-window producer, or the slot's *own* dynamic index as a zero
    /// sentinel (`complete[own]` is still unwritten — zero — when the
    /// slot's readiness is read, so the max is branch-free).
    q0: u32,
    q1: u32,
    /// Packed `flags | class << 8 | lat << 16 | meta << 24`. Stores
    /// override `lat` to 1 (`done = issue + 1`), which makes them plain
    /// slots in the timing pass. `meta`: loads get bit0 = cache hit;
    /// conditional branches get bit0 = taken, bit1 = predicted correctly.
    code: u32,
}

/// The window batch buffer: one fill pass populates the packed slot
/// records and the event worklist, then the timing pass sweeps them
/// (DESIGN.md §16).
#[derive(Debug, Default)]
struct WindowBuf {
    slots: Vec<Slot>,
    /// Slots needing non-plain timing treatment (spawn / load /
    /// conditional branch / other control), ascending — the timing pass
    /// runs branch-free plain-slot stretches between them.
    ev_slot: Vec<u32>,
}

/// Per-window execution state shared by the batched section passes and the
/// scalar (reference / slow-path) stepper: everything that was a local
/// variable of the old instruction-at-a-time window loop.
struct WinState<'a> {
    /// The trace's static-pc column, hoisted once per window: reads through
    /// a window-local field cannot alias the `&mut self` calls inside the
    /// step (spawns, caches), so the per-instruction loads stay hoisted.
    pcs: &'a [u32],
    /// Config-derived loop constants, hoisted for the same reason.
    rob: usize,
    renames: usize,
    issue_width: usize,
    fetch_width: u32,
    rob_i: usize,
    rob_full: bool,
    writer_i: usize,
    writer_full: bool,
    last_commit: u64,
    fetch_cycle: u64,
    /// Fetch slots consumed in the cycle `fetch_cycle`.
    slots: u32,
    /// Whether the ROB / rename-ring structural hazards can bite at all:
    /// false when the window is shorter than both rings (they reset empty
    /// each window and can then never fill), eliding every ring store and
    /// full-check. The window can only shrink after this is computed, so
    /// the bound stays valid.
    rings: bool,
    /// Constant live-in readiness when the perfect value predictor makes
    /// every out-of-window producer equivalent (`Some(init_done)`).
    live_const: Option<u64>,
    /// Whether the unrolled 4-wide issue tournament applies (issue width 4,
    /// every FU class fielding at most two units).
    fast_units: bool,
    /// Base of this unit's issue-port / FU slices in the flat columns.
    pbase: usize,
    fbase_tu: usize,
    /// Window-local copies of this unit's port and FU availability columns
    /// for the common geometry: nothing else touched inside the window
    /// (spawns, caches, predictors) reads them, and locals keep the
    /// per-instruction tournaments in registers instead of memory. Written
    /// back by `finish_window`.
    ports4: [u64; 4],
    fu16: [u64; 16],
    /// Window end: the start of the next more-speculative thread (or the
    /// trace end). Only a spawn (a scalar step) can move it.
    end: usize,
}

struct Engine<'a, 's> {
    trace: &'a Trace,
    deps: Arc<DepGraph>,
    cfg: SimConfig,
    /// Predecoded per-static-pc instruction facts.
    pre: Vec<PreInst>,
    /// Spawn-candidate CSR: candidates of static pc `p` occupy
    /// `cand_pair[cand_offsets[p]..cand_offsets[p + 1]]`, in the spawn
    /// table's rank order (score-descending, the pick order).
    cand_offsets: Vec<u32>,
    /// Interned pair id per candidate.
    cand_pair: Vec<PairId>,
    /// Dense CQIP index (into the occurrence CSR) per candidate.
    cand_cqip: Vec<u32>,
    /// Per-pair dynamic state, indexed by `PairId`.
    pairs: PairArena,
    /// CQIP occurrence CSR: the dynamic indices where dense CQIP `c`
    /// occurs are `occ_values[occ_offsets[c]..occ_offsets[c + 1]]`,
    /// ascending (built in one trace pass at construction).
    occ_offsets: Vec<u32>,
    occ_values: Vec<u32>,
    /// Per-CQIP cursor into `occ_values`: the first occurrence not yet
    /// known to be at or before the current spawn point. Spawn attempts
    /// arrive at globally non-decreasing dynamic indices (windows are
    /// processed in program order), so each cursor only ever advances —
    /// the whole run's next-occurrence searches cost one amortised pass.
    occ_cursor: Vec<u32>,
    /// Decode-time peek cursors into `occ_values`, one per dense CQIP,
    /// advanced exactly like `occ_cursor` but by the decode pass: capping a
    /// batch at the earliest occurrence any contained spawn slot's
    /// candidates could chain a child at guarantees a mid-batch spawn
    /// success never shrinks the window into slots the section passes have
    /// already processed. Kept separate from `occ_cursor` so peeks at
    /// fast-declined spawn slots (which never reach `try_spawn`) still
    /// amortise to one pass over the occurrence list.
    occ_peek: Vec<u32>,
    /// Active (chained or doomed-this-window) thread count per dense CQIP,
    /// replacing a chain scan on every spawn attempt.
    cqip_active: Vec<u32>,
    /// Completion time of every dynamic instruction processed so far.
    ///
    /// Stored as `u32`: this is the hottest randomly-indexed table
    /// (producer lookups jump arbitrarily far back), so halving it doubles
    /// the fraction that stays cache-resident. Completion times are far
    /// below 2^32 for any trace the step budget admits (a debug assertion
    /// guards the narrowing).
    complete: Vec<u32>,
    // --- Hot per-thread-unit columns, scanned every cycle ---------------
    tu_busy: Vec<bool>,
    tu_free_at: Vec<u64>,
    /// Bitmask of non-busy units (bit `i` ⟺ `!tu_busy[i]`), valid only
    /// when the machine has at most 64 units: free-unit searches iterate
    /// set bits instead of scanning every unit. Kept in sync with
    /// `tu_busy` by `tu_claim`/`tu_release`.
    tu_free_mask: u64,
    /// Number of non-busy units, and the minimum `tu_free_at` over them
    /// (`u64::MAX` when none): a spawn attempt that cannot possibly find a
    /// unit declines on two compares without leaving the cycle loop.
    tu_free_count: usize,
    tu_min_free: u64,
    /// Whether that two-compare decline is exact: fault injection draws
    /// RNG per attempt and pair reinstatement can mutate state on any
    /// attempt, so either disables the shortcut.
    fast_decline: bool,
    /// Next-free cycle per issue port: unit `u`'s ports are
    /// `ports[u * issue_width..][..issue_width]`.
    ports: Vec<u64>,
    /// Next-free cycle per functional unit: unit `u`'s class-`c` FUs are
    /// `fu_free[u * fu_total + fu_offset[c]..][..fu_count[c]]`.
    fu_free: Vec<u64>,
    fu_offset: [usize; NUM_FU_CLASSES],
    fu_count: [usize; NUM_FU_CLASSES],
    /// Occupancy increment per issue: 1 for pipelined classes, the full
    /// latency for non-pipelined ones.
    fu_incr: [u64; NUM_FU_CLASSES],
    fu_total: usize,
    // --- Cold per-thread-unit state (touched per branch / memory op) ----
    gshares: Vec<Gshare>,
    /// Per-unit branch-confidence estimators, updated alongside the
    /// gshares but only when the confidence gate is active.
    confs: Vec<SpawnConfidence>,
    /// Runtime pair scoreboard (the `scoreboard` adaptive scheme); `None`
    /// unless the spawn table's policy sets a demote threshold.
    scoreboard: Option<AdaptiveState>,
    /// Confidence-gate threshold (the `conf-gated` adaptive scheme); zero
    /// disables the gate entirely.
    conf_threshold: u32,
    caches: Vec<L1Cache>,
    predictor: Option<Box<dyn ValuePredictor>>,
    /// Active speculative threads in program order (excluding the one being
    /// processed).
    chain: std::collections::VecDeque<PendingThread>,
    // --- Reusable scratch (hoisted out of the cycle loop) ---------------
    /// ROB commit ring; entries are only read at positions already written
    /// this window (`local_i >= rob`), so it is never re-zeroed.
    rob_ring: Vec<u64>,
    /// Rename-register commit ring; same never-re-zeroed argument.
    writer_ring: Vec<u64>,
    /// Doomed children of the window being processed.
    doomed: Vec<DoomedChild>,
    /// Live-in readiness memo: cached time per architectural register,
    /// gated by the `live_in_valid` bitmask. Persistent scratch — a window
    /// resets only the mask (one store), never the value array, so stale
    /// values are present but unreadable.
    live_in_vals: [u64; specmt_isa::NUM_REGS],
    live_in_valid: u64,
    /// Successor spawn times, collected per retire by the removal policy.
    succ_spawns: Vec<u64>,
    /// Buffered store-touch addresses, flushed to the unit's cache as a
    /// run before the next load and at window end.
    touch_run: Vec<u64>,
    /// The window batch buffer's SoA columns (capacity reused across
    /// batches and windows; taken with `mem::take` while passes run).
    buf: WindowBuf,
    /// Window event scratch: the batched timing pass pushes here and
    /// `flush_obs` drains at batch boundaries, so observed streams keep
    /// scalar order without an emit call per event in the hot loop.
    obs_buf: Vec<Event>,
    /// Route every window through the scalar reference path
    /// ([`Simulator::run_reference`]).
    force_scalar: bool,
    /// Batch capacity (normally [`BATCH_SLOTS`]; tests shrink it to force
    /// seams, see [`Simulator::with_batch_slots`]).
    batch_slots: usize,
    /// Short-window scalar-drain bound ([`BATCH_DRAIN_MIN`], or zero when
    /// the batch capacity was overridden).
    drain_min: usize,
    /// Dynamic indices of every spawn slot (static pcs with `F_SPAWN`),
    /// ascending: the production dispatch batches the spawn-free stretches
    /// between them and drains the slots themselves scalar.
    sp_pos: Vec<u32>,
    /// Monotone cursor into `sp_pos` (windows are processed in program
    /// order, so stretch lookups amortise to one pass over the list).
    sp_cursor: usize,
    /// Per-pass wall-clock accumulation ([`Simulator::run_timed`] only).
    pass_times: Option<&'s mut PassTimes>,
    faults: Option<FaultInjector>,
    result: SimResult,
    /// External event consumer (from [`Simulator::run_with_sink`]).
    sink: Option<&'s mut dyn EventSink>,
    /// Built-in metrics aggregation (from [`SimConfig::observe`]).
    metrics: Option<MetricsRegistry>,
    /// Cached `sink.is_some() || metrics.is_some()`: the single branch the
    /// disabled path pays per emission site.
    observing: bool,
    /// Next per-run thread id (root took 0).
    next_thread_id: u64,
}

impl<'a, 's> Engine<'a, 's> {
    fn new(sim: Simulator<'a>, sink: Option<&'s mut dyn EventSink>) -> Engine<'a, 's> {
        let (trace, deps, cfg, table, batch_slots) = sim.into_parts();
        let program = trace.program();
        let program_len = program.len();

        // Predecode every static instruction.
        let mut pre: Vec<PreInst> = Vec::with_capacity(program_len);
        for inst in program.insts() {
            let mut flags = 0u8;
            if inst.dst().is_some_and(|d| !d.is_zero()) {
                flags |= F_WRITES_REG;
            }
            if inst.is_load() {
                flags |= F_LOAD;
            }
            if inst.is_store() {
                flags |= F_STORE;
            }
            if inst.is_cond_branch() {
                flags |= F_COND_BRANCH;
            } else if inst.is_control() {
                flags |= F_CONTROL;
            }
            let mut src = [NO_SRC; 2];
            for (s, r) in inst.srcs().into_iter().enumerate() {
                if let Some(r) = r {
                    if !r.is_zero() {
                        src[s] = r.index() as u8;
                    }
                }
            }
            let class = inst.fu_class();
            pre.push(PreInst {
                flags,
                src,
                class: class.index() as u8,
                latency: class.latency() as u8,
            });
        }

        // Intern the pairs and flatten the per-pc candidate lists into a
        // CSR, resolving each candidate's pair id and dense CQIP index once.
        let pairs = PairArena::new(&table);
        // The online spawning policy rides on the table; either half being
        // active disables the fast-decline shortcut (a gated decline must
        // be counted and emitted, and demotion state can change on any
        // retire).
        let adaptive = table.adaptive().copied().unwrap_or_default();
        let scoreboard = adaptive
            .demote_threshold
            .map(|thr| AdaptiveState::new(pairs.keys.len(), thr));
        let mut cqip_pcs: Vec<u32> = table.iter().map(|p| p.cqip.0).collect();
        cqip_pcs.sort_unstable();
        cqip_pcs.dedup();
        let spawn_enabled = cfg.thread_units > 1;
        let mut cand_offsets = vec![0u32; program_len + 1];
        let mut cand_pair: Vec<PairId> = Vec::new();
        let mut cand_cqip: Vec<u32> = Vec::new();
        for pc in 0..program_len {
            for cand in table.candidates(Pc(pc as u32)) {
                // Both lookups succeed by construction (the arena and the
                // dense CQIP table were built from this same table).
                let (Some(pid), Ok(cd)) = (
                    pairs.id_of((cand.sp.0, cand.cqip.0)),
                    cqip_pcs.binary_search(&cand.cqip.0),
                ) else {
                    continue;
                };
                cand_pair.push(pid);
                cand_cqip.push(cd as u32);
            }
            cand_offsets[pc + 1] = cand_pair.len() as u32;
            if spawn_enabled && cand_offsets[pc + 1] > cand_offsets[pc] {
                pre[pc].flags |= F_SPAWN;
            }
        }

        // CQIP occurrence CSR: one scan of the trace collects the (dense
        // CQIP, dynamic index) hits into a compact list — typically a small
        // fraction of the trace — and a counting sort over that list builds
        // the offsets and per-CQIP ascending values.
        let mut occ_offsets = vec![0u32; cqip_pcs.len() + 1];
        let mut occ_values: Vec<u32> = Vec::new();
        if !cqip_pcs.is_empty() {
            let mut dense = vec![u32::MAX; program_len];
            for (i, &pc) in cqip_pcs.iter().enumerate() {
                // A table may name a CQIP pc beyond the program; it simply
                // never occurs, so its occurrence range stays empty.
                if let Some(d) = dense.get_mut(pc as usize) {
                    *d = i as u32;
                }
            }
            let mut hits: Vec<(u32, u32)> = Vec::new();
            for (k, &pc) in trace.pcs().iter().enumerate() {
                let d = dense[pc as usize];
                if d != u32::MAX {
                    hits.push((d, k as u32));
                }
            }
            for &(d, _) in &hits {
                occ_offsets[d as usize + 1] += 1;
            }
            for i in 1..occ_offsets.len() {
                occ_offsets[i] += occ_offsets[i - 1];
            }
            occ_values = vec![0u32; hits.len()];
            let mut cursor = occ_offsets.clone();
            for &(d, k) in &hits {
                occ_values[cursor[d as usize] as usize] = k;
                cursor[d as usize] += 1;
            }
        }

        // Spawn-slot positions, for the production dispatch's spawn-free
        // stretch lookups (one trace pass; empty tables yield no slots).
        // Dynamic indices of spawn-flagged slots, terminated by a
        // trace-length sentinel: the cursor scan in the window dispatch
        // then needs no bounds handling (no dynamic index ever reaches the
        // sentinel, so the scan always stops at or before it).
        let mut sp_pos: Vec<u32> = trace
            .pcs()
            .iter()
            .enumerate()
            .filter(|&(_, &pc)| pre[pc as usize].flags & F_SPAWN != 0)
            .map(|(i, _)| i as u32)
            .collect();
        sp_pos.push(trace.len() as u32);

        // Functional-unit layout: identical for every thread unit.
        let mut fu_offset = [0usize; NUM_FU_CLASSES];
        let mut fu_count = [0usize; NUM_FU_CLASSES];
        let mut fu_incr = [0u64; NUM_FU_CLASSES];
        let mut fu_total = 0usize;
        for c in FuClass::ALL {
            let i = c.index();
            fu_offset[i] = fu_total;
            fu_count[i] = c.units();
            fu_incr[i] = if c.pipelined() { 1 } else { c.latency() };
            fu_total += c.units();
        }

        let n_tus = cfg.thread_units;
        // Proven bounds for the compact cache tag store: each dynamic
        // instruction makes at most one access or touch on one unit.
        let max_block = deps.max_addr() / cfg.cache.block_bytes.max(1) as u64;
        let max_accesses = trace.len() as u64 + 1;
        let predictor = cfg.value_predictor.build(cfg.predictor_budget);
        let faults = cfg
            .faults
            .filter(|p| p.is_active())
            .map(FaultInjector::new);
        let metrics = cfg.observe.then(MetricsRegistry::new);
        let observing = sink.is_some() || metrics.is_some();
        let rob_ring = vec![0u64; cfg.rob_entries];
        let writer_ring = vec![0u64; cfg.phys_regs.saturating_sub(specmt_isa::NUM_REGS)];
        Engine {
            complete: vec![0; trace.len()],
            pre,
            cand_offsets,
            cand_pair,
            cand_cqip,
            pairs,
            occ_cursor: occ_offsets[..occ_offsets.len() - 1].to_vec(),
            occ_peek: occ_offsets[..occ_offsets.len() - 1].to_vec(),
            cqip_active: vec![0; occ_offsets.len() - 1],
            occ_offsets,
            occ_values,
            tu_busy: vec![false; n_tus],
            tu_free_at: vec![0; n_tus],
            tu_free_mask: if n_tus >= 64 {
                u64::MAX
            } else {
                (1u64 << n_tus) - 1
            },
            tu_free_count: n_tus,
            tu_min_free: 0,
            fast_decline: faults.is_none()
                && cfg.removal.and_then(|p| p.reinstate_after).is_none()
                && !adaptive.is_active(),
            ports: vec![0; n_tus * cfg.issue_width],
            fu_free: vec![0; n_tus * fu_total],
            fu_offset,
            fu_count,
            fu_incr,
            fu_total,
            gshares: (0..n_tus).map(|_| Gshare::new(cfg.gshare_bits)).collect(),
            confs: vec![SpawnConfidence::new(); n_tus],
            scoreboard,
            conf_threshold: u32::from(adaptive.confidence_threshold.unwrap_or(0)),
            caches: (0..n_tus)
                .map(|_| L1Cache::new_bounded(cfg.cache, max_block, max_accesses))
                .collect(),
            predictor,
            chain: std::collections::VecDeque::new(),
            rob_ring,
            writer_ring,
            doomed: Vec::new(),
            live_in_vals: [0; specmt_isa::NUM_REGS],
            live_in_valid: 0,
            succ_spawns: Vec::new(),
            touch_run: Vec::new(),
            buf: WindowBuf::default(),
            obs_buf: Vec::new(),
            force_scalar: false,
            batch_slots: batch_slots.unwrap_or(BATCH_SLOTS),
            drain_min: if batch_slots.is_some() {
                0
            } else {
                BATCH_DRAIN_MIN
            },
            sp_pos,
            sp_cursor: 0,
            pass_times: None,
            faults,
            result: SimResult::default(),
            sink,
            metrics,
            observing,
            next_thread_id: 1,
            trace,
            deps,
            cfg,
        }
    }

    /// Marks a unit free at `free_at`, folding it into the free-unit
    /// summary used by the spawn fast-decline check.
    #[inline]
    fn tu_release(&mut self, tu: usize, free_at: u64) {
        self.tu_busy[tu] = false;
        if tu < 64 {
            self.tu_free_mask |= 1 << tu;
        }
        self.tu_free_at[tu] = free_at;
        self.tu_free_count += 1;
        self.tu_min_free = self.tu_min_free.min(free_at);
    }

    /// Marks a unit busy and repairs the free-unit summary (a rescan only
    /// when the claimed unit may have carried the minimum).
    #[inline]
    fn tu_claim(&mut self, tu: usize) {
        self.tu_busy[tu] = true;
        if tu < 64 {
            self.tu_free_mask &= !(1 << tu);
        }
        self.tu_free_count -= 1;
        if self.tu_free_at[tu] <= self.tu_min_free {
            let mut m = u64::MAX;
            if self.tu_busy.len() <= 64 {
                let mut bits = self.tu_free_mask;
                while bits != 0 {
                    m = m.min(self.tu_free_at[bits.trailing_zeros() as usize]);
                    bits &= bits - 1;
                }
            } else {
                for i in 0..self.tu_busy.len() {
                    if !self.tu_busy[i] {
                        m = m.min(self.tu_free_at[i]);
                    }
                }
            }
            self.tu_min_free = m;
        }
    }

    /// Lowest-numbered unit that is free no later than cycle `f`, exactly
    /// the unit a linear scan of `tu_busy`/`tu_free_at` would pick.
    #[inline]
    fn tu_find_free(&self, f: u64) -> Option<usize> {
        if self.tu_busy.len() <= 64 {
            let mut bits = self.tu_free_mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                if self.tu_free_at[i] <= f {
                    return Some(i);
                }
                bits &= bits - 1;
            }
            None
        } else {
            (0..self.tu_busy.len()).find(|&i| !self.tu_busy[i] && self.tu_free_at[i] <= f)
        }
    }

    /// Fan one event out to the metrics registry and the external sink.
    /// Callers gate on `self.observing` so the disabled path never
    /// constructs the event.
    #[inline(never)]
    fn emit(&mut self, event: Event) {
        if let Some(m) = self.metrics.as_mut() {
            m.record(&event);
        }
        if let Some(s) = self.sink.as_mut() {
            s.record(&event);
        }
    }

    /// Freeze the metrics registry (if any) into the result.
    fn finish_metrics(&mut self) {
        if let Some(m) = self.metrics.take() {
            self.result.metrics = Some(m.snapshot());
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let n = self.trace.len();
        if n == 0 {
            self.finish_metrics();
            return Ok(self.result);
        }
        self.tu_claim(0);
        if self.observing {
            self.emit(Event::ThreadSpawned {
                thread: 0,
                unit: 0,
                cycle: 0,
                speculative: false,
            });
        }
        let mut next = Some(PendingThread {
            id: 0,
            start: 0,
            spawn_time: 0,
            init_done: 0,
            tu: 0,
            pair: None,
            cd: u32::MAX,
        });
        let mut prev_commit = 0u64;
        let mut processed_end = 0usize;

        while let Some(t) = next.take() {
            if t.start != processed_end {
                return Err(SimError::broken(format!(
                    "window starts at {} but the previous window ended at {processed_end}",
                    t.start
                )));
            }
            let (end, exec_done) = self.process_window(&t);
            let doomed = std::mem::take(&mut self.doomed);
            processed_end = end;
            let pred_commit = prev_commit;
            let commit_time = exec_done.max(prev_commit);
            prev_commit = commit_time;

            // Retire: free the unit, squash doomed children. A doomed
            // child's order violation is discovered when its spawner
            // *joins* (reaches the start of a different thread), so its
            // unit frees at the spawner's execution end, not its commit.
            self.tu_release(t.tu, commit_time);
            for d in &doomed {
                self.tu_release(d.tu, exec_done.max(d.spawn_time));
                self.cqip_active[d.cd as usize] -= 1;
                self.result.threads_squashed += 1;
            }
            if self.observing {
                for d in &doomed {
                    self.emit(Event::ThreadSquashed {
                        thread: d.id,
                        unit: d.tu as u32,
                        cycle: exec_done.max(d.spawn_time),
                        reason: if d.fault {
                            SquashReason::InjectedFault
                        } else {
                            SquashReason::ControlMisspeculation
                        },
                    });
                }
            }
            // Scoreboard feedback: every squash heats its pair's counter,
            // in the deterministic retire order of the doomed list.
            for d in &doomed {
                let newly = self
                    .scoreboard
                    .as_mut()
                    .is_some_and(|sb| sb.record_squash(d.pair as usize));
                if newly {
                    self.result.pairs_demoted += 1;
                    if self.observing {
                        let (sp, cqip) = self.pairs.keys[d.pair as usize];
                        self.emit(Event::PairDemoted {
                            thread: d.id,
                            unit: d.tu as u32,
                            cycle: exec_done.max(d.spawn_time),
                            sp,
                            cqip,
                        });
                    }
                }
            }

            let window_len = (end - t.start) as u64;
            self.result.record_thread_size(window_len);
            self.result.threads_committed += 1;
            self.result.committed_instructions += window_len;
            self.result.thread_size_sum += window_len;
            self.result.thread_lifetime_cycles += commit_time - t.spawn_time;
            self.result.cycles = commit_time;
            if self.observing {
                self.emit(Event::ThreadCommitted {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: commit_time,
                    spawn_cycle: t.spawn_time,
                    size: window_len,
                });
            }
            // Scoreboard feedback: a commit cools the pair's counter
            // (applied after this window's squashes, so a pair whose
            // children both squash and commit trends by the net balance).
            if let Some(pid) = t.pair {
                if let Some(sb) = self.scoreboard.as_mut() {
                    sb.record_commit(pid as usize);
                }
            }

            self.apply_dynamic_policies(&t, &doomed, exec_done, window_len, pred_commit);
            // Hand the (cleared-on-entry) buffer back for the next window.
            self.doomed = doomed;

            if let Some(head) = self.chain.pop_front() {
                // The thread now being processed no longer blocks spawns
                // at its CQIP (matching the old chain-membership check).
                self.cqip_active[head.cd as usize] -= 1;
                next = Some(head);
            }
        }

        self.audit(n, processed_end)?;
        for cache in &self.caches {
            let (h, m) = cache.stats();
            self.result.cache_hits += h;
            self.result.cache_misses += m;
        }
        self.finish_metrics();
        Ok(self.result)
    }

    /// The post-run invariant audit: committed windows partition the trace,
    /// the committed stream equals the sequential trace, no thread unit
    /// leaks, and the thread statistics balance.
    fn audit(&self, n: usize, processed_end: usize) -> Result<(), SimError> {
        if processed_end != n {
            return Err(SimError::TracePartition {
                expected: n,
                processed: processed_end,
            });
        }
        if self.result.committed_instructions != n as u64 {
            return Err(SimError::CommitMismatch {
                expected: n as u64,
                committed: self.result.committed_instructions,
            });
        }
        if self.result.thread_size_sum != self.result.committed_instructions {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "thread sizes sum to {} but {} instructions committed",
                    self.result.thread_size_sum, self.result.committed_instructions
                ),
            });
        }
        if let Some(unit) = self.tu_busy.iter().position(|&b| b) {
            return Err(SimError::ThreadUnitLeak { unit });
        }
        // Every successful spawn either committed or squashed; the root
        // thread committed without a spawn.
        let accounted = self.result.threads_committed + self.result.threads_squashed;
        if accounted != self.result.threads_spawned + 1 {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "{} spawned but {} committed + {} squashed",
                    self.result.threads_spawned,
                    self.result.threads_committed,
                    self.result.threads_squashed
                ),
            });
        }
        if self.result.value_hits > self.result.value_predictions
            || self.result.branch_hits > self.result.branch_predictions
        {
            return Err(SimError::StatsConservation {
                reason: "predictor hits exceed predictions".to_owned(),
            });
        }
        if self.result.spawns_gated > self.result.spawns_declined {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "{} gated spawns exceed {} declined spawns",
                    self.result.spawns_gated, self.result.spawns_declined
                ),
            });
        }
        if self.result.pairs_demoted != self.scoreboard.as_ref().map_or(0, AdaptiveState::demotions)
        {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "{} demotions counted but the scoreboard recorded {}",
                    self.result.pairs_demoted,
                    self.scoreboard.as_ref().map_or(0, AdaptiveState::demotions)
                ),
            });
        }
        Ok(())
    }

    /// Processes one thread's window; returns `(end, exec_done)` and leaves
    /// the window's doomed children in `self.doomed`.
    ///
    /// Dispatch: the batched pass-per-section pipeline (DESIGN.md §16) is
    /// the fast path; an active fault plan routes the whole window through
    /// the instruction-at-a-time reference path (fault rolls draw RNG per
    /// instruction, so batching would reorder the stream), as does
    /// [`Simulator::run_reference`].
    fn process_window(&mut self, t: &PendingThread) -> (usize, u64) {
        if self.force_scalar || self.faults.is_some() {
            self.process_window_scalar(t)
        } else {
            self.process_window_batched(t)
        }
    }

    /// The reference window loop: every slot through [`Engine::step_scalar`].
    fn process_window_scalar(&mut self, t: &PendingThread) -> (usize, u64) {
        let t0 = self.pass_times.is_some().then(Instant::now);
        let mut st = self.win_state(t);
        let mut k = t.start;
        while k < st.end {
            self.step_scalar(t, k, &mut st);
            k += 1;
        }
        self.finish_window(t, &st);
        if let Some(pt) = self.pass_times.as_deref_mut() {
            pt.scalar_steps += (k - t.start) as u64;
        }
        self.lap(t0, |pt| &mut pt.scalar_ns);
        (k, st.last_commit)
    }

    /// The windowed pipeline: decode up to [`BATCH_SLOTS`] consecutive
    /// slots into the window buffer's SoA columns, then sweep the batch
    /// with one pass per section — operand readiness, branch prediction,
    /// cache touches/probes, and the fused timing recurrence — each a tight
    /// loop with its section's state hot. When the exact fast-decline gate
    /// is available, spawn slots ride inside the batch as timing-pass
    /// events (the timing pass knows the slot's exact fetch cycle, and
    /// `try_spawn` then touches no state the other passes read); the decode
    /// pass caps each batch at the earliest dynamic index any contained
    /// spawn could chain a child at, so a mid-batch success only ever
    /// shrinks the window to at-or-beyond the batch end. Under adaptive
    /// policies (confidence gate, scoreboard, reinstatement) or fault
    /// plans, spawn slots instead bail to [`Engine::step_scalar`] and
    /// truncate the batch, so predictor/confidence state is exact at every
    /// gate read. Bit-identical to the scalar path by construction: within
    /// a batch no state change alters *which* instructions execute, and
    /// each pass replays its section's state mutations in slot order.
    fn process_window_batched(&mut self, t: &PendingThread) -> (usize, u64) {
        let mut st = self.win_state(t);
        let mut buf = std::mem::take(&mut self.buf);
        let timed = self.pass_times.is_some();
        let batch_spawns = self.fast_decline;
        let forced = self.drain_min == 0;
        let mut k = t.start;
        if !timed && !forced {
            // Production dispatch: batch only the spawn-free stretch ahead
            // of `k`, and only when it is long enough to repay the
            // packed-record round trip. Spawn slots (whose gates read state
            // the passes may be mid-flight on) and short stretches drain
            // through the scalar step — the slow-path contract of
            // DESIGN.md §16. Duplicated from the instrumented loop below
            // minus the lap plumbing: windows average ~a dozen slots, so
            // even a few dead instrumentation checks per stretch are
            // measurable here.
            let drain_min = self.drain_min;
            // A window already shorter than the batch threshold — the
            // common case, the suite's windows average ~a dozen slots —
            // drains scalar outright on one length check (`st.end` only
            // shrinks, so the decision cannot go stale mid-window).
            if st.end - k < drain_min {
                while k < st.end {
                    self.step_scalar(t, k, &mut st);
                    k += 1;
                }
                self.buf = buf;
                self.finish_window(t, &st);
                return (k, st.last_commit);
            }
            while k < st.end {
                let mut c = self.sp_cursor;
                while (self.sp_pos[c] as usize) < k {
                    c += 1;
                }
                self.sp_cursor = c;
                let cap = st.end.min(self.sp_pos[c] as usize);
                if cap - k < drain_min {
                    // Drain the short stretch and the spawn slot bounding
                    // it in one scalar run (re-checking `st.end` per slot:
                    // the spawn can shrink the window mid-run).
                    let stop = (cap + 1).min(st.end);
                    while k < stop && k < st.end {
                        self.step_scalar(t, k, &mut st);
                        k += 1;
                    }
                    continue;
                }
                let k1 = self.fill_pass(t, k, cap, batch_spawns, &mut st, &mut buf);
                self.timing_pass(t, k, &mut st, &buf);
                if self.observing {
                    self.flush_obs();
                }
                k = k1;
            }
            self.buf = buf;
            self.finish_window(t, &st);
            return (k, st.last_commit);
        }
        while k < st.end {
            // Instrumented (`run_timed`) / forced (`with_batch_slots`)
            // dispatch: the same scheduling decisions as the production
            // loop above plus per-pass wall-clock laps. Forced mode
            // batches through spawn slots under the occurrence cap,
            // keeping the differential suites' seam coverage on the
            // in-batch spawn machinery.
            let cap = if forced {
                st.end
            } else {
                let mut c = self.sp_cursor;
                while (self.sp_pos[c] as usize) < k {
                    c += 1;
                }
                self.sp_cursor = c;
                st.end.min(self.sp_pos[c] as usize)
            };
            if !forced && cap - k < self.drain_min {
                let t0 = timed.then(Instant::now);
                let stop = (cap + 1).min(st.end);
                let k_before = k;
                while k < stop && k < st.end {
                    self.step_scalar(t, k, &mut st);
                    k += 1;
                }
                if let Some(pt) = self.pass_times.as_deref_mut() {
                    pt.scalar_steps += (k - k_before) as u64;
                }
                self.lap(t0, |pt| &mut pt.scalar_ns);
                continue;
            }
            if forced && !batch_spawns && self.pre[self.trace.pcs()[k] as usize].flags & F_SPAWN != 0
            {
                let t0 = timed.then(Instant::now);
                self.step_scalar(t, k, &mut st);
                if let Some(pt) = self.pass_times.as_deref_mut() {
                    pt.scalar_steps += 1;
                }
                self.lap(t0, |pt| &mut pt.scalar_ns);
                k += 1;
                continue;
            }
            let t0 = timed.then(Instant::now);
            let k1 = self.fill_pass(t, k, cap, batch_spawns, &mut st, &mut buf);
            self.lap(t0, |pt| &mut pt.fill_ns);
            if let Some(pt) = self.pass_times.as_deref_mut() {
                pt.batches += 1;
            }
            let t0 = timed.then(Instant::now);
            self.timing_pass(t, k, &mut st, &buf);
            self.lap(t0, |pt| &mut pt.timing_ns);
            if self.observing {
                self.flush_obs();
            }
            k = k1;
        }
        self.buf = buf;
        self.finish_window(t, &st);
        (k, st.last_commit)
    }

    /// Initial per-window state for thread `t`, including window-local
    /// copies of the unit's port/FU availability columns for the common
    /// geometry (written back by [`Engine::finish_window`]).
    fn win_state(&mut self, t: &PendingThread) -> WinState<'a> {
        let issue_width = self.cfg.issue_width;
        let pbase = t.tu * issue_width;
        let fbase_tu = t.tu * self.fu_total;
        let fast_units =
            issue_width == 4 && self.fu_total <= 16 && self.fu_count.iter().all(|&c| c <= 2);
        // A perfectly predicted live-in of a spawned thread is available the
        // moment the thread is initialised, unconditionally: the whole
        // live-in path collapses to this per-window constant (no stats, no
        // RNG, so skipping the call is exact).
        let live_const = match (t.pair.is_some(), self.cfg.value_predictor) {
            (true, ValuePredictorKind::Perfect) => Some(t.init_done),
            _ => None,
        };
        self.doomed.clear();
        self.touch_run.clear();
        // Live-in memo reset: one mask store (the value array persists).
        self.live_in_valid = 0;
        // The window ends at the next more-speculative thread's start
        // (or the trace end); only a spawn can move it (and only inward).
        let end = self.chain.front().map_or(self.trace.len(), |c| c.start);
        // Both hazard rings start empty; a window too short to wrap either
        // can never trigger a structural stall, so its slots skip the ring
        // bookkeeping entirely (the suite's windows average ~a dozen slots
        // against a 64-entry ROB).
        let rings = end - t.start >= self.cfg.rob_entries.min(self.writer_ring.len());
        let mut ports4 = [0u64; 4];
        let mut fu16 = [0u64; 16];
        if fast_units {
            ports4.copy_from_slice(&self.ports[pbase..pbase + 4]);
            fu16[..self.fu_total]
                .copy_from_slice(&self.fu_free[fbase_tu..fbase_tu + self.fu_total]);
        }
        WinState {
            pcs: self.trace.pcs(),
            rob: self.cfg.rob_entries,
            renames: self.writer_ring.len(),
            issue_width,
            fetch_width: self.cfg.fetch_width,
            rob_i: 0,
            rob_full: false,
            writer_i: 0,
            writer_full: false,
            last_commit: t.init_done,
            fetch_cycle: t.init_done,
            slots: 0,
            rings,
            live_const,
            fast_units,
            pbase,
            fbase_tu,
            ports4,
            fu16,
            end,
        }
    }

    /// Writes the window-local port/FU availability copies back to the flat
    /// columns and flushes trailing store touches (stores after the last
    /// load of the window still become resident); the epilogue of every
    /// `process_window` variant.
    fn finish_window(&mut self, t: &PendingThread, st: &WinState<'_>) {
        if st.fast_units {
            self.ports[st.pbase..st.pbase + 4].copy_from_slice(&st.ports4);
            self.fu_free[st.fbase_tu..st.fbase_tu + self.fu_total]
                .copy_from_slice(&st.fu16[..self.fu_total]);
        }
        if !self.touch_run.is_empty() {
            self.caches[t.tu].touch_run(&mut self.touch_run);
        }
    }

    /// Processes dynamic instruction `k` exactly as the pre-windowed engine
    /// did: one pass through fetch hazards, spawn, operand readiness,
    /// issue, memory, write-back and control-flow redirect. This is the
    /// reference semantics the batched passes reproduce bit-for-bit, and
    /// the slow path they drain through at spawn slots and under fault
    /// plans.
    ///
    /// `inline(always)`: both callers run it once per drained instruction;
    /// out-of-line it pays a ~250-line function's call/spill traffic on
    /// the hottest path in the simulator.
    #[allow(clippy::too_many_lines)]
    #[inline(always)]
    fn step_scalar(&mut self, t: &PendingThread, k: usize, st: &mut WinState<'_>) {
        let trace = self.trace;
        let pc = st.pcs[k];
        let pi = self.pre[pc as usize];
        let rob = st.rob;
        let renames = st.renames;
        let issue_width = st.issue_width;
        let fetch_width = st.fetch_width;

        // --- Fetch ---------------------------------------------------
        // Stall checks select with cmov: whether the structural hazard
        // bites is data-dependent and defeats the branch predictor.
        let writes_reg = pi.flags & F_WRITES_REG != 0;
        if st.rings {
            if st.rob_full {
                let oldest = self.rob_ring[st.rob_i];
                let stall = oldest > st.fetch_cycle;
                st.fetch_cycle = if stall { oldest } else { st.fetch_cycle };
                st.slots = if stall { 0 } else { st.slots };
            }
            if writes_reg && st.writer_full {
                let oldest = self.writer_ring[st.writer_i];
                let stall = oldest > st.fetch_cycle;
                st.fetch_cycle = if stall { oldest } else { st.fetch_cycle };
                st.slots = if stall { 0 } else { st.slots };
            }
        }
        if st.slots == fetch_width {
            st.fetch_cycle += 1;
            st.slots = 0;
        }
        let f = st.fetch_cycle;
        st.slots += 1;

        // --- Spawn ---------------------------------------------------
        if pi.flags & F_SPAWN != 0 {
            if self.fast_decline && (self.tu_free_count == 0 || f < self.tu_min_free) {
                // No unit can accept a thread at `f`: every candidate
                // path through the full attempt ends in this same
                // single decline with no other state change.
                self.result.spawns_declined += 1;
            } else {
                if let Some(d) = self.try_spawn(t, k, pc, f) {
                    self.doomed.push(d);
                }
                // A successful spawn may have chained a nearer
                // successor.
                st.end = self.chain.front().map_or(trace.len(), |c| c.start);
            }
        }

        // --- Operand readiness --------------------------------------
        let mut ready = f + 1;
        let prods = self.deps.reg_producers(k);
        if let Some(v) = st.live_const {
            // Spawned thread under perfect prediction: every live-in is
            // available at `init_done` unconditionally, so resolution
            // collapses to selects on the producer index — no
            // data-dependent branches. The producer index is clamped so
            // the `complete` load is in-bounds even for `NO_PRODUCER`;
            // the select then discards it.
            let hi = self.complete.len() - 1;
            for &p in &prods {
                let c = u64::from(self.complete[(p as usize).min(hi)]);
                let avail = if p == NO_PRODUCER {
                    0
                } else if (p as usize) < t.start {
                    v
                } else {
                    c
                };
                ready = ready.max(avail);
            }
        } else {
            for (&r, &p) in pi.src.iter().zip(&prods) {
                if r == NO_SRC || p == NO_PRODUCER {
                    continue;
                }
                let p = p as usize;
                let avail = if p >= t.start {
                    u64::from(self.complete[p])
                } else {
                    self.live_in_time(t, r as usize, p)
                };
                ready = ready.max(avail);
            }
        }

        // --- Issue: a port, then a functional unit -------------------
        let class = pi.class as usize;
        let off = self.fu_offset[class];
        let cnt = self.fu_count[class];
        let t2 = if st.fast_units {
            // Tournament min for the 4-wide machine: three cmov
            // selects instead of a scan, earliest index winning ties
            // exactly like `min_index`, over the window-local copies.
            let ports = &mut st.ports4;
            let (i0, v0) = if ports[1] < ports[0] {
                (1, ports[1])
            } else {
                (0, ports[0])
            };
            let (i1, v1) = if ports[3] < ports[2] {
                (3, ports[3])
            } else {
                (2, ports[2])
            };
            let (port, pv) = if v1 < v0 { (i1, v1) } else { (i0, v0) };
            let t1 = ready.max(pv);
            ports[port] = t1 + 1;
            let units = &mut st.fu16[off..off + cnt];
            // Every ISA class fields one or two units; pick with a
            // single compare instead of a scan.
            let unit = if cnt == 2 && units[1] < units[0] { 1 } else { 0 };
            let t2 = t1.max(units[unit]);
            units[unit] = t2 + self.fu_incr[class];
            t2
        } else {
            let ports = &mut self.ports[st.pbase..st.pbase + issue_width];
            let port = min_index(ports);
            let t1 = ready.max(ports[port]);
            ports[port] = t1 + 1;
            let units = &mut self.fu_free[st.fbase_tu + off..st.fbase_tu + off + cnt];
            let unit = if cnt == 2 && units[1] < units[0] {
                1
            } else if cnt <= 2 {
                0
            } else {
                min_index(units)
            };
            let t2 = t1.max(units[unit]);
            units[unit] = t2 + self.fu_incr[class];
            t2
        };
        let mut done = t2 + u64::from(pi.latency);

        // --- Memory --------------------------------------------------
        if pi.flags & F_LOAD != 0 {
            if !self.touch_run.is_empty() {
                self.caches[t.tu].touch_run(&mut self.touch_run);
            }
            let misses_before = if self.observing {
                self.caches[t.tu].stats().1
            } else {
                0
            };
            let mut data = self.caches[t.tu].access(trace.addr_at(k), done);
            let cache_hit = !self.observing || self.caches[t.tu].stats().1 == misses_before;
            let jitter = self.faults.as_mut().map_or(0, |fi| fi.jitter());
            if jitter > 0 {
                self.result.fault_jitter_cycles += jitter;
                data += jitter;
                if self.observing {
                    self.emit(Event::FaultInjected {
                        thread: t.id,
                        unit: t.tu as u32,
                        cycle: done,
                        kind: FaultKind::CacheJitter { cycles: jitter },
                    });
                }
            }
            let mp = self.deps.mem_producer(k);
            if mp != NO_PRODUCER {
                let mp = mp as usize;
                if mp >= t.start {
                    // Same-thread store-to-load forwarding.
                    data = data.max(u64::from(self.complete[mp]));
                } else if u64::from(self.complete[mp]) > t2 {
                    // Violation: the producing store in an earlier
                    // thread executes after this load issued. Squash
                    // and restart here.
                    self.result.violations += 1;
                    let restart = u64::from(self.complete[mp])
                        + self.cfg.forward_latency
                        + self.cfg.squash_penalty;
                    data = data.max(restart);
                    st.fetch_cycle = restart;
                    st.slots = 0;
                    if self.observing {
                        self.emit(Event::ViolationDetected {
                            thread: t.id,
                            unit: t.tu as u32,
                            cycle: t2,
                        });
                    }
                } else {
                    // Cross-thread forward out of the versioning cache.
                    data = data.max(u64::from(self.complete[mp]) + self.cfg.forward_latency);
                }
            }
            done = data;
            if self.observing {
                self.emit(Event::CacheAccess {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: done,
                    hit: cache_hit,
                });
            }
        } else if pi.flags & F_STORE != 0 {
            self.touch_run.push(trace.addr_at(k));
            done = t2 + 1;
        }

        debug_assert!(done <= u64::from(u32::MAX));
        self.complete[k] = done as u32;
        st.last_commit = st.last_commit.max(done);
        if st.rings {
            self.rob_ring[st.rob_i] = st.last_commit;
            st.rob_i += 1;
            if st.rob_i == rob {
                st.rob_i = 0;
                st.rob_full = true;
            }
            if writes_reg {
                self.writer_ring[st.writer_i] = st.last_commit;
                st.writer_i += 1;
                if st.writer_i == renames {
                    st.writer_i = 0;
                    st.writer_full = true;
                }
            }
        }

        // --- Control-flow redirects ----------------------------------
        if pi.flags & F_COND_BRANCH != 0 {
            self.result.branch_predictions += 1;
            let taken = trace.taken_at(k);
            let pred = self.gshares[t.tu].predict_update(Pc(pc), taken);
            // Redirect selection in cmovs: prediction outcomes are the
            // canonical unpredictable branch.
            let hit = pred == taken;
            self.result.branch_hits += u64::from(hit);
            if self.conf_threshold > 0 {
                self.confs[t.tu].record(hit);
            }
            let redirect = if hit {
                if taken { f + 1 } else { st.fetch_cycle }
            } else {
                done + self.cfg.mispredict_penalty
            };
            st.fetch_cycle = st.fetch_cycle.max(redirect);
            st.slots = if hit && !taken { st.slots } else { 0 };
        } else if pi.flags & F_CONTROL != 0 {
            st.fetch_cycle = st.fetch_cycle.max(f + 1);
            st.slots = 0;
        }
    }

    /// The fill pass: decode, operand readiness, branch prediction, and
    /// cache touches/probes for consecutive slots starting at `k0`, fused
    /// into one sweep that writes each slot's packed [`Slot`] record and
    /// the timing pass's event worklist. Stops at the caller's `cap`
    /// (the window end, or the end of a spawn-free stretch under the
    /// production dispatch) or after [`Engine::batch_slots`] slots,
    /// whichever is first. With `batch_spawns` false (adaptive policies or
    /// fault plans), it also stops at the first spawn slot, which the
    /// caller drains scalar. With `batch_spawns` true, spawn slots decode
    /// as timing-pass events, and the batch is additionally capped at the
    /// earliest occurrence any of their candidate CQIPs could chain a
    /// child at (`try_spawn` picks the first occurrence strictly after the
    /// spawn slot, and a success always becomes the new chain front):
    /// every slot this pass touches is then guaranteed to stay inside the
    /// window however the in-batch spawn attempts resolve. Returns the
    /// batch end.
    ///
    /// Operand resolution replicates the scalar section exactly: a
    /// readiness lower bound from outside the window (`avail`, via the
    /// same memoised `live_in_time` in the same first-touch order) and
    /// in-window completion indices (`q0`/`q1`) the timing pass reads as
    /// `complete[q]`, with the slot's *own* dynamic index as zero
    /// sentinel. The gshare, confidence, value-predictor, and cache-tag
    /// streams each see their updates in slot order — the same order the
    /// scalar interleaving produces, as the streams are mutually
    /// independent — with only the MSHR (timing) half of each load
    /// deferred to the timing pass.
    #[allow(clippy::too_many_lines)]
    fn fill_pass(
        &mut self,
        t: &PendingThread,
        k0: usize,
        cap: usize,
        batch_spawns: bool,
        st: &mut WinState<'_>,
        buf: &mut WindowBuf,
    ) -> usize {
        let trace = self.trace;
        let pcs = trace.pcs();
        buf.slots.clear();
        buf.ev_slot.clear();
        let live_const = st.live_const;
        let mut lim = cap.min(k0 + self.batch_slots);
        let mut k = k0;
        while k < lim {
            let pc = pcs[k];
            let pi = self.pre[pc as usize];
            let flags = pi.flags;
            if flags & F_SPAWN != 0 {
                if !batch_spawns {
                    break;
                }
                // Cap the batch at the earliest dynamic index a spawn here
                // could chain a child at: the first occurrence of each
                // candidate's CQIP strictly after this slot. Batch starts
                // are globally non-decreasing, so the peek cursors only
                // ever advance (one amortised pass over the occurrences).
                let c0 = self.cand_offsets[pc as usize] as usize;
                let c1 = self.cand_offsets[pc as usize + 1] as usize;
                for ci in c0..c1 {
                    let cd = self.cand_cqip[ci] as usize;
                    let hi = self.occ_offsets[cd + 1] as usize;
                    let mut cur = self.occ_peek[cd] as usize;
                    while cur < hi && self.occ_values[cur] as usize <= k {
                        cur += 1;
                    }
                    self.occ_peek[cd] = cur as u32;
                    if cur < hi {
                        // Strictly greater than `k`, so this slot itself
                        // always stays inside the batch.
                        lim = lim.min(self.occ_values[cur] as usize);
                    }
                }
            }
            // --- Operand readiness ----------------------------------
            let prods = self.deps.reg_producers(k);
            let mut avail = 0u64;
            let mut q = [k as u32; 2];
            if let Some(v) = live_const {
                // Spawned thread under perfect prediction: every live-in
                // is ready at `init_done`, no predictor state or stats.
                for (s, &p) in prods.iter().enumerate() {
                    if p == NO_PRODUCER {
                        continue;
                    }
                    if (p as usize) < t.start {
                        avail = v;
                    } else {
                        q[s] = p;
                    }
                }
            } else {
                for s in 0..2 {
                    let (r, p) = (pi.src[s], prods[s]);
                    if r == NO_SRC || p == NO_PRODUCER {
                        continue;
                    }
                    if (p as usize) >= t.start {
                        q[s] = p;
                    } else {
                        avail = avail.max(self.live_in_time(t, r as usize, p as usize));
                    }
                }
            }
            let mut meta = 0u8;
            // --- Branch prediction ----------------------------------
            if flags & F_COND_BRANCH != 0 {
                let taken = trace.taken_at(k);
                let hit = self.gshares[t.tu].predict_update(Pc(pc), taken) == taken;
                self.result.branch_predictions += 1;
                self.result.branch_hits += u64::from(hit);
                if self.conf_threshold > 0 {
                    self.confs[t.tu].record(hit);
                }
                meta = u8::from(taken) | (u8::from(hit) << 1);
            }
            // --- Cache tags (stores buffered into touch runs, loads
            // flushing the run and probing; the touch run deliberately
            // survives batch and scalar-step boundaries within a window,
            // as it did across loop iterations before) ----------------
            if flags & (F_LOAD | F_STORE) != 0 {
                if flags & F_LOAD != 0 {
                    if !self.touch_run.is_empty() {
                        self.caches[t.tu].touch_run(&mut self.touch_run);
                    }
                    meta = u8::from(self.caches[t.tu].probe_addr(trace.addr_at(k)));
                } else {
                    self.touch_run.push(trace.addr_at(k));
                }
            }
            // A store completes at issue + 1 regardless of class latency;
            // overriding `lat` here makes stores plain timing slots.
            let is_store = flags & (F_LOAD | F_STORE) == F_STORE;
            let lat = if is_store { 1 } else { pi.latency };
            if flags & (F_LOAD | F_COND_BRANCH | F_CONTROL | F_SPAWN) != 0 {
                buf.ev_slot.push((k - k0) as u32);
            }
            buf.slots.push(Slot {
                avail,
                q0: q[0],
                q1: q[1],
                code: u32::from(flags)
                    | (u32::from(pi.class) << 8)
                    | (u32::from(lat) << 16)
                    | (u32::from(meta) << 24),
            });
            k += 1;
        }
        k
    }

    /// The fused timing pass: fetch-hazard stalls → dispatch → issue
    /// tournament → completion write-back over the batch's packed slot
    /// records. Fetch timing depends on completion through the ROB/rename
    /// rings and on redirects, so these sections cannot be split into
    /// separate sweeps; instead they fuse into one recurrence whose state
    /// lives in registers, running branch-free over plain-slot stretches
    /// between event slots (spawns, loads, branches, other control).
    #[allow(clippy::too_many_lines)]
    fn timing_pass(&mut self, t: &PendingThread, k0: usize, st: &mut WinState<'_>, buf: &WindowBuf) {
        let m = buf.slots.len();
        let recs = buf.slots.as_slice();
        let rob = self.cfg.rob_entries;
        let renames = self.writer_ring.len();
        let issue_width = self.cfg.issue_width;
        let fetch_width = self.cfg.fetch_width;
        let forward = self.cfg.forward_latency;
        let restart_extra = self.cfg.forward_latency + self.cfg.squash_penalty;
        let mispredict = self.cfg.mispredict_penalty;
        let observing = self.observing;
        let tu = t.tu;

        let mut rob_i = st.rob_i;
        let mut rob_full = st.rob_full;
        let mut writer_i = st.writer_i;
        let mut writer_full = st.writer_full;
        let mut last_commit = st.last_commit;
        let mut fetch_cycle = st.fetch_cycle;
        let mut slots = st.slots;
        let rings = st.rings;
        let fast_units = st.fast_units;
        let pbase = st.pbase;
        let fbase_tu = st.fbase_tu;
        let mut ports4 = st.ports4;
        let mut fu16 = st.fu16;

        // Fetch + dispatch + issue for slot `$i`, binding `$rec` (the
        // slot's packed record), `$f` (fetch cycle), `$wr` (writes a
        // register) and `$t2` (issue cycle) at the call site. A macro
        // rather than a closure so the recurrence state stays in plain
        // locals. Identical statement-for-statement to the corresponding
        // `step_scalar` sections.
        macro_rules! front {
            ($i:ident, $rec:ident, $f:ident, $wr:ident, $t2:ident) => {
                let $rec = recs[$i];
                let $wr = $rec.code & u32::from(F_WRITES_REG) != 0;
                if rings {
                    if rob_full {
                        let oldest = self.rob_ring[rob_i];
                        let stall = oldest > fetch_cycle;
                        fetch_cycle = if stall { oldest } else { fetch_cycle };
                        slots = if stall { 0 } else { slots };
                    }
                    if $wr && writer_full {
                        let oldest = self.writer_ring[writer_i];
                        let stall = oldest > fetch_cycle;
                        fetch_cycle = if stall { oldest } else { fetch_cycle };
                        slots = if stall { 0 } else { slots };
                    }
                }
                if slots == fetch_width {
                    fetch_cycle += 1;
                    slots = 0;
                }
                let $f = fetch_cycle;
                slots += 1;
                let mut ready = $f + 1;
                ready = ready.max($rec.avail);
                ready = ready.max(u64::from(self.complete[$rec.q0 as usize]));
                ready = ready.max(u64::from(self.complete[$rec.q1 as usize]));
                let class = (($rec.code >> 8) & 0xff) as usize;
                let off = self.fu_offset[class];
                let cnt = self.fu_count[class];
                let $t2 = if fast_units {
                    let (i0, v0) = if ports4[1] < ports4[0] {
                        (1, ports4[1])
                    } else {
                        (0, ports4[0])
                    };
                    let (i1, v1) = if ports4[3] < ports4[2] {
                        (3, ports4[3])
                    } else {
                        (2, ports4[2])
                    };
                    let (port, pv) = if v1 < v0 { (i1, v1) } else { (i0, v0) };
                    let t1 = ready.max(pv);
                    ports4[port] = t1 + 1;
                    let units = &mut fu16[off..off + cnt];
                    let unit = if cnt == 2 && units[1] < units[0] { 1 } else { 0 };
                    let t2 = t1.max(units[unit]);
                    units[unit] = t2 + self.fu_incr[class];
                    t2
                } else {
                    let ports = &mut self.ports[pbase..pbase + issue_width];
                    let port = min_index(ports);
                    let t1 = ready.max(ports[port]);
                    ports[port] = t1 + 1;
                    let units = &mut self.fu_free[fbase_tu + off..fbase_tu + off + cnt];
                    let unit = if cnt == 2 && units[1] < units[0] {
                        1
                    } else if cnt <= 2 {
                        0
                    } else {
                        min_index(units)
                    };
                    let t2 = t1.max(units[unit]);
                    units[unit] = t2 + self.fu_incr[class];
                    t2
                };
            };
        }
        // Completion write-back for slot `$i` finishing at `$done`.
        macro_rules! retire {
            ($i:ident, $wr:ident, $done:ident) => {
                debug_assert!($done <= u64::from(u32::MAX));
                self.complete[k0 + $i] = $done as u32;
                last_commit = last_commit.max($done);
                if rings {
                    self.rob_ring[rob_i] = last_commit;
                    rob_i += 1;
                    if rob_i == rob {
                        rob_i = 0;
                        rob_full = true;
                    }
                    if $wr {
                        self.writer_ring[writer_i] = last_commit;
                        writer_i += 1;
                        if writer_i == renames {
                            writer_i = 0;
                            writer_full = true;
                        }
                    }
                }
            };
        }

        let mut i = 0usize;
        let mut ev_iter = buf.ev_slot.iter();
        let mut next_ev = ev_iter.next().map_or(m, |&s| s as usize);
        while i < m {
            // Plain run: no loads, stores-as-plain-slots, no control flow.
            while i < next_ev {
                front!(i, rec, _f, wr, t2);
                let done = t2 + u64::from((rec.code >> 16) & 0xff);
                retire!(i, wr, done);
                i += 1;
            }
            if i == m {
                break;
            }
            // Event slot: spawn / load / conditional branch / other control.
            front!(i, rec, f, wr, t2);
            let flags = (rec.code & 0xff) as u8;
            if flags & F_SPAWN != 0 {
                // Spawn slots reach this pass only under the exact
                // fast-decline gate (otherwise they drain scalar), where
                // `try_spawn` touches no state the other section passes
                // read and the decode-time occurrence cap keeps any chained
                // child's start at or beyond the batch end. The attempt
                // reads only `f`, which `front!` computed exactly as the
                // scalar fetch section would.
                if self.tu_free_count == 0 || f < self.tu_min_free {
                    self.result.spawns_declined += 1;
                } else {
                    if observing {
                        // `try_spawn` emits straight to the sink; drain the
                        // buffered events first to keep stream order.
                        self.flush_obs();
                    }
                    let pc = self.trace.pcs()[k0 + i];
                    if let Some(d) = self.try_spawn(t, k0 + i, pc, f) {
                        self.doomed.push(d);
                    }
                    // A successful spawn chained a nearer successor.
                    st.end = self.chain.front().map_or(self.trace.len(), |c| c.start);
                }
            }
            let mut done = t2 + u64::from((rec.code >> 16) & 0xff);
            if flags & F_LOAD != 0 {
                let hit = (rec.code >> 24) & 1 != 0;
                // The tag probe already happened in the cache pass; only
                // the timing half (MSHR allocation on a miss) runs here,
                // in the same slot order the scalar path would.
                let mut data = if hit {
                    self.caches[tu].hit_time(done)
                } else {
                    self.caches[tu].miss_time(done)
                };
                let mp = self.deps.mem_producer(k0 + i);
                if mp != NO_PRODUCER {
                    let mp = mp as usize;
                    if mp >= t.start {
                        // Same-thread store-to-load forwarding.
                        data = data.max(u64::from(self.complete[mp]));
                    } else if u64::from(self.complete[mp]) > t2 {
                        // Violation: squash and restart here.
                        self.result.violations += 1;
                        let restart = u64::from(self.complete[mp]) + restart_extra;
                        data = data.max(restart);
                        fetch_cycle = restart;
                        slots = 0;
                        if observing {
                            self.obs_buf.push(Event::ViolationDetected {
                                thread: t.id,
                                unit: tu as u32,
                                cycle: t2,
                            });
                        }
                    } else {
                        // Cross-thread forward out of the versioning cache.
                        data = data.max(u64::from(self.complete[mp]) + forward);
                    }
                }
                done = data;
                if observing {
                    self.obs_buf.push(Event::CacheAccess {
                        thread: t.id,
                        unit: tu as u32,
                        cycle: done,
                        hit,
                    });
                }
            }
            retire!(i, wr, done);
            if flags & F_COND_BRANCH != 0 {
                let meta = rec.code >> 24;
                let taken = meta & 1 != 0;
                let hit = meta & 2 != 0;
                let redirect = if hit {
                    if taken { f + 1 } else { fetch_cycle }
                } else {
                    done + mispredict
                };
                fetch_cycle = fetch_cycle.max(redirect);
                slots = if hit && !taken { slots } else { 0 };
            } else if flags & F_CONTROL != 0 {
                fetch_cycle = fetch_cycle.max(f + 1);
                slots = 0;
            }
            i += 1;
            next_ev = ev_iter.next().map_or(m, |&s| s as usize);
        }

        st.rob_i = rob_i;
        st.rob_full = rob_full;
        st.writer_i = writer_i;
        st.writer_full = writer_full;
        st.last_commit = last_commit;
        st.fetch_cycle = fetch_cycle;
        st.slots = slots;
        st.ports4 = ports4;
        st.fu16 = fu16;
    }

    /// Drains the window event scratch into the metrics registry and sink,
    /// preserving stream order (the timing pass buffers; scalar steps and
    /// window retires emit directly between batches).
    fn flush_obs(&mut self) {
        if self.obs_buf.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut self.obs_buf);
        for ev in buf.drain(..) {
            if let Some(m) = self.metrics.as_mut() {
                m.record(&ev);
            }
            if let Some(s) = self.sink.as_mut() {
                s.record(&ev);
            }
        }
        self.obs_buf = buf;
    }

    /// Folds the elapsed time since `t0` into the pass-times slot picked by
    /// `which`; free when timing is off (`t0` is `None`).
    #[inline]
    fn lap(&mut self, t0: Option<Instant>, which: impl FnOnce(&mut PassTimes) -> &mut u64) {
        if let (Some(t0), Some(pt)) = (t0, self.pass_times.as_deref_mut()) {
            *which(pt) += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// Availability time of a live-in register value whose producer `p`
    /// lies before the thread's window.
    #[inline(never)]
    fn live_in_time(&mut self, t: &PendingThread, reg_idx: usize, p: usize) -> u64 {
        if self.live_in_valid & (1 << reg_idx) != 0 {
            return self.live_in_vals[reg_idx];
        }
        let forwarded = u64::from(self.complete[p]) + self.cfg.forward_latency;
        let avail = match t.pair {
            // The root thread (no spawn): values flow in program order.
            None => t.init_done.max(forwarded),
            // Every live-in of a spawned thread goes through the value
            // predictor, as in the paper — including values the spawner had
            // already computed (loop invariants, base pointers); those are
            // the predictor's easy hits and part of its reported accuracy.
            Some(pid) => match self.cfg.value_predictor {
                ValuePredictorKind::Perfect => t.init_done,
                ValuePredictorKind::None => t.init_done.max(forwarded),
                _ => match self.predictor.as_mut() {
                    // Defensive: a table-backed kind always builds one.
                    None => t.init_done.max(forwarded),
                    Some(predictor) => {
                        let (sp_pc, cqip_pc) = self.pairs.keys[pid as usize];
                        let key = PredKey {
                            sp_pc,
                            cqip_pc,
                            reg: reg_idx as u8,
                        };
                        let actual = if p < self.trace.len() {
                            self.trace.result_at(p)
                        } else {
                            0
                        };
                        let mut guess = predictor.predict(key);
                        predictor.train(key, actual);
                        let corrupted =
                            self.faults.as_mut().is_some_and(FaultInjector::roll_corrupt_value);
                        if corrupted {
                            let delta = self.faults.as_mut().map_or(0, FaultInjector::corruption);
                            guess = guess.wrapping_add(delta);
                            self.result.fault_corrupted_values += 1;
                            if self.observing {
                                self.emit(Event::FaultInjected {
                                    thread: t.id,
                                    unit: t.tu as u32,
                                    cycle: t.init_done,
                                    kind: FaultKind::CorruptedValue,
                                });
                            }
                        }
                        self.result.value_predictions += 1;
                        if guess == actual {
                            self.result.value_hits += 1;
                            t.init_done
                        } else {
                            t.init_done.max(forwarded)
                        }
                    }
                },
            },
        };
        self.live_in_vals[reg_idx] = avail;
        self.live_in_valid |= 1 << reg_idx;
        avail
    }

    /// Attempts a spawn at dynamic index `k` (an SP occurrence whose static
    /// pc is `pc`) at cycle `f`. Returns a doomed child to record, if the
    /// spawn was a control misspeculation. Reads `self.doomed` for the
    /// window's already-doomed children (CQIP conflict checks).
    #[inline(never)]
    fn try_spawn(&mut self, t: &PendingThread, k: usize, pc: u32, f: u64) -> Option<DoomedChild> {
        // Confidence gate: a unit mispredicting its recent branches is
        // somewhere control-unstable, so the spawn attempt itself is
        // suppressed — before any candidate (or fault roll) is considered,
        // exactly as the hardware would kill the spawn at fetch.
        if self.conf_threshold > 0 && self.confs[t.tu].level() < self.conf_threshold {
            self.result.spawns_declined += 1;
            self.result.spawns_gated += 1;
            if self.observing {
                self.emit(Event::SpawnGated {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: f,
                    reason: GateReason::LowConfidence,
                });
            }
            return None;
        }
        // Chaos: the spawn opportunity is silently lost (a flaky spawn
        // unit), before any candidate is even considered.
        let spawn_dropped = self.faults.as_mut().is_some_and(FaultInjector::roll_drop_spawn);
        if spawn_dropped {
            self.result.fault_dropped_spawns += 1;
            self.result.spawns_declined += 1;
            if self.observing {
                self.emit(Event::FaultInjected {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: f,
                    kind: FaultKind::DroppedSpawn,
                });
            }
            return None;
        }
        let reinstate_period = self.cfg.removal.and_then(|p| p.reinstate_after);
        let c0 = self.cand_offsets[pc as usize] as usize;
        let c1 = self.cand_offsets[pc as usize + 1] as usize;
        for ci in c0..c1 {
            let pid = self.cand_pair[ci] as usize;
            // One arena read serves both the removal check and the
            // footnote-1 reinstatement (a removed pair may cool off and
            // come back).
            if self.pairs.removed[pid] {
                let reinstated = reinstate_period
                    .is_some_and(|period| f.saturating_sub(self.pairs.removed_at[pid]) >= period);
                if reinstated {
                    self.pairs.removed[pid] = false;
                    self.pairs.alone_count[pid] = 0;
                } else if self.cfg.reassign {
                    continue;
                } else {
                    self.result.spawns_declined += 1;
                    return None;
                }
            }
            // Scoreboard demotion: a runtime blacklist fed by squashes,
            // consulted like removal but permanent and with its own
            // accounting (the gate is the sole decider for this decline).
            if self.scoreboard.as_ref().is_some_and(|sb| sb.is_demoted(pid)) {
                if self.cfg.reassign {
                    continue;
                }
                self.result.spawns_declined += 1;
                self.result.spawns_gated += 1;
                if self.observing {
                    self.emit(Event::SpawnGated {
                        thread: t.id,
                        unit: t.tu as u32,
                        cycle: f,
                        reason: GateReason::Demoted,
                    });
                }
                return None;
            }
            // Hardware check: a more speculative thread already started at
            // this CQIP (counts cover the chain and this window's doomed).
            let cd = self.cand_cqip[ci] as usize;
            if self.cqip_active[cd] > 0 {
                if self.cfg.reassign {
                    continue;
                }
                self.result.spawns_declined += 1;
                return None;
            }
            // A free thread unit at spawn time.
            let Some(tu) = self.tu_find_free(f) else {
                self.result.spawns_declined += 1;
                return None;
            };
            self.tu_claim(tu);
            self.result.threads_spawned += 1;
            if let Some(sb) = self.scoreboard.as_mut() {
                sb.record_spawn(pid);
            }
            let id = self.next_thread_id;
            self.next_thread_id += 1;
            if self.observing {
                self.emit(Event::ThreadSpawned {
                    thread: id,
                    unit: tu as u32,
                    cycle: f,
                    speculative: true,
                });
            }
            // Chaos: a spontaneous squash kills the child right after the
            // unit was claimed — it burns the unit until its spawner joins,
            // exactly like a control misspeculation, so the committed
            // stream is untouched.
            let forced_squash = self.faults.as_mut().is_some_and(FaultInjector::roll_squash);
            if forced_squash {
                self.result.fault_forced_squashes += 1;
                if self.observing {
                    self.emit(Event::FaultInjected {
                        thread: id,
                        unit: tu as u32,
                        cycle: f,
                        kind: FaultKind::ForcedSquash,
                    });
                }
                self.cqip_active[cd] += 1;
                return Some(DoomedChild {
                    id,
                    tu,
                    spawn_time: f,
                    cd: cd as u32,
                    pair: pid as PairId,
                    fault: true,
                });
            }
            // Oracle: where does this CQIP next occur? Spawn attempts
            // arrive at non-decreasing `k`, so the per-CQIP cursor resumes
            // where the last search for this CQIP stopped.
            let hi = self.occ_offsets[cd + 1] as usize;
            let mut cur = self.occ_cursor[cd] as usize;
            while cur < hi && self.occ_values[cur] as usize <= k {
                cur += 1;
            }
            self.occ_cursor[cd] = cur as u32;
            let next = (cur < hi).then(|| self.occ_values[cur]);
            // The spawn is a control misspeculation unless the CQIP
            // recurs before the spawner's current immediate successor:
            // hardware discovers the mismatch when the spawner joins a
            // different thread first (e.g. spawning "one more iteration"
            // exactly when the loop exits).
            let bound = self.chain.front().map(|c| c.start);
            let next = next.filter(|&j| bound.is_none_or(|b| (j as usize) < b));
            match next {
                None => {
                    // Control misspeculation: squashed when we join.
                    self.cqip_active[cd] += 1;
                    return Some(DoomedChild {
                        id,
                        tu,
                        spawn_time: f,
                        cd: cd as u32,
                        pair: pid as PairId,
                        fault: false,
                    });
                }
                Some(j) => {
                    let child = PendingThread {
                        id,
                        start: j as usize,
                        spawn_time: f,
                        init_done: f + 1 + self.cfg.init_overhead,
                        tu,
                        pair: Some(pid as PairId),
                        cd: cd as u32,
                    };
                    let pos = self.chain.partition_point(|c| c.start < child.start);
                    debug_assert!(
                        self.chain.get(pos).is_none_or(|c| c.start != child.start),
                        "two threads cannot share a start"
                    );
                    self.cqip_active[cd] += 1;
                    self.chain.insert(pos, child);
                    return None;
                }
            }
        }
        self.result.spawns_declined += 1;
        None
    }

    /// Removes every pair whose observed average thread size (squashed
    /// children count as zero) fell below the configured minimum, resetting
    /// the survivors' statistics so they are re-measured under the new pair
    /// mix.
    fn check_min_size_removals(&mut self) {
        let Some(min) = self.cfg.min_observed_size else {
            return;
        };
        // Remove at most the single worst offender per sweep: sizes are a
        // property of the whole pair mix (interleaved spawning shortens
        // everybody), so survivors must be re-measured before judging them.
        // Guilt metric: pairs whose spawns get squashed (doomed fraction)
        // are the offenders; short committed threads are often their
        // victims. Among undersized pairs, remove the most squash-prone,
        // breaking ties by smallest average size. Ids ascend in key order,
        // so the final key tie-break (which keeps the pick independent of
        // visit order) is the id comparison itself.
        let a = &self.pairs;
        let mut worst: Option<usize> = None;
        for i in 0..a.keys.len() {
            if a.removed[i]
                || a.size_samples[i] < MIN_SIZE_SAMPLES
                || a.size_sum[i] >= u64::from(min) * u64::from(a.size_samples[i])
            {
                continue;
            }
            let better = match worst {
                None => true,
                Some(b) => {
                    let zi = a.size_zeros[i] as f64 / a.size_samples[i] as f64;
                    let zb = a.size_zeros[b] as f64 / a.size_samples[b] as f64;
                    let si = a.size_sum[i] as f64 / a.size_samples[i] as f64;
                    let sb = a.size_sum[b] as f64 / a.size_samples[b] as f64;
                    zi.total_cmp(&zb)
                        .then(sb.total_cmp(&si))
                        .then(a.keys[i].cmp(&a.keys[b]))
                        .is_gt()
                }
            };
            if better {
                worst = Some(i);
            }
        }
        if let Some(i) = worst {
            self.pairs.removed[i] = true;
            // Minimum-size removals are structural; keep them permanent by
            // pushing the reinstatement clock far out.
            self.pairs.removed_at[i] = u64::MAX / 2;
            self.result.pairs_removed += 1;
            self.pairs.size_samples.fill(0);
            self.pairs.size_sum.fill(0);
            self.pairs.size_zeros.fill(0);
        }
    }

    /// The §4.2 removal mechanisms, applied when a thread retires.
    fn apply_dynamic_policies(
        &mut self,
        t: &PendingThread,
        doomed: &[DoomedChild],
        exec_done: u64,
        window_len: u64,
        pred_commit: u64,
    ) {
        let Some(pid) = t.pair else {
            // The root thread has no pair, but its doomed children still
            // count for the minimum-size policy.
            if self.cfg.min_observed_size.is_some() {
                for d in doomed {
                    self.pairs.size_samples[d.pair as usize] += 1;
                    self.pairs.size_zeros[d.pair as usize] += 1;
                }
                self.check_min_size_removals();
            }
            return;
        };
        let pid = pid as usize;

        // Chaos: condemn the retiring thread's pair as if a dynamic policy
        // had removed it.
        let forced_removal = self.faults.as_mut().is_some_and(FaultInjector::roll_remove_pair);
        if forced_removal && !self.pairs.removed[pid] {
            self.pairs.removed[pid] = true;
            self.pairs.removed_at[pid] = exec_done;
            self.result.pairs_removed += 1;
            self.result.fault_forced_removals += 1;
            if self.observing {
                self.emit(Event::FaultInjected {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: exec_done,
                    kind: FaultKind::ForcedRemoval,
                });
            }
        }

        if self.cfg.min_observed_size.is_some() {
            // Squashed children are the ultimate undersized thread: charge
            // them to their pair as zero-size observations.
            for d in doomed {
                self.pairs.size_samples[d.pair as usize] += 1;
                self.pairs.size_zeros[d.pair as usize] += 1;
            }
            self.pairs.size_samples[pid] += 1;
            self.pairs.size_sum[pid] += window_len;
            self.check_min_size_removals();
        }

        if let Some(policy) = self.cfg.removal {
            // Time this thread spent as the only active thread: from its
            // init *and* the commit of its predecessor (earlier threads
            // still running mean it is not alone) until its first successor
            // spawned.
            let alone_start = t.init_done.max(pred_commit);
            // "Alone" ends when enough successors have spawned: the first
            // for the strict policy, the (max_companions+1)-th for the
            // few-threads variant the paper also evaluates.
            self.succ_spawns.clear();
            self.succ_spawns.extend(self.chain.iter().map(|c| c.spawn_time));
            self.succ_spawns.extend(doomed.iter().map(|d| d.spawn_time));
            self.succ_spawns.sort_unstable();
            let alone_until = self
                .succ_spawns
                .get(policy.max_companions as usize)
                .copied()
                .unwrap_or(exec_done);
            let alone_end = alone_until.min(exec_done);
            if alone_end > alone_start
                && alone_end - alone_start > policy.alone_cycles
                && !self.pairs.removed[pid]
            {
                self.pairs.alone_count[pid] += 1;
                if self.pairs.alone_count[pid] >= policy.occurrences {
                    self.pairs.removed[pid] = true;
                    self.pairs.removed_at[pid] = alone_end;
                    self.result.pairs_removed += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use specmt_isa::{Pc, ProgramBuilder, Reg};
    use specmt_spawn::{PairOrigin, SpawnPair};

    fn pair(sp: u32, cqip: u32) -> SpawnPair {
        SpawnPair {
            sp: Pc(sp),
            cqip: Pc(cqip),
            prob: 1.0,
            avg_dist: 40.0,
            score: 1.0,
            origin: PairOrigin::Profile,
        }
    }

    /// A loop whose iterations are fully independent except the induction
    /// variable (distinct memory blocks per iteration).
    fn independent_loop(n: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.shli(Reg::R3, Reg::R1, 6);
        b.add(Reg::R3, Reg::R14, Reg::R3);
        for i in 0..8 {
            b.ld(Reg::R4, Reg::R3, i * 8);
            b.muli(Reg::R4, Reg::R4, 3);
            b.addi(Reg::R4, Reg::R4, 1);
            b.st(Reg::R4, Reg::R3, i * 8);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        Trace::generate(b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn single_threaded_baseline_is_sane() {
        let trace = independent_loop(50);
        let r = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        assert_eq!(r.committed_instructions, trace.len() as u64);
        assert_eq!(r.threads_committed, 1);
        let ipc = r.ipc();
        assert!(ipc > 0.3 && ipc <= 4.0, "ipc {ipc}");
        assert_eq!(r.threads_spawned, 0);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn loop_iteration_spawning_speeds_up() {
        let trace = independent_loop(200);
        let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        // Self pair at the loop head (@3).
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let spec = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert_eq!(spec.committed_instructions, trace.len() as u64);
        assert!(spec.threads_spawned > 100);
        assert!(
            spec.cycles * 2 < baseline.cycles,
            "speculative {} vs baseline {}",
            spec.cycles,
            baseline.cycles
        );
        assert!(spec.avg_active_threads() > 2.0);
    }

    #[test]
    fn empty_table_matches_single_threaded_cycles() {
        let trace = independent_loop(30);
        let a = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        let b = Simulator::new(&trace, SimConfig::paper(16)).run().expect("simulation");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn more_thread_units_never_slow_down_this_loop() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let c4 = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        let c16 = Simulator::with_table(&trace, SimConfig::paper(16), &table).run().expect("simulation");
        assert!(c16.cycles <= c4.cycles);
    }

    #[test]
    fn doomed_spawn_squashes_at_join() {
        // The SP fires on every iteration, but the CQIP (@0, the entry)
        // never executes again: every spawn is a control misspeculation.
        let trace = independent_loop(20);
        let table = SpawnTable::from_pairs(vec![pair(3, 0)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        assert!(r.threads_spawned >= 1);
        assert_eq!(r.threads_squashed, r.threads_spawned);
        assert_eq!(r.committed_instructions, trace.len() as u64);
    }

    #[test]
    fn value_prediction_modes_order_sensibly() {
        let trace = independent_loop(200);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let run = |kind| {
            Simulator::with_table(
                &trace,
                SimConfig::paper(8).with_value_predictor(kind),
                &table,
            )
            .run().expect("simulation")
        };
        let perfect = run(ValuePredictorKind::Perfect);
        let stride = run(ValuePredictorKind::Stride);
        let none = run(ValuePredictorKind::None);
        // The induction variable strides; the stride predictor should be
        // close to perfect, and `none` must be the slowest.
        assert!(perfect.cycles <= stride.cycles);
        assert!(stride.cycles <= none.cycles);
        assert!(stride.value_predictions > 0);
        // Declined spawns leave gaps in the live-in sequence, so even a
        // pure induction variable lands around the paper's ~70 % accuracy.
        assert!(
            stride.value_hit_ratio() > 0.6,
            "{}",
            stride.value_hit_ratio()
        );
    }

    #[test]
    fn serial_memory_chain_triggers_violations_or_stalls() {
        // Each iteration reads the location the previous iteration wrote:
        // cross-thread memory dependences on every spawn.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 100);
        b.bind(top);
        b.ld(Reg::R4, Reg::R14, 0);
        for _ in 0..20 {
            b.muli(Reg::R4, Reg::R4, 3);
        }
        b.st(Reg::R4, Reg::R14, 0);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert!(r.violations > 0, "expected memory violations");
        assert_eq!(r.committed_instructions, trace.len() as u64);
        // The serial chain caps the benefit.
        let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        assert!(r.cycles * 3 > baseline.cycles);
    }

    #[test]
    fn init_overhead_costs_cycles() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let free = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        let taxed =
            Simulator::with_table(&trace, SimConfig::paper(8).with_init_overhead(8), &table).run().expect("simulation");
        assert!(taxed.cycles > free.cycles);
    }

    #[test]
    fn removal_policy_cancels_imbalanced_pairs() {
        // A pair spanning the whole loop: its thread runs alone for ages.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // @0
        b.li(Reg::R2, 40); // @1
        b.bind(top);
        for _ in 0..30 {
            b.addi(Reg::R3, Reg::R3, 1);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt(); // @33
        let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
        // Spawn the loop exit from the entry: the child waits alone-ish...
        // then the parent (running the whole loop) is the long pole. Use a
        // self-pair with a huge serial chain instead: each child depends on
        // its predecessor through r3, running alone while waiting.
        let table = SpawnTable::from_pairs(vec![pair(2, 2)]);
        let cfg = SimConfig::paper(4)
            .with_value_predictor(ValuePredictorKind::None)
            .with_removal(crate::RemovalPolicy {
                alone_cycles: 10,
                occurrences: 1,
                reinstate_after: None,
                max_companions: 0,
            });
        let r = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert!(r.pairs_removed >= 1, "pair should be removed: {r:?}");
    }

    #[test]
    fn min_observed_size_removes_small_threads() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let mut cfg = SimConfig::paper(8);
        cfg.min_observed_size = Some(100); // iterations are ~36 instructions
        let r = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert_eq!(r.pairs_removed, 1);
        // After removal, spawning stops.
        let unlimited = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert!(r.threads_spawned < unlimited.threads_spawned);
    }

    #[test]
    fn branch_predictor_tables_persist_across_threads() {
        let trace = independent_loop(300);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        // The loop branch is overwhelmingly taken; persistent gshare state
        // should predict it well despite thread switches.
        assert!(r.branch_hit_ratio() > 0.8, "{}", r.branch_hit_ratio());
    }

    /// Straight-line independent code is fetch-bound: doubling the fetch
    /// width must cut cycles substantially.
    #[test]
    fn fetch_width_bounds_straight_line_code() {
        let mut b = ProgramBuilder::new();
        for i in 0..400 {
            // Independent adds across 8 registers.
            let r = Reg::new(1 + (i % 8) as u8).unwrap();
            b.addi(r, r, 1);
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |fetch: u32, issue: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.fetch_width = fetch;
            cfg.issue_width = issue;
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        let narrow = run(1, 4);
        let wide = run(4, 4);
        // Narrow is fetch-bound at 1 IPC; wide is bound by the two simple
        // integer units at ~2 IPC.
        assert!(narrow > wide * 3 / 2, "narrow {narrow} vs wide {wide}");
        assert!(wide < 260, "wide run not FU-bound: {wide}");
        // And at fetch width 1, IPC cannot exceed 1.
        assert!(narrow as usize >= trace.len());
    }

    /// The few-threads removal variant is strictly more trigger-happy than
    /// the strictly-alone policy: it can only remove at least as many
    /// pairs.
    #[test]
    fn few_threads_removal_is_at_least_as_aggressive() {
        let trace = independent_loop(300);
        let table = SpawnTable::from_pairs(vec![pair(3, 3), pair(3, 41)]);
        let base = crate::RemovalPolicy {
            alone_cycles: 5,
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        };
        let strict =
            Simulator::with_table(&trace, SimConfig::paper(8).with_removal(base), &table).run().expect("simulation");
        let few = Simulator::with_table(
            &trace,
            SimConfig::paper(8).with_removal(crate::RemovalPolicy {
                max_companions: 3,
                ..base
            }),
            &table,
        )
        .run().expect("simulation");
        assert!(few.pairs_removed >= strict.pairs_removed);
        assert_eq!(few.committed_instructions, trace.len() as u64);
    }

    /// §4.1's 64 physical registers are a real constraint: shrinking the
    /// rename pool below the in-flight writer count costs cycles.
    #[test]
    fn physical_registers_throttle_renaming() {
        let mut b = ProgramBuilder::new();
        for _ in 0..60 {
            b.muli(Reg::R1, Reg::R1, 3); // long-latency writers pile up
            for i in 0..7 {
                let r = Reg::new(2 + i).unwrap();
                b.addi(r, r, 1);
            }
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |phys: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.phys_regs = phys;
            cfg.rob_entries = 256; // isolate the rename constraint
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        assert!(run(36) > run(64), "36: {} vs 64: {}", run(36), run(64));
        assert!(run(64) >= run(256));
    }

    /// A tiny reorder buffer throttles a long-latency dependency chain's
    /// neighbours: cycles grow when the window shrinks.
    #[test]
    fn rob_pressure_slows_execution() {
        let mut b = ProgramBuilder::new();
        for _ in 0..100 {
            b.muli(Reg::R1, Reg::R1, 3); // 4-cycle serial chain
            for _ in 0..6 {
                b.addi(Reg::R2, Reg::R2, 1); // independent filler
            }
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |rob: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.rob_entries = rob;
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        assert!(run(4) > run(64), "rob4 {} vs rob64 {}", run(4), run(64));
    }

    /// The init overhead delays the first fetch of every spawned thread;
    /// with one spawn the cycle delta is bounded by the overhead itself.
    #[test]
    fn init_overhead_is_charged_to_the_spawned_thread() {
        let trace = independent_loop(2);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let base = Simulator::with_table(&trace, SimConfig::paper(2), &table).run().expect("simulation");
        let taxed =
            Simulator::with_table(&trace, SimConfig::paper(2).with_init_overhead(40), &table).run().expect("simulation");
        assert!(taxed.cycles >= base.cycles);
        assert!(
            taxed.cycles <= base.cycles + 40 * (base.threads_spawned + 1),
            "overhead over-charged: {} vs {}",
            taxed.cycles,
            base.cycles
        );
    }

    /// Spawns are declined while another active thread already starts at
    /// the same CQIP pc, so at most one next-iteration thread per pc is in
    /// flight per spawner generation.
    #[test]
    fn cqip_conflicts_decline_spawns() {
        let trace = independent_loop(50);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(16), &table).run().expect("simulation");
        assert!(r.spawns_declined > 0, "{r:?}");
        // Committed thread count can never exceed iterations + 1.
        assert!(r.threads_committed <= 51);
    }

    /// Reassign falls back to the second-ranked CQIP once the first is
    /// blocked, so it spawns at least as often as the base policy.
    #[test]
    fn reassign_spawns_at_least_as_often() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3), pair(3, 41)]);
        let base = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        let mut cfg = SimConfig::paper(8);
        cfg.reassign = true;
        let re = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert!(re.threads_spawned >= base.threads_spawned);
        assert_eq!(re.committed_instructions, trace.len() as u64);
    }

    /// Cache locality matters: a scattered access pattern costs more cycles
    /// than a sequential one of identical instruction mix.
    #[test]
    fn cache_misses_cost_cycles() {
        let build = |stride: i64| {
            let mut b = ProgramBuilder::new();
            let top = b.fresh_label("top");
            b.li(Reg::R14, 0x100000);
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 400);
            b.bind(top);
            b.muli(Reg::R3, Reg::R1, stride);
            b.add(Reg::R3, Reg::R14, Reg::R3);
            b.ld(Reg::R4, Reg::R3, 0);
            b.add(Reg::R5, Reg::R5, Reg::R4);
            b.addi(Reg::R1, Reg::R1, 1);
            b.blt(Reg::R1, Reg::R2, top);
            b.halt();
            Trace::generate(b.build().unwrap(), 100_000).unwrap()
        };
        let dense = Simulator::new(&build(8), SimConfig::single_threaded()).run().expect("simulation");
        // 4 KiB stride: every access a fresh block, conflict misses galore.
        let sparse = Simulator::new(&build(4096), SimConfig::single_threaded()).run().expect("simulation");
        // Dense: one miss per four accesses (8B stride in 32B blocks).
        // Sparse: every access misses (4 KiB stride cycles few sets).
        assert!(sparse.cache_misses > dense.cache_misses * 3);
        assert!(sparse.cycles > dense.cycles);
    }

    /// The footnote-1 reinstatement variant: a removed pair comes back
    /// after its cooling period, so more spawns happen than with permanent
    /// removal.
    #[test]
    fn reinstatement_revives_removed_pairs() {
        let trace = independent_loop(400);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let removal = crate::RemovalPolicy {
            alone_cycles: 1, // hair-trigger: remove almost immediately
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        };
        let permanent =
            Simulator::with_table(&trace, SimConfig::paper(4).with_removal(removal), &table).run().expect("simulation");
        let reinstated = Simulator::with_table(
            &trace,
            SimConfig::paper(4).with_removal(crate::RemovalPolicy {
                reinstate_after: Some(100),
                ..removal
            }),
            &table,
        )
        .run().expect("simulation");
        assert!(permanent.pairs_removed >= 1);
        assert!(
            reinstated.threads_spawned > permanent.threads_spawned,
            "reinstated {} <= permanent {}",
            reinstated.threads_spawned,
            permanent.threads_spawned
        );
        assert_eq!(reinstated.committed_instructions, trace.len() as u64);
    }

    /// Thread lifetimes can never start before their spawner's init and the
    /// aggregate active-thread average stays within the unit count.
    #[test]
    fn active_threads_bounded_by_units() {
        let trace = independent_loop(200);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        for tus in [2usize, 4, 8] {
            let r = Simulator::with_table(&trace, SimConfig::paper(tus), &table).run().expect("simulation");
            let act = r.avg_active_threads();
            assert!(act <= tus as f64 + 1e-9, "{act} > {tus}");
            assert!(act >= 1.0);
        }
    }

    /// A squash-every-time pair is demoted after exactly `threshold`
    /// squashes and never spawns again, with every later attempt counted
    /// (and emitted) as gated.
    #[test]
    fn scoreboard_demotes_squash_heavy_pairs() {
        use specmt_spawn::AdaptivePolicy;
        let trace = independent_loop(40);
        // pair(3, 3) retires a window per iteration; pair(5, 0)'s CQIP
        // never recurs, so its child squashes at every one of those
        // retires — the squash-heavy pair the scoreboard exists to kill.
        let plain = SpawnTable::from_pairs(vec![pair(3, 3), pair(5, 0)]);
        let policy =
            AdaptivePolicy { demote_threshold: Some(2), confidence_threshold: None };
        let table = plain.clone().with_adaptive(policy);
        let base = Simulator::with_table(&trace, SimConfig::paper(4), &plain)
            .run()
            .expect("simulation");
        let r = Simulator::with_table(&trace, SimConfig::paper(4), &table)
            .run()
            .expect("simulation");
        assert!(base.threads_squashed > 4, "{base:?}");
        assert_eq!(r.pairs_demoted, 1);
        assert!(r.spawns_gated > 0);
        assert!(r.threads_squashed < base.threads_squashed, "{r:?}");
        assert_eq!(r.committed_instructions, trace.len() as u64);
    }

    /// A policy whose gate threshold is zero (and no demote threshold) is
    /// inactive: the run is bit-identical to the bare table, fast-decline
    /// shortcut included.
    #[test]
    fn inactive_policy_is_bit_identical_to_no_policy() {
        use specmt_spawn::AdaptivePolicy;
        let trace = independent_loop(100);
        let plain = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let gated = plain
            .clone()
            .with_adaptive(AdaptivePolicy { demote_threshold: None, confidence_threshold: Some(0) });
        let a = Simulator::with_table(&trace, SimConfig::paper(8), &plain)
            .run()
            .expect("simulation");
        let b = Simulator::with_table(&trace, SimConfig::paper(8), &gated)
            .run()
            .expect("simulation");
        assert_eq!(a, b);
    }

    /// The strictest confidence gate (level 8 of 8) suppresses spawns
    /// whenever any of the unit's last eight branches mispredicted, yet
    /// never perturbs the committed stream.
    #[test]
    fn confidence_gate_declines_after_mispredicts() {
        use specmt_spawn::AdaptivePolicy;
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]).with_adaptive(AdaptivePolicy {
            demote_threshold: None,
            confidence_threshold: Some(8),
        });
        let r = Simulator::with_table(&trace, SimConfig::paper(8), &table)
            .run()
            .expect("simulation");
        assert!(r.spawns_gated > 0, "{r:?}");
        assert!(r.spawns_gated <= r.spawns_declined);
        assert!(r.threads_spawned > 0, "the gate must reopen once confident");
        assert_eq!(r.committed_instructions, trace.len() as u64);
    }

    proptest! {
        /// Pair interning assigns ids in exactly the order the replaced
        /// `BTreeMap<(u32, u32), PairRuntime>` iterated: ascending by
        /// `(sp, cqip)` key, with duplicates collapsed.
        #[test]
        fn pair_interning_matches_btreemap_order(
            raw in proptest::collection::vec((0u32..500, 0u32..500), 0..64)
        ) {
            let pairs: Vec<SpawnPair> =
                raw.iter().map(|&(sp, cqip)| pair(sp, cqip)).collect();
            let table = SpawnTable::from_pairs(pairs);
            let arena = PairArena::new(&table);
            let reference: std::collections::BTreeMap<(u32, u32), ()> =
                table.iter().map(|p| ((p.sp.0, p.cqip.0), ())).collect();
            let keys: Vec<(u32, u32)> = reference.into_keys().collect();
            prop_assert_eq!(&arena.keys, &keys);
            for (i, &k) in keys.iter().enumerate() {
                prop_assert_eq!(arena.id_of(k), Some(i as PairId));
            }
        }
    }
}
