//! The trace-driven simulation engine.
//!
//! # Model
//!
//! The sequential dynamic trace is the oracle. Every committed thread owns a
//! contiguous *window* of the trace; windows are created by spawns (a window
//! starts at the next dynamic occurrence of the pair's CQIP) and always
//! partition the trace exactly, so policies change timing, never results.
//!
//! Threads are processed in speculation (= program) order. Because every
//! data dependence points backwards in the trace, one forward pass computes
//! per-instruction completion times with full knowledge of producer timing,
//! while per-thread-unit state (gshare, L1 cache, functional units) is
//! reused in the same order real hardware would observe.
//!
//! Deliberate simplifications, kept because they preserve the paper's
//! trends (see DESIGN.md §6):
//!
//! * A memory-dependence violation delays and restarts the offending
//!   thread at the violating load (selective squash) rather than rolling
//!   back the whole unit.
//! * Mispredicted live-ins stall their consumers until the producer
//!   forwards the value, modelling the revalidation cost as dependence
//!   stalls.
//! * Spawns the hardware would discover to be doomed (their CQIP never
//!   recurs) occupy a thread unit until their spawner commits, then squash.

use std::collections::{BTreeMap, HashMap};

use specmt_isa::{FuClass, Pc};
use specmt_obs::{Event, EventSink, FaultKind, MetricsRegistry, SquashReason};
use specmt_predict::{Gshare, PredKey, ValuePredictor, ValuePredictorKind};
use specmt_spawn::SpawnTable;
use specmt_trace::{DepGraph, Trace, NO_PRODUCER};

use crate::cache::min_index;
use crate::faults::FaultInjector;
use crate::{L1Cache, SimConfig, SimError, SimResult};

/// Per-thread-unit persistent hardware state.
#[derive(Debug)]
struct ThreadUnit {
    gshare: Gshare,
    cache: L1Cache,
    /// Next-free cycle per issue port.
    ports: Vec<u64>,
    /// Next-free cycle per functional unit, grouped by class.
    fu_free: Vec<Vec<u64>>,
    busy: bool,
    free_at: u64,
}

impl ThreadUnit {
    fn new(cfg: &SimConfig) -> ThreadUnit {
        ThreadUnit {
            gshare: Gshare::new(cfg.gshare_bits),
            cache: L1Cache::new(cfg.cache),
            ports: vec![0; cfg.issue_width],
            fu_free: FuClass::ALL.iter().map(|c| vec![0; c.units()]).collect(),
            busy: false,
            free_at: 0,
        }
    }
}

/// A spawned-but-doomed thread: its CQIP never recurs, so it burns a thread
/// unit until its spawner joins and the mismatch is discovered.
#[derive(Debug, Clone, Copy)]
struct DoomedChild {
    /// Per-run thread id (for the event stream).
    id: u64,
    tu: usize,
    spawn_time: u64,
    cqip_pc: u32,
    /// The pair that created it, charged with a zero-size thread by the
    /// minimum-size policy.
    pair: (u32, u32),
    /// Whether the fault injector, not control misspeculation, doomed it.
    fault: bool,
}

/// An active thread awaiting processing.
#[derive(Debug)]
struct PendingThread {
    /// Per-run thread id (root = 0; for the event stream).
    id: u64,
    /// First dynamic instruction of the window.
    start: usize,
    /// Static pc of that first instruction (cached so spawn conflict checks
    /// need no trace lookup).
    start_pc: u32,
    /// Cycle the spawn fired.
    spawn_time: u64,
    /// Cycle the thread may fetch its first instruction
    /// (`spawn_time + 1 + init_overhead`).
    init_done: u64,
    /// Assigned thread unit.
    tu: usize,
    /// The `(sp, cqip)` pair that spawned it (`None` for the root).
    pair: Option<(u32, u32)>,
}

#[derive(Debug, Default)]
struct PairRuntime {
    removed: bool,
    /// Cycle of the most recent removal (for reinstatement).
    removed_at: u64,
    alone_count: u32,
    size_samples: u32,
    size_sum: u64,
    /// Samples that were squashed spawns (size zero).
    size_zeros: u32,
}

/// Committed threads observed per pair before the minimum-size policy
/// judges the pair's *average* size. Interleaved spawning legitimately cuts
/// individual threads short (paper Figure 7a), so single observations would
/// remove every pair.
const MIN_SIZE_SAMPLES: u32 = 8;

/// The trace-driven Clustered Speculative Multithreaded Processor model.
///
/// Construct with [`Simulator::new`] (no spawning — the superscalar
/// baseline) or [`Simulator::with_table`], then call [`Simulator::run`].
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Simulator<'a> {
    trace: &'a Trace,
    deps: DepGraph,
    config: SimConfig,
    table: SpawnTable,
}

impl<'a> Simulator<'a> {
    /// A simulator with no spawning pairs: execution is single-threaded
    /// regardless of the unit count.
    pub fn new(trace: &'a Trace, config: SimConfig) -> Simulator<'a> {
        Simulator::with_table(trace, config, &SpawnTable::empty())
    }

    /// A simulator driven by the given spawn table (cloned: tables are
    /// small relative to traces).
    pub fn with_table(trace: &'a Trace, config: SimConfig, table: &SpawnTable) -> Simulator<'a> {
        Simulator {
            trace,
            deps: DepGraph::build(trace),
            config,
            table: table.clone(),
        }
    }

    /// Runs the simulation to completion and returns aggregate statistics.
    ///
    /// The configuration (including any fault plan) is validated first, and
    /// the engine audits its hard invariants after the last commit: the
    /// committed windows must partition the trace exactly, every thread unit
    /// must be free, and the thread statistics must balance. Fault injection
    /// perturbs timing and policy only, so the audit holds under any valid
    /// [`FaultPlan`](crate::FaultPlan).
    ///
    /// If [`SimConfig::observe`] is set, the returned
    /// [`SimResult::metrics`] carries a [`Metrics`](specmt_obs::Metrics)
    /// snapshot aggregated from the run's event stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] / [`SimError::InvalidFaultPlan`]
    /// without simulating, or an audit variant ([`SimError::TracePartition`],
    /// [`SimError::CommitMismatch`], [`SimError::ThreadUnitLeak`],
    /// [`SimError::StatsConservation`], [`SimError::BrokenInvariant`]) if the
    /// model's correctness invariants do not survive the run.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.config.validate()?;
        Engine::new(self, None).run()
    }

    /// As [`Simulator::run`], additionally streaming every lifecycle
    /// [`Event`] into `sink` as it happens. Timing and results are
    /// bit-identical to an unobserved run: emission never feeds back into
    /// the model (a tested invariant).
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_with_sink(self, sink: &mut dyn EventSink) -> Result<SimResult, SimError> {
        self.config.validate()?;
        Engine::new(self, Some(sink)).run()
    }
}

impl<'a> Simulator<'a> {
    fn into_parts(self) -> (&'a Trace, DepGraph, SimConfig, SpawnTable) {
        (self.trace, self.deps, self.config, self.table)
    }
}

struct Engine<'a, 's> {
    trace: &'a Trace,
    deps: DepGraph,
    cfg: SimConfig,
    table: SpawnTable,
    /// Completion time of every dynamic instruction processed so far.
    complete: Vec<u64>,
    tus: Vec<ThreadUnit>,
    predictor: Option<Box<dyn ValuePredictor>>,
    /// Dynamic occurrence indices per CQIP pc.
    cqip_occurrences: HashMap<u32, Vec<u32>>,
    /// Whether a pc is a spawning point.
    is_sp: Vec<bool>,
    /// Per-pair dynamic state, keyed by `(sp, cqip)`. A `BTreeMap` so every
    /// scan over it (the minimum-size removal pick in particular) visits
    /// pairs in a deterministic order — with a `HashMap`, ties in that pick
    /// were broken by randomized iteration order, making whole-run results
    /// differ between executions.
    pair_rt: BTreeMap<(u32, u32), PairRuntime>,
    /// Active speculative threads in program order (excluding the one being
    /// processed).
    chain: Vec<PendingThread>,
    faults: Option<FaultInjector>,
    result: SimResult,
    /// External event consumer (from [`Simulator::run_with_sink`]).
    sink: Option<&'s mut dyn EventSink>,
    /// Built-in metrics aggregation (from [`SimConfig::observe`]).
    metrics: Option<MetricsRegistry>,
    /// Cached `sink.is_some() || metrics.is_some()`: the single branch the
    /// disabled path pays per emission site.
    observing: bool,
    /// Next per-run thread id (root took 0).
    next_thread_id: u64,
}

impl<'a, 's> Engine<'a, 's> {
    fn new(sim: Simulator<'a>, sink: Option<&'s mut dyn EventSink>) -> Engine<'a, 's> {
        let (trace, deps, cfg, table) = sim.into_parts();
        let program_len = trace.program().len();
        let mut is_sp = vec![false; program_len];
        let mut cqip_pcs: Vec<u32> = Vec::new();
        for p in table.iter() {
            is_sp[p.sp.index()] = true;
            cqip_pcs.push(p.cqip.0);
        }
        cqip_pcs.sort_unstable();
        cqip_pcs.dedup();
        let mut cqip_occurrences: HashMap<u32, Vec<u32>> =
            cqip_pcs.iter().map(|&pc| (pc, Vec::new())).collect();
        if !cqip_pcs.is_empty() {
            for (k, &pc) in trace.pcs().iter().enumerate() {
                if let Some(list) = cqip_occurrences.get_mut(&pc) {
                    list.push(k as u32);
                }
            }
        }
        let predictor = cfg.value_predictor.build(cfg.predictor_budget);
        let tus = (0..cfg.thread_units)
            .map(|_| ThreadUnit::new(&cfg))
            .collect();
        let faults = cfg
            .faults
            .filter(|p| p.is_active())
            .map(FaultInjector::new);
        let metrics = cfg.observe.then(MetricsRegistry::new);
        let observing = sink.is_some() || metrics.is_some();
        Engine {
            trace,
            deps,
            cfg,
            table,
            complete: vec![0; trace.len()],
            tus,
            predictor,
            cqip_occurrences,
            is_sp,
            pair_rt: BTreeMap::new(),
            chain: Vec::new(),
            faults,
            result: SimResult::default(),
            sink,
            metrics,
            observing,
            next_thread_id: 1,
        }
    }

    /// Fan one event out to the metrics registry and the external sink.
    /// Callers gate on `self.observing` so the disabled path never
    /// constructs the event.
    fn emit(&mut self, event: Event) {
        if let Some(m) = self.metrics.as_mut() {
            m.record(&event);
        }
        if let Some(s) = self.sink.as_mut() {
            s.record(&event);
        }
    }

    /// Freeze the metrics registry (if any) into the result.
    fn finish_metrics(&mut self) {
        if let Some(m) = self.metrics.take() {
            self.result.metrics = Some(m.snapshot());
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let n = self.trace.len();
        if n == 0 {
            self.finish_metrics();
            return Ok(self.result);
        }
        self.tus[0].busy = true;
        if self.observing {
            self.emit(Event::ThreadSpawned {
                thread: 0,
                unit: 0,
                cycle: 0,
                speculative: false,
            });
        }
        let mut next = Some(PendingThread {
            id: 0,
            start: 0,
            start_pc: self.trace.pcs().first().copied().unwrap_or(0),
            spawn_time: 0,
            init_done: 0,
            tu: 0,
            pair: None,
        });
        let mut prev_commit = 0u64;
        let mut processed_end = 0usize;

        while let Some(t) = next.take() {
            if t.start != processed_end {
                return Err(SimError::broken(format!(
                    "window starts at {} but the previous window ended at {processed_end}",
                    t.start
                )));
            }
            let (end, exec_done, doomed) = self.process_window(&t)?;
            processed_end = end;
            let pred_commit = prev_commit;
            let commit_time = exec_done.max(prev_commit);
            prev_commit = commit_time;

            // Retire: free the unit, squash doomed children. A doomed
            // child's order violation is discovered when its spawner
            // *joins* (reaches the start of a different thread), so its
            // unit frees at the spawner's execution end, not its commit.
            self.tus[t.tu].busy = false;
            self.tus[t.tu].free_at = commit_time;
            for d in &doomed {
                self.tus[d.tu].busy = false;
                self.tus[d.tu].free_at = exec_done.max(d.spawn_time);
                self.result.threads_squashed += 1;
            }
            if self.observing {
                for d in &doomed {
                    self.emit(Event::ThreadSquashed {
                        thread: d.id,
                        unit: d.tu as u32,
                        cycle: exec_done.max(d.spawn_time),
                        reason: if d.fault {
                            SquashReason::InjectedFault
                        } else {
                            SquashReason::ControlMisspeculation
                        },
                    });
                }
            }

            let window_len = (end - t.start) as u64;
            self.result.record_thread_size(window_len);
            self.result.threads_committed += 1;
            self.result.committed_instructions += window_len;
            self.result.thread_size_sum += window_len;
            self.result.thread_lifetime_cycles += commit_time - t.spawn_time;
            self.result.cycles = commit_time;
            if self.observing {
                self.emit(Event::ThreadCommitted {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: commit_time,
                    spawn_cycle: t.spawn_time,
                    size: window_len,
                });
            }

            self.apply_dynamic_policies(&t, &doomed, exec_done, window_len, pred_commit);

            if !self.chain.is_empty() {
                next = Some(self.chain.remove(0));
            }
        }

        self.audit(n, processed_end)?;
        for tu in &self.tus {
            let (h, m) = tu.cache.stats();
            self.result.cache_hits += h;
            self.result.cache_misses += m;
        }
        self.finish_metrics();
        Ok(self.result)
    }

    /// The post-run invariant audit: committed windows partition the trace,
    /// the committed stream equals the sequential trace, no thread unit
    /// leaks, and the thread statistics balance.
    fn audit(&self, n: usize, processed_end: usize) -> Result<(), SimError> {
        if processed_end != n {
            return Err(SimError::TracePartition {
                expected: n,
                processed: processed_end,
            });
        }
        if self.result.committed_instructions != n as u64 {
            return Err(SimError::CommitMismatch {
                expected: n as u64,
                committed: self.result.committed_instructions,
            });
        }
        if self.result.thread_size_sum != self.result.committed_instructions {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "thread sizes sum to {} but {} instructions committed",
                    self.result.thread_size_sum, self.result.committed_instructions
                ),
            });
        }
        if let Some(unit) = self.tus.iter().position(|tu| tu.busy) {
            return Err(SimError::ThreadUnitLeak { unit });
        }
        // Every successful spawn either committed or squashed; the root
        // thread committed without a spawn.
        let accounted = self.result.threads_committed + self.result.threads_squashed;
        if accounted != self.result.threads_spawned + 1 {
            return Err(SimError::StatsConservation {
                reason: format!(
                    "{} spawned but {} committed + {} squashed",
                    self.result.threads_spawned,
                    self.result.threads_committed,
                    self.result.threads_squashed
                ),
            });
        }
        if self.result.value_hits > self.result.value_predictions
            || self.result.branch_hits > self.result.branch_predictions
        {
            return Err(SimError::StatsConservation {
                reason: "predictor hits exceed predictions".to_owned(),
            });
        }
        Ok(())
    }

    /// Processes one thread's window; returns `(end, exec_done, doomed
    /// children)`.
    fn process_window(
        &mut self,
        t: &PendingThread,
    ) -> Result<(usize, u64, Vec<DoomedChild>), SimError> {
        let n = self.trace.len();
        let rob = self.cfg.rob_entries;
        let mut rob_ring = vec![0u64; rob];
        // Rename registers: a register-writing instruction needs a free
        // physical register; one frees when the writer holding it commits.
        let renames = self.cfg.phys_regs - specmt_isa::NUM_REGS;
        let mut writer_ring = vec![0u64; renames];
        let mut writer_i = 0usize;
        let mut local_i = 0usize;
        let mut last_commit = t.init_done;
        let mut fetch_cycle = t.init_done;
        let mut slots = 0u32;
        let mut live_in_avail = [None::<u64>; specmt_isa::NUM_REGS];
        let mut doomed: Vec<DoomedChild> = Vec::new();

        let mut k = t.start;
        loop {
            if let Some(front) = self.chain.first() {
                if k == front.start {
                    break;
                }
            }
            if k >= n {
                break;
            }

            let Some(rec) = self.trace.record(k) else {
                return Err(SimError::broken(format!(
                    "dynamic index {k} escaped a trace of length {n}"
                )));
            };
            let inst = *self.trace.inst(k);

            // --- Fetch ---------------------------------------------------
            if local_i >= rob {
                let oldest = rob_ring[local_i % rob];
                if oldest > fetch_cycle {
                    fetch_cycle = oldest;
                    slots = 0;
                }
            }
            let writes_reg = inst.dst().is_some_and(|d| !d.is_zero());
            if writes_reg && writer_i >= renames {
                let oldest = writer_ring[writer_i % renames];
                if oldest > fetch_cycle {
                    fetch_cycle = oldest;
                    slots = 0;
                }
            }
            if slots == self.cfg.fetch_width {
                fetch_cycle += 1;
                slots = 0;
            }
            let f = fetch_cycle;
            slots += 1;

            // --- Spawn ---------------------------------------------------
            if self.is_sp[rec.pc.index()] && self.cfg.thread_units > 1 {
                if let Some(d) = self.try_spawn(t, k, rec.pc, f, &doomed) {
                    doomed.push(d);
                }
            }

            // --- Operand readiness --------------------------------------
            let mut ready = f + 1;
            for (s, src) in inst.srcs().into_iter().enumerate() {
                let Some(r) = src else { continue };
                if r.is_zero() {
                    continue;
                }
                let p = self.deps.reg_producer(k, s);
                if p == NO_PRODUCER {
                    continue;
                }
                let p = p as usize;
                let avail = if p >= t.start {
                    self.complete[p]
                } else {
                    self.live_in_time(t, r, p, &mut live_in_avail)
                };
                ready = ready.max(avail);
            }

            // --- Issue: a port, then a functional unit -------------------
            let tu = &mut self.tus[t.tu];
            let port = min_index(&tu.ports);
            let t1 = ready.max(tu.ports[port]);
            tu.ports[port] = t1 + 1;
            let class = inst.fu_class();
            let units = &mut tu.fu_free[class.index()];
            let unit = min_index(units);
            let t2 = t1.max(units[unit]);
            units[unit] = t2
                + if class.pipelined() {
                    1
                } else {
                    class.latency()
                };
            let mut done = t2 + class.latency();

            // --- Memory --------------------------------------------------
            if inst.is_load() {
                let misses_before = if self.observing { tu.cache.stats().1 } else { 0 };
                let mut data = tu.cache.access(rec.addr, done);
                let cache_hit = !self.observing || tu.cache.stats().1 == misses_before;
                let jitter = self.faults.as_mut().map_or(0, |fi| fi.jitter());
                if jitter > 0 {
                    self.result.fault_jitter_cycles += jitter;
                    data += jitter;
                    if self.observing {
                        self.emit(Event::FaultInjected {
                            thread: t.id,
                            unit: t.tu as u32,
                            cycle: done,
                            kind: FaultKind::CacheJitter { cycles: jitter },
                        });
                    }
                }
                let mp = self.deps.mem_producer(k);
                if mp != NO_PRODUCER {
                    let mp = mp as usize;
                    if mp >= t.start {
                        // Same-thread store-to-load forwarding.
                        data = data.max(self.complete[mp]);
                    } else if self.complete[mp] > t2 {
                        // Violation: the producing store in an earlier
                        // thread executes after this load issued. Squash
                        // and restart here.
                        self.result.violations += 1;
                        let restart =
                            self.complete[mp] + self.cfg.forward_latency + self.cfg.squash_penalty;
                        data = data.max(restart);
                        fetch_cycle = restart;
                        slots = 0;
                        if self.observing {
                            self.emit(Event::ViolationDetected {
                                thread: t.id,
                                unit: t.tu as u32,
                                cycle: t2,
                            });
                        }
                    } else {
                        // Cross-thread forward out of the versioning cache.
                        data = data.max(self.complete[mp] + self.cfg.forward_latency);
                    }
                }
                done = data;
                if self.observing {
                    self.emit(Event::CacheAccess {
                        thread: t.id,
                        unit: t.tu as u32,
                        cycle: done,
                        hit: cache_hit,
                    });
                }
            } else if inst.is_store() {
                tu.cache.touch(rec.addr);
                done = t2 + 1;
            }

            self.complete[k] = done;
            last_commit = last_commit.max(done);
            rob_ring[local_i % rob] = last_commit;
            local_i += 1;
            if writes_reg {
                writer_ring[writer_i % renames] = last_commit;
                writer_i += 1;
            }

            // --- Control-flow redirects ----------------------------------
            if inst.is_cond_branch() {
                self.result.branch_predictions += 1;
                let tu = &mut self.tus[t.tu];
                let pred = tu.gshare.predict(rec.pc);
                tu.gshare.update(rec.pc, rec.taken);
                if pred == rec.taken {
                    self.result.branch_hits += 1;
                    if rec.taken {
                        fetch_cycle = fetch_cycle.max(f + 1);
                        slots = 0;
                    }
                } else {
                    fetch_cycle = fetch_cycle.max(done + self.cfg.mispredict_penalty);
                    slots = 0;
                }
            } else if inst.is_control() {
                fetch_cycle = fetch_cycle.max(f + 1);
                slots = 0;
            }

            k += 1;
        }
        Ok((k, last_commit, doomed))
    }

    /// Availability time of a live-in register value whose producer `p`
    /// lies before the thread's window.
    fn live_in_time(
        &mut self,
        t: &PendingThread,
        reg: specmt_isa::Reg,
        p: usize,
        cache: &mut [Option<u64>; specmt_isa::NUM_REGS],
    ) -> u64 {
        if let Some(v) = cache[reg.index()] {
            return v;
        }
        let forwarded = self.complete[p] + self.cfg.forward_latency;
        let avail = match t.pair {
            // The root thread (no spawn): values flow in program order.
            None => t.init_done.max(forwarded),
            // Every live-in of a spawned thread goes through the value
            // predictor, as in the paper — including values the spawner had
            // already computed (loop invariants, base pointers); those are
            // the predictor's easy hits and part of its reported accuracy.
            Some((sp_pc, cqip_pc)) => match self.cfg.value_predictor {
                ValuePredictorKind::Perfect => t.init_done,
                ValuePredictorKind::None => t.init_done.max(forwarded),
                _ => match self.predictor.as_mut() {
                    // Defensive: a table-backed kind always builds one.
                    None => t.init_done.max(forwarded),
                    Some(predictor) => {
                        let key = PredKey {
                            sp_pc,
                            cqip_pc,
                            reg: reg.index() as u8,
                        };
                        let actual = if p < self.trace.len() {
                            self.trace.result_at(p)
                        } else {
                            0
                        };
                        let mut guess = predictor.predict(key);
                        predictor.train(key, actual);
                        let corrupted =
                            self.faults.as_mut().is_some_and(FaultInjector::roll_corrupt_value);
                        if corrupted {
                            let delta = self.faults.as_mut().map_or(0, FaultInjector::corruption);
                            guess = guess.wrapping_add(delta);
                            self.result.fault_corrupted_values += 1;
                            if self.observing {
                                self.emit(Event::FaultInjected {
                                    thread: t.id,
                                    unit: t.tu as u32,
                                    cycle: t.init_done,
                                    kind: FaultKind::CorruptedValue,
                                });
                            }
                        }
                        self.result.value_predictions += 1;
                        if guess == actual {
                            self.result.value_hits += 1;
                            t.init_done
                        } else {
                            t.init_done.max(forwarded)
                        }
                    }
                },
            },
        };
        cache[reg.index()] = Some(avail);
        avail
    }

    /// Attempts a spawn at dynamic index `k` (an SP occurrence whose static
    /// pc is `pc`) at cycle `f`. Returns a doomed child to record, if the
    /// spawn was a control misspeculation.
    fn try_spawn(
        &mut self,
        t: &PendingThread,
        k: usize,
        pc: Pc,
        f: u64,
        doomed_so_far: &[DoomedChild],
    ) -> Option<DoomedChild> {
        // Chaos: the spawn opportunity is silently lost (a flaky spawn
        // unit), before any candidate is even considered.
        let spawn_dropped = self.faults.as_mut().is_some_and(FaultInjector::roll_drop_spawn);
        if spawn_dropped {
            self.result.fault_dropped_spawns += 1;
            self.result.spawns_declined += 1;
            if self.observing {
                self.emit(Event::FaultInjected {
                    thread: t.id,
                    unit: t.tu as u32,
                    cycle: f,
                    kind: FaultKind::DroppedSpawn,
                });
            }
            return None;
        }
        let reinstate_period = self.cfg.removal.and_then(|p| p.reinstate_after);
        let n_cands = self.table.candidates(pc).len();
        for ci in 0..n_cands {
            let cand = self.table.candidates(pc)[ci];
            let key = (cand.sp.0, cand.cqip.0);
            // One lookup serves both the removal check and the footnote-1
            // reinstatement (a removed pair may cool off and come back).
            if let Some(e) = self.pair_rt.get_mut(&key) {
                if e.removed {
                    let reinstated = reinstate_period
                        .is_some_and(|period| f.saturating_sub(e.removed_at) >= period);
                    if reinstated {
                        e.removed = false;
                        e.alone_count = 0;
                    } else if self.cfg.reassign {
                        continue;
                    } else {
                        self.result.spawns_declined += 1;
                        return None;
                    }
                }
            }
            // Hardware check: a more speculative thread already started at
            // this CQIP.
            let cqip_busy = self
                .chain
                .iter()
                .map(|c| c.start_pc)
                .chain(doomed_so_far.iter().map(|d| d.cqip_pc))
                .any(|start_pc| start_pc == cand.cqip.0);
            if cqip_busy {
                if self.cfg.reassign {
                    continue;
                }
                self.result.spawns_declined += 1;
                return None;
            }
            // A free thread unit at spawn time.
            let Some(tu) =
                (0..self.tus.len()).find(|&i| !self.tus[i].busy && self.tus[i].free_at <= f)
            else {
                self.result.spawns_declined += 1;
                return None;
            };
            self.tus[tu].busy = true;
            self.result.threads_spawned += 1;
            let id = self.next_thread_id;
            self.next_thread_id += 1;
            if self.observing {
                self.emit(Event::ThreadSpawned {
                    thread: id,
                    unit: tu as u32,
                    cycle: f,
                    speculative: true,
                });
            }
            // Chaos: a spontaneous squash kills the child right after the
            // unit was claimed — it burns the unit until its spawner joins,
            // exactly like a control misspeculation, so the committed
            // stream is untouched.
            let forced_squash = self.faults.as_mut().is_some_and(FaultInjector::roll_squash);
            if forced_squash {
                self.result.fault_forced_squashes += 1;
                if self.observing {
                    self.emit(Event::FaultInjected {
                        thread: id,
                        unit: tu as u32,
                        cycle: f,
                        kind: FaultKind::ForcedSquash,
                    });
                }
                return Some(DoomedChild {
                    id,
                    tu,
                    spawn_time: f,
                    cqip_pc: cand.cqip.0,
                    pair: key,
                    fault: true,
                });
            }
            // Oracle: where does this CQIP next occur?
            let next = self.cqip_occurrences.get(&cand.cqip.0).and_then(|list| {
                let pos = list.partition_point(|&o| o as usize <= k);
                list.get(pos).copied()
            });
            // The spawn is a control misspeculation unless the CQIP
            // recurs before the spawner's current immediate successor:
            // hardware discovers the mismatch when the spawner joins a
            // different thread first (e.g. spawning "one more iteration"
            // exactly when the loop exits).
            let bound = self.chain.first().map(|c| c.start);
            let next = next.filter(|&j| bound.is_none_or(|b| (j as usize) < b));
            match next {
                None => {
                    // Control misspeculation: squashed when we join.
                    return Some(DoomedChild {
                        id,
                        tu,
                        spawn_time: f,
                        cqip_pc: cand.cqip.0,
                        pair: key,
                        fault: false,
                    });
                }
                Some(j) => {
                    let child = PendingThread {
                        id,
                        start: j as usize,
                        start_pc: cand.cqip.0,
                        spawn_time: f,
                        init_done: f + 1 + self.cfg.init_overhead,
                        tu,
                        pair: Some(key),
                    };
                    let pos = self.chain.partition_point(|c| c.start < child.start);
                    debug_assert!(
                        self.chain.get(pos).is_none_or(|c| c.start != child.start),
                        "two threads cannot share a start"
                    );
                    self.chain.insert(pos, child);
                    return None;
                }
            }
        }
        self.result.spawns_declined += 1;
        None
    }

    /// Removes every pair whose observed average thread size (squashed
    /// children count as zero) fell below the configured minimum, resetting
    /// the survivors' statistics so they are re-measured under the new pair
    /// mix.
    fn check_min_size_removals(&mut self) {
        let Some(min) = self.cfg.min_observed_size else {
            return;
        };
        // Remove at most the single worst offender per sweep: sizes are a
        // property of the whole pair mix (interleaved spawning shortens
        // everybody), so survivors must be re-measured before judging them.
        // Guilt metric: pairs whose spawns get squashed (doomed fraction)
        // are the offenders; short committed threads are often their
        // victims. Among undersized pairs, remove the most squash-prone,
        // breaking ties by smallest average size.
        let worst = self
            .pair_rt
            .iter()
            .filter(|(_, e)| {
                !e.removed
                    && e.size_samples >= MIN_SIZE_SAMPLES
                    && e.size_sum < u64::from(min) * u64::from(e.size_samples)
            })
            .max_by(|(ka, a), (kb, b)| {
                let za = a.size_zeros as f64 / a.size_samples as f64;
                let zb = b.size_zeros as f64 / b.size_samples as f64;
                let sa = a.size_sum as f64 / a.size_samples as f64;
                let sb = b.size_sum as f64 / b.size_samples as f64;
                // Full ties fall back to the pair key so the pick never
                // depends on map iteration order.
                za.total_cmp(&zb).then(sb.total_cmp(&sa)).then(ka.cmp(kb))
            })
            .map(|(k, _)| *k);
        if let Some(e) = worst.and_then(|key| self.pair_rt.get_mut(&key)) {
            e.removed = true;
            // Minimum-size removals are structural; keep them permanent by
            // pushing the reinstatement clock far out.
            e.removed_at = u64::MAX / 2;
            self.result.pairs_removed += 1;
            for e in self.pair_rt.values_mut() {
                e.size_samples = 0;
                e.size_sum = 0;
                e.size_zeros = 0;
            }
        }
    }

    /// The §4.2 removal mechanisms, applied when a thread retires.
    fn apply_dynamic_policies(
        &mut self,
        t: &PendingThread,
        doomed: &[DoomedChild],
        exec_done: u64,
        window_len: u64,
        pred_commit: u64,
    ) {
        let Some(pair) = t.pair else {
            // The root thread has no pair, but its doomed children still
            // count for the minimum-size policy.
            if self.cfg.min_observed_size.is_some() {
                for d in doomed {
                    let e = self.pair_rt.entry(d.pair).or_default();
                    e.size_samples += 1;
                    e.size_zeros += 1;
                }
                self.check_min_size_removals();
            }
            return;
        };

        // Chaos: condemn the retiring thread's pair as if a dynamic policy
        // had removed it.
        let forced_removal = self.faults.as_mut().is_some_and(FaultInjector::roll_remove_pair);
        if forced_removal {
            let e = self.pair_rt.entry(pair).or_default();
            if !e.removed {
                e.removed = true;
                e.removed_at = exec_done;
                self.result.pairs_removed += 1;
                self.result.fault_forced_removals += 1;
                if self.observing {
                    self.emit(Event::FaultInjected {
                        thread: t.id,
                        unit: t.tu as u32,
                        cycle: exec_done,
                        kind: FaultKind::ForcedRemoval,
                    });
                }
            }
        }

        if let Some(min) = self.cfg.min_observed_size {
            // Squashed children are the ultimate undersized thread: charge
            // them to their pair as zero-size observations.
            for d in doomed {
                let e = self.pair_rt.entry(d.pair).or_default();
                e.size_samples += 1;
                e.size_zeros += 1;
            }
            let e = self.pair_rt.entry(pair).or_default();
            e.size_samples += 1;
            e.size_sum += window_len;
            let _ = min;
            self.check_min_size_removals();
        }

        if let Some(policy) = self.cfg.removal {
            // Time this thread spent as the only active thread: from its
            // init *and* the commit of its predecessor (earlier threads
            // still running mean it is not alone) until its first successor
            // spawned.
            let alone_start = t.init_done.max(pred_commit);
            // "Alone" ends when enough successors have spawned: the first
            // for the strict policy, the (max_companions+1)-th for the
            // few-threads variant the paper also evaluates.
            let mut succ_spawns: Vec<u64> = self
                .chain
                .iter()
                .map(|c| c.spawn_time)
                .chain(doomed.iter().map(|d| d.spawn_time))
                .collect();
            succ_spawns.sort_unstable();
            let alone_until = succ_spawns
                .get(policy.max_companions as usize)
                .copied()
                .unwrap_or(exec_done);
            let alone_end = alone_until.min(exec_done);
            if alone_end > alone_start && alone_end - alone_start > policy.alone_cycles {
                let e = self.pair_rt.entry(pair).or_default();
                if !e.removed {
                    e.alone_count += 1;
                    if e.alone_count >= policy.occurrences {
                        e.removed = true;
                        e.removed_at = alone_end;
                        self.result.pairs_removed += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specmt_isa::{Pc, ProgramBuilder, Reg};
    use specmt_spawn::{PairOrigin, SpawnPair};

    fn pair(sp: u32, cqip: u32) -> SpawnPair {
        SpawnPair {
            sp: Pc(sp),
            cqip: Pc(cqip),
            prob: 1.0,
            avg_dist: 40.0,
            score: 1.0,
            origin: PairOrigin::Profile,
        }
    }

    /// A loop whose iterations are fully independent except the induction
    /// variable (distinct memory blocks per iteration).
    fn independent_loop(n: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        b.bind(top);
        b.shli(Reg::R3, Reg::R1, 6);
        b.add(Reg::R3, Reg::R14, Reg::R3);
        for i in 0..8 {
            b.ld(Reg::R4, Reg::R3, i * 8);
            b.muli(Reg::R4, Reg::R4, 3);
            b.addi(Reg::R4, Reg::R4, 1);
            b.st(Reg::R4, Reg::R3, i * 8);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        Trace::generate(b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn single_threaded_baseline_is_sane() {
        let trace = independent_loop(50);
        let r = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        assert_eq!(r.committed_instructions, trace.len() as u64);
        assert_eq!(r.threads_committed, 1);
        let ipc = r.ipc();
        assert!(ipc > 0.3 && ipc <= 4.0, "ipc {ipc}");
        assert_eq!(r.threads_spawned, 0);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn loop_iteration_spawning_speeds_up() {
        let trace = independent_loop(200);
        let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        // Self pair at the loop head (@3).
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let spec = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert_eq!(spec.committed_instructions, trace.len() as u64);
        assert!(spec.threads_spawned > 100);
        assert!(
            spec.cycles * 2 < baseline.cycles,
            "speculative {} vs baseline {}",
            spec.cycles,
            baseline.cycles
        );
        assert!(spec.avg_active_threads() > 2.0);
    }

    #[test]
    fn empty_table_matches_single_threaded_cycles() {
        let trace = independent_loop(30);
        let a = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        let b = Simulator::new(&trace, SimConfig::paper(16)).run().expect("simulation");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn more_thread_units_never_slow_down_this_loop() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let c4 = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        let c16 = Simulator::with_table(&trace, SimConfig::paper(16), &table).run().expect("simulation");
        assert!(c16.cycles <= c4.cycles);
    }

    #[test]
    fn doomed_spawn_squashes_at_join() {
        // The SP fires on every iteration, but the CQIP (@0, the entry)
        // never executes again: every spawn is a control misspeculation.
        let trace = independent_loop(20);
        let table = SpawnTable::from_pairs(vec![pair(3, 0)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        assert!(r.threads_spawned >= 1);
        assert_eq!(r.threads_squashed, r.threads_spawned);
        assert_eq!(r.committed_instructions, trace.len() as u64);
    }

    #[test]
    fn value_prediction_modes_order_sensibly() {
        let trace = independent_loop(200);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let run = |kind| {
            Simulator::with_table(
                &trace,
                SimConfig::paper(8).with_value_predictor(kind),
                &table,
            )
            .run().expect("simulation")
        };
        let perfect = run(ValuePredictorKind::Perfect);
        let stride = run(ValuePredictorKind::Stride);
        let none = run(ValuePredictorKind::None);
        // The induction variable strides; the stride predictor should be
        // close to perfect, and `none` must be the slowest.
        assert!(perfect.cycles <= stride.cycles);
        assert!(stride.cycles <= none.cycles);
        assert!(stride.value_predictions > 0);
        // Declined spawns leave gaps in the live-in sequence, so even a
        // pure induction variable lands around the paper's ~70 % accuracy.
        assert!(
            stride.value_hit_ratio() > 0.6,
            "{}",
            stride.value_hit_ratio()
        );
    }

    #[test]
    fn serial_memory_chain_triggers_violations_or_stalls() {
        // Each iteration reads the location the previous iteration wrote:
        // cross-thread memory dependences on every spawn.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R14, 0x10000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 100);
        b.bind(top);
        b.ld(Reg::R4, Reg::R14, 0);
        for _ in 0..20 {
            b.muli(Reg::R4, Reg::R4, 3);
        }
        b.st(Reg::R4, Reg::R14, 0);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert!(r.violations > 0, "expected memory violations");
        assert_eq!(r.committed_instructions, trace.len() as u64);
        // The serial chain caps the benefit.
        let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run().expect("simulation");
        assert!(r.cycles * 3 > baseline.cycles);
    }

    #[test]
    fn init_overhead_costs_cycles() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let free = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        let taxed =
            Simulator::with_table(&trace, SimConfig::paper(8).with_init_overhead(8), &table).run().expect("simulation");
        assert!(taxed.cycles > free.cycles);
    }

    #[test]
    fn removal_policy_cancels_imbalanced_pairs() {
        // A pair spanning the whole loop: its thread runs alone for ages.
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // @0
        b.li(Reg::R2, 40); // @1
        b.bind(top);
        for _ in 0..30 {
            b.addi(Reg::R3, Reg::R3, 1);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt(); // @33
        let trace = Trace::generate(b.build().unwrap(), 100_000).unwrap();
        // Spawn the loop exit from the entry: the child waits alone-ish...
        // then the parent (running the whole loop) is the long pole. Use a
        // self-pair with a huge serial chain instead: each child depends on
        // its predecessor through r3, running alone while waiting.
        let table = SpawnTable::from_pairs(vec![pair(2, 2)]);
        let cfg = SimConfig::paper(4)
            .with_value_predictor(ValuePredictorKind::None)
            .with_removal(crate::RemovalPolicy {
                alone_cycles: 10,
                occurrences: 1,
                reinstate_after: None,
                max_companions: 0,
            });
        let r = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert!(r.pairs_removed >= 1, "pair should be removed: {r:?}");
    }

    #[test]
    fn min_observed_size_removes_small_threads() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let mut cfg = SimConfig::paper(8);
        cfg.min_observed_size = Some(100); // iterations are ~36 instructions
        let r = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert_eq!(r.pairs_removed, 1);
        // After removal, spawning stops.
        let unlimited = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        assert!(r.threads_spawned < unlimited.threads_spawned);
    }

    #[test]
    fn branch_predictor_tables_persist_across_threads() {
        let trace = independent_loop(300);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(4), &table).run().expect("simulation");
        // The loop branch is overwhelmingly taken; persistent gshare state
        // should predict it well despite thread switches.
        assert!(r.branch_hit_ratio() > 0.8, "{}", r.branch_hit_ratio());
    }

    /// Straight-line independent code is fetch-bound: doubling the fetch
    /// width must cut cycles substantially.
    #[test]
    fn fetch_width_bounds_straight_line_code() {
        let mut b = ProgramBuilder::new();
        for i in 0..400 {
            // Independent adds across 8 registers.
            let r = Reg::new(1 + (i % 8) as u8).unwrap();
            b.addi(r, r, 1);
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |fetch: u32, issue: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.fetch_width = fetch;
            cfg.issue_width = issue;
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        let narrow = run(1, 4);
        let wide = run(4, 4);
        // Narrow is fetch-bound at 1 IPC; wide is bound by the two simple
        // integer units at ~2 IPC.
        assert!(narrow > wide * 3 / 2, "narrow {narrow} vs wide {wide}");
        assert!(wide < 260, "wide run not FU-bound: {wide}");
        // And at fetch width 1, IPC cannot exceed 1.
        assert!(narrow as usize >= trace.len());
    }

    /// The few-threads removal variant is strictly more trigger-happy than
    /// the strictly-alone policy: it can only remove at least as many
    /// pairs.
    #[test]
    fn few_threads_removal_is_at_least_as_aggressive() {
        let trace = independent_loop(300);
        let table = SpawnTable::from_pairs(vec![pair(3, 3), pair(3, 41)]);
        let base = crate::RemovalPolicy {
            alone_cycles: 5,
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        };
        let strict =
            Simulator::with_table(&trace, SimConfig::paper(8).with_removal(base), &table).run().expect("simulation");
        let few = Simulator::with_table(
            &trace,
            SimConfig::paper(8).with_removal(crate::RemovalPolicy {
                max_companions: 3,
                ..base
            }),
            &table,
        )
        .run().expect("simulation");
        assert!(few.pairs_removed >= strict.pairs_removed);
        assert_eq!(few.committed_instructions, trace.len() as u64);
    }

    /// §4.1's 64 physical registers are a real constraint: shrinking the
    /// rename pool below the in-flight writer count costs cycles.
    #[test]
    fn physical_registers_throttle_renaming() {
        let mut b = ProgramBuilder::new();
        for _ in 0..60 {
            b.muli(Reg::R1, Reg::R1, 3); // long-latency writers pile up
            for i in 0..7 {
                let r = Reg::new(2 + i).unwrap();
                b.addi(r, r, 1);
            }
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |phys: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.phys_regs = phys;
            cfg.rob_entries = 256; // isolate the rename constraint
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        assert!(run(36) > run(64), "36: {} vs 64: {}", run(36), run(64));
        assert!(run(64) >= run(256));
    }

    /// A tiny reorder buffer throttles a long-latency dependency chain's
    /// neighbours: cycles grow when the window shrinks.
    #[test]
    fn rob_pressure_slows_execution() {
        let mut b = ProgramBuilder::new();
        for _ in 0..100 {
            b.muli(Reg::R1, Reg::R1, 3); // 4-cycle serial chain
            for _ in 0..6 {
                b.addi(Reg::R2, Reg::R2, 1); // independent filler
            }
        }
        b.halt();
        let trace = Trace::generate(b.build().unwrap(), 10_000).unwrap();
        let run = |rob: usize| {
            let mut cfg = SimConfig::single_threaded();
            cfg.rob_entries = rob;
            Simulator::new(&trace, cfg).run().expect("simulation").cycles
        };
        assert!(run(4) > run(64), "rob4 {} vs rob64 {}", run(4), run(64));
    }

    /// The init overhead delays the first fetch of every spawned thread;
    /// with one spawn the cycle delta is bounded by the overhead itself.
    #[test]
    fn init_overhead_is_charged_to_the_spawned_thread() {
        let trace = independent_loop(2);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let base = Simulator::with_table(&trace, SimConfig::paper(2), &table).run().expect("simulation");
        let taxed =
            Simulator::with_table(&trace, SimConfig::paper(2).with_init_overhead(40), &table).run().expect("simulation");
        assert!(taxed.cycles >= base.cycles);
        assert!(
            taxed.cycles <= base.cycles + 40 * (base.threads_spawned + 1),
            "overhead over-charged: {} vs {}",
            taxed.cycles,
            base.cycles
        );
    }

    /// Spawns are declined while another active thread already starts at
    /// the same CQIP pc, so at most one next-iteration thread per pc is in
    /// flight per spawner generation.
    #[test]
    fn cqip_conflicts_decline_spawns() {
        let trace = independent_loop(50);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let r = Simulator::with_table(&trace, SimConfig::paper(16), &table).run().expect("simulation");
        assert!(r.spawns_declined > 0, "{r:?}");
        // Committed thread count can never exceed iterations + 1.
        assert!(r.threads_committed <= 51);
    }

    /// Reassign falls back to the second-ranked CQIP once the first is
    /// blocked, so it spawns at least as often as the base policy.
    #[test]
    fn reassign_spawns_at_least_as_often() {
        let trace = independent_loop(100);
        let table = SpawnTable::from_pairs(vec![pair(3, 3), pair(3, 41)]);
        let base = Simulator::with_table(&trace, SimConfig::paper(8), &table).run().expect("simulation");
        let mut cfg = SimConfig::paper(8);
        cfg.reassign = true;
        let re = Simulator::with_table(&trace, cfg, &table).run().expect("simulation");
        assert!(re.threads_spawned >= base.threads_spawned);
        assert_eq!(re.committed_instructions, trace.len() as u64);
    }

    /// Cache locality matters: a scattered access pattern costs more cycles
    /// than a sequential one of identical instruction mix.
    #[test]
    fn cache_misses_cost_cycles() {
        let build = |stride: i64| {
            let mut b = ProgramBuilder::new();
            let top = b.fresh_label("top");
            b.li(Reg::R14, 0x100000);
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 400);
            b.bind(top);
            b.muli(Reg::R3, Reg::R1, stride);
            b.add(Reg::R3, Reg::R14, Reg::R3);
            b.ld(Reg::R4, Reg::R3, 0);
            b.add(Reg::R5, Reg::R5, Reg::R4);
            b.addi(Reg::R1, Reg::R1, 1);
            b.blt(Reg::R1, Reg::R2, top);
            b.halt();
            Trace::generate(b.build().unwrap(), 100_000).unwrap()
        };
        let dense = Simulator::new(&build(8), SimConfig::single_threaded()).run().expect("simulation");
        // 4 KiB stride: every access a fresh block, conflict misses galore.
        let sparse = Simulator::new(&build(4096), SimConfig::single_threaded()).run().expect("simulation");
        // Dense: one miss per four accesses (8B stride in 32B blocks).
        // Sparse: every access misses (4 KiB stride cycles few sets).
        assert!(sparse.cache_misses > dense.cache_misses * 3);
        assert!(sparse.cycles > dense.cycles);
    }

    /// The footnote-1 reinstatement variant: a removed pair comes back
    /// after its cooling period, so more spawns happen than with permanent
    /// removal.
    #[test]
    fn reinstatement_revives_removed_pairs() {
        let trace = independent_loop(400);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        let removal = crate::RemovalPolicy {
            alone_cycles: 1, // hair-trigger: remove almost immediately
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        };
        let permanent =
            Simulator::with_table(&trace, SimConfig::paper(4).with_removal(removal), &table).run().expect("simulation");
        let reinstated = Simulator::with_table(
            &trace,
            SimConfig::paper(4).with_removal(crate::RemovalPolicy {
                reinstate_after: Some(100),
                ..removal
            }),
            &table,
        )
        .run().expect("simulation");
        assert!(permanent.pairs_removed >= 1);
        assert!(
            reinstated.threads_spawned > permanent.threads_spawned,
            "reinstated {} <= permanent {}",
            reinstated.threads_spawned,
            permanent.threads_spawned
        );
        assert_eq!(reinstated.committed_instructions, trace.len() as u64);
    }

    /// Thread lifetimes can never start before their spawner's init and the
    /// aggregate active-thread average stays within the unit count.
    #[test]
    fn active_threads_bounded_by_units() {
        let trace = independent_loop(200);
        let table = SpawnTable::from_pairs(vec![pair(3, 3)]);
        for tus in [2usize, 4, 8] {
            let r = Simulator::with_table(&trace, SimConfig::paper(tus), &table).run().expect("simulation");
            let act = r.avg_active_threads();
            assert!(act <= tus as f64 + 1e-9, "{act} > {tus}");
            assert!(act >= 1.0);
        }
    }
}
