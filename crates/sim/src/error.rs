//! Structured simulation errors.

use std::error::Error;
use std::fmt;

/// Errors produced by [`Simulator::run`](crate::Simulator::run).
///
/// The first two variants reject bad inputs before the simulation starts;
/// the remaining ones report post-run audit failures — the engine checks its
/// own hard invariants after every run (the committed stream must equal the
/// sequential trace, no thread unit may leak, statistics must balance) and
/// reports a violation instead of silently returning wrong numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration is internally inconsistent (zero widths, a cache
    /// with no sets, ...).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The fault plan holds an out-of-range rate or an unparsable spec.
    InvalidFaultPlan {
        /// What was wrong.
        reason: String,
    },
    /// Committed thread windows failed to partition the trace exactly.
    TracePartition {
        /// Dynamic instructions in the trace.
        expected: usize,
        /// Dynamic instructions covered by committed windows.
        processed: usize,
    },
    /// The committed instruction count diverged from the trace length.
    CommitMismatch {
        /// The trace length.
        expected: u64,
        /// Instructions actually committed.
        committed: u64,
    },
    /// A thread unit was still marked busy after the last thread committed.
    ThreadUnitLeak {
        /// Index of the leaked unit.
        unit: usize,
    },
    /// Aggregate statistics failed a conservation law (e.g. spawned ≠
    /// committed + squashed − 1).
    StatsConservation {
        /// Which law was broken, with the observed numbers.
        reason: String,
    },
    /// An internal engine invariant broke mid-run (a dynamic index escaped
    /// the trace, a window went backwards, ...).
    BrokenInvariant {
        /// What broke.
        reason: String,
    },
}

impl SimError {
    pub(crate) fn invalid_config(reason: impl Into<String>) -> SimError {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }

    pub(crate) fn invalid_fault_plan(reason: impl Into<String>) -> SimError {
        SimError::InvalidFaultPlan {
            reason: reason.into(),
        }
    }

    pub(crate) fn broken(reason: impl Into<String>) -> SimError {
        SimError::BrokenInvariant {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulator configuration: {reason}")
            }
            SimError::InvalidFaultPlan { reason } => write!(f, "invalid fault plan: {reason}"),
            SimError::TracePartition {
                expected,
                processed,
            } => write!(
                f,
                "committed windows cover {processed} of {expected} dynamic instructions"
            ),
            SimError::CommitMismatch {
                expected,
                committed,
            } => write!(
                f,
                "committed {committed} instructions but the trace holds {expected}"
            ),
            SimError::ThreadUnitLeak { unit } => {
                write!(f, "thread unit {unit} still busy after the final commit")
            }
            SimError::StatsConservation { reason } => {
                write!(f, "statistics failed conservation: {reason}")
            }
            SimError::BrokenInvariant { reason } => {
                write!(f, "engine invariant broken: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_numbers() {
        let e = SimError::CommitMismatch {
            expected: 100,
            committed: 99,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("100"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
