//! # specmt-sim
//!
//! A trace-driven timing model of the **Clustered Speculative Multithreaded
//! Processor** (Marcuello & González), configured per §4.1 of the HPCA 2002
//! paper:
//!
//! * 4-to-16 thread units, each a 4-wide out-of-order core: fetch up to 4
//!   instructions per cycle or up to the first taken branch, 4-wide issue, a
//!   64-entry reorder buffer, and the paper's functional-unit mix (2 simple
//!   integer, 2 load/store, 1 integer multiplier, 2 FP, 1 FP multiplier,
//!   1 FP divider);
//! * a per-unit 10-bit gshare whose tables persist across thread
//!   assignments;
//! * a per-unit 32 KB 2-way L1 data cache (32-byte blocks, 3-cycle hits,
//!   8-cycle misses, 4 outstanding misses);
//! * inter-thread register communication with configurable value prediction
//!   (perfect / stride / FCM / last-value / none) and a 3-cycle forwarding
//!   latency;
//! * speculative-versioning memory: cross-thread load-store violations
//!   squash and restart the offending thread;
//! * the paper's dynamic policies: spawning-pair removal after executing
//!   alone (§4.2, Figure 5), CQIP reassignment (Figure 6), minimum observed
//!   thread size (Figure 7b) and an 8-cycle thread-initialisation overhead
//!   (§4.3.2, Figure 11).
//!
//! The simulator replays the sequential dynamic [`Trace`] as the oracle:
//! committed thread windows always partition the trace exactly (a tested
//! invariant), so speculation policies change *timing*, never results.
//!
//! [`Trace`]: specmt_trace::Trace
//!
//! # Examples
//!
//! Single-threaded baseline vs. a 16-unit speculative run:
//!
//! ```
//! use specmt_sim::{SimConfig, Simulator};
//! use specmt_spawn::{profile_pairs, ProfileConfig};
//! use specmt_trace::Trace;
//! use specmt_workloads::{ijpeg, Scale};
//!
//! let w = ijpeg(Scale::Small);
//! let trace = Trace::generate(w.program.clone(), w.step_budget)?;
//!
//! let baseline = Simulator::new(&trace, SimConfig::single_threaded()).run()?;
//!
//! let pairs = profile_pairs(&trace, &ProfileConfig::default());
//! let speculative = Simulator::with_table(&trace, SimConfig::paper(16), &pairs.table).run()?;
//!
//! assert!(speculative.cycles <= baseline.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Robustness
//!
//! [`Simulator::run`] returns a [`SimError`] instead of panicking: the
//! configuration is validated up front, and hard model invariants (window
//! partition, commit completeness, thread-unit accounting) are audited after
//! every run. A seeded [`FaultPlan`] can inject deterministic hardware
//! misbehaviour — see the [`faults`](crate::FaultPlan) docs — which the
//! audit must survive.
//!
//! # Observability
//!
//! The engine can narrate a run as structured lifecycle events (spawns,
//! squashes with reasons, commits, violations, cache accesses, injected
//! faults) from the [`obs`] layer: pass a sink to
//! [`Simulator::run_with_sink`], or set [`SimConfig::observe`] to aggregate
//! a [`Metrics`] snapshot onto [`SimResult::metrics`]. Observation never
//! perturbs the simulation — results are bit-identical either way (a tested
//! invariant) — and when disabled costs one branch per emission site.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod config;
mod engine;
mod error;
mod faults;
mod result;

/// Code revision of the timing model, a component of every
/// simresult-namespace store key. Bump on any change that alters cycle
/// counts or statistics for identical inputs (the golden differential
/// suites define "identical"); forgetting to bump serves stale results.
pub const CODE_REV: u32 = 3;

pub use cache::L1Cache;
pub use config::{CacheConfig, ConfigDelta, RemovalPolicy, SimConfig};
pub use engine::{PassTimes, Simulator};
pub use error::SimError;
pub use faults::FaultPlan;
pub use result::SimResult;

pub use specmt_obs as obs;
pub use specmt_obs::{EventSink, Metrics};
