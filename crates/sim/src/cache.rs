//! Per-thread-unit L1 data cache timing model.

use crate::CacheConfig;

/// Tag-word abstraction: the tag store keeps `(tag, stamp)` line pairs in
/// either full-width `u64` or compact `u32` form. The compact form halves
/// the model's memory footprint — the difference between sixteen thread
/// units' tag state thrashing the host cache or staying resident — and is
/// chosen only when the engine can prove every block address and stamp
/// value fits (see [`L1Cache::new_bounded`]), so both forms compute
/// identical hits, misses and LRU victims.
trait TagWord: Copy + PartialEq + Ord {
    /// The invalid-line marker (`MAX`; also the empty MRU-memo sentinel).
    const INVALID: Self;
    fn of(v: u64) -> Self;
}

impl TagWord for u64 {
    const INVALID: u64 = u64::MAX;
    #[inline]
    fn of(v: u64) -> u64 {
        v
    }
}

impl TagWord for u32 {
    const INVALID: u32 = u32::MAX;
    #[inline]
    fn of(v: u64) -> u32 {
        v as u32
    }
}

/// Interleaved `(tag, stamp)` line storage: one set's ways sit in one
/// contiguous run, so a probe touches a single cache line of host memory.
#[derive(Debug, Clone)]
struct TagStore<T> {
    lines: Vec<(T, T)>,
    /// MRU memo: the block and line of the most recent hit or install.
    /// Validated against the line's tag on use, so eviction can never make
    /// it lie; `INVALID` = empty.
    last_block: T,
    last_line: usize,
}

impl<T: TagWord> TagStore<T> {
    fn new(lines: usize) -> TagStore<T> {
        TagStore {
            lines: vec![(T::INVALID, T::of(0)); lines],
            last_block: T::INVALID,
            last_line: 0,
        }
    }

    /// Probes for `block` in the set at `base`, re-stamping on hit and
    /// installing over the LRU way on miss. Returns whether it hit.
    #[inline]
    fn probe(&mut self, block: u64, base: usize, ways: usize, stamp: u64) -> bool {
        let b = T::of(block);
        let st = T::of(stamp);
        // MRU memo: the tag check re-validates it, so an eviction between
        // accesses simply falls through to the full set scan.
        if b == self.last_block && b != T::INVALID && self.lines[self.last_line].0 == b {
            self.lines[self.last_line].1 = st;
            return true;
        }
        let set = &mut self.lines[base..base + ways];
        // One pass both matches tags and tracks the LRU way (first-wins
        // ties, exactly as a separate min-scan over the stamps would).
        let mut lru = 0;
        for way in 0..ways {
            if set[way].0 == b {
                set[way].1 = st;
                self.last_block = b;
                self.last_line = base + way;
                return true;
            }
            if set[way].1 < set[lru].1 {
                lru = way;
            }
        }
        set[lru] = (b, st);
        self.last_block = b;
        self.last_line = base + lru;
        false
    }
}

#[derive(Debug, Clone)]
enum Store {
    Wide(TagStore<u64>),
    Compact(TagStore<u32>),
}

/// A set-associative, non-blocking L1 data cache timing model.
///
/// Tracks tags with LRU replacement and models miss-level parallelism with a
/// fixed number of MSHRs: a miss that finds all MSHRs busy waits for the
/// earliest one to free. Only timing is modelled — data comes from the
/// oracle trace.
///
/// The hot paths are branch-light: power-of-two geometries (the default
/// 32 KiB / 2-way / 32 B one included) index with shifts and masks, a
/// self-validating MRU memo short-circuits consecutive same-block
/// accesses, tag and stamp words are stored interleaved (and compacted to
/// 32 bits when [`L1Cache::new_bounded`] can prove they fit), and store
/// touches can be applied as a batched run ([`L1Cache::touch_run`])
/// instead of one call per access.
///
/// # Examples
///
/// ```
/// use specmt_sim::{CacheConfig, L1Cache};
///
/// let mut c = L1Cache::new(CacheConfig::default());
/// let miss = c.access(0x1000, 100);
/// assert_eq!(miss, 108); // 8-cycle miss
/// let hit = c.access(0x1008, 200); // same 32-byte block
/// assert_eq!(hit, 203); // 3-cycle hit
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `addr >> block_shift` when the block size is a power of two.
    block_shift: Option<u32>,
    /// `block & set_mask` when the set count is a power of two.
    set_mask: Option<u64>,
    store: Store,
    stamp: u64,
    /// Next-free time per MSHR.
    mshr_free: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// Index of the smallest element (first wins ties); 0 for an empty slice.
pub(crate) fn min_index(times: &[u64]) -> usize {
    // Branchless select (lowered to cmov): the comparison outcome is
    // data-dependent and mispredicts badly as a branch in the hot loops.
    // Strict `<` keeps the earliest index on ties.
    let mut best = 0;
    let mut bv = u64::MAX;
    for (i, &v) in times.iter().enumerate() {
        let lt = v < bv;
        best = if lt { i } else { best };
        bv = if lt { v } else { bv };
    }
    best
}

impl L1Cache {
    /// Creates an empty (all-invalid) cache with full-width (`u64`) tags.
    ///
    /// Degenerate geometries (zero ways, blocks or MSHRs) are clamped to one
    /// so the timing model stays total; [`SimConfig::validate`] rejects them
    /// up front for simulation runs.
    ///
    /// [`SimConfig::validate`]: crate::SimConfig::validate
    pub fn new(cfg: CacheConfig) -> L1Cache {
        L1Cache::build(cfg, false)
    }

    /// As [`L1Cache::new`], but selects the compact 32-bit tag store when
    /// the caller proves the bounds fit: every block index this cache will
    /// ever see is at most `max_block`, and at most `max_accesses` calls to
    /// [`access`](L1Cache::access)/[`touch`](L1Cache::touch) will be made.
    /// Within those bounds the two stores are indistinguishable (same hits,
    /// misses, LRU victims and timing); outside them the wide store is
    /// chosen automatically.
    pub fn new_bounded(cfg: CacheConfig, max_block: u64, max_accesses: u64) -> L1Cache {
        let compact = max_block < u64::from(u32::MAX) && max_accesses < u64::from(u32::MAX);
        L1Cache::build(cfg, compact)
    }

    fn build(cfg: CacheConfig, compact: bool) -> L1Cache {
        let mut cfg = cfg;
        cfg.ways = cfg.ways.max(1);
        cfg.block_bytes = cfg.block_bytes.max(1);
        cfg.mshrs = cfg.mshrs.max(1);
        let sets = (cfg.size_bytes / (cfg.ways * cfg.block_bytes)).max(1);
        let lines = sets * cfg.ways;
        L1Cache {
            sets,
            block_shift: cfg
                .block_bytes
                .is_power_of_two()
                .then(|| cfg.block_bytes.trailing_zeros()),
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            store: if compact {
                Store::Compact(TagStore::new(lines))
            } else {
                Store::Wide(TagStore::new(lines))
            },
            stamp: 0,
            mshr_free: vec![0; cfg.mshrs],
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        match self.block_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.block_bytes as u64,
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        match self.set_mask {
            Some(m) => (block & m) as usize,
            None => (block % self.sets as u64) as usize,
        }
    }

    /// Probes (and on miss installs) `block`; returns whether it hit.
    #[inline]
    fn probe(&mut self, block: u64) -> bool {
        self.stamp += 1;
        let base = self.set_of(block) * self.cfg.ways;
        match &mut self.store {
            Store::Wide(s) => s.probe(block, base, self.cfg.ways, self.stamp),
            Store::Compact(s) => s.probe(block, base, self.cfg.ways, self.stamp),
        }
    }

    /// Performs a timing access to `addr` starting at cycle `at`; returns
    /// the cycle the data is available.
    pub fn access(&mut self, addr: u64, at: u64) -> u64 {
        if self.probe_addr(addr) {
            self.hit_time(at)
        } else {
            self.miss_time(at)
        }
    }

    /// The timing-independent half of [`access`](L1Cache::access): probes
    /// (and on miss installs) the block containing `addr`, updating tags,
    /// LRU stamps and the hit/miss statistics exactly as `access` would,
    /// and returns whether it hit. The windowed engine runs these probes as
    /// a batched pass over a window of memory operations, then recovers
    /// `access`'s timing per operation from [`hit_time`](L1Cache::hit_time)
    /// / [`miss_time`](L1Cache::miss_time) inside the timing recurrence.
    #[inline]
    pub(crate) fn probe_addr(&mut self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let hit = self.probe(block);
        self.hits += u64::from(hit);
        self.misses += u64::from(!hit);
        hit
    }

    /// Data-ready time for a probe that hit, starting at cycle `at`.
    #[inline]
    pub(crate) fn hit_time(&self, at: u64) -> u64 {
        at + self.cfg.hit_latency
    }

    /// Data-ready time for a probe that missed: takes the earliest-free
    /// MSHR (waiting for it if all are busy) and occupies it until the
    /// fill returns. The only timing-*dependent* cache state.
    #[inline]
    pub(crate) fn miss_time(&mut self, at: u64) -> u64 {
        let slot = min_index(&self.mshr_free);
        let start = at.max(self.mshr_free[slot]);
        let done = start + self.cfg.miss_latency;
        self.mshr_free[slot] = done;
        done
    }

    /// Installs the block containing `addr` without timing (used for store
    /// allocation).
    pub fn touch(&mut self, addr: u64) {
        let block = self.block_of(addr);
        self.probe(block);
    }

    /// Applies a run of buffered [`touch`](L1Cache::touch)es in order and
    /// clears the buffer.
    ///
    /// Consecutive touches to the same block are coalesced: the repeat
    /// would only re-stamp the line that is already the set's most recent,
    /// and touches carry no timing or statistics, so the observable LRU
    /// order (the *relative* order of line stamps) is unchanged.
    pub fn touch_run(&mut self, run: &mut Vec<u64>) {
        let mut prev = u64::MAX; // sentinel: paired with `first` below
        let mut first = true;
        for addr in run.drain(..) {
            let block = self.block_of(addr);
            if !first && block == prev {
                continue;
            }
            self.probe(block);
            prev = block;
            first = false;
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        // 2 sets x 2 ways x 32B = 128 bytes.
        L1Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            block_bytes: 32,
            hit_latency: 3,
            miss_latency: 8,
            mshrs: 2,
        })
    }

    #[test]
    fn spatial_locality_hits_within_block() {
        let mut c = tiny();
        assert_eq!(c.access(0, 0), 8);
        for off in (8..32).step_by(8) {
            assert_eq!(c.access(off, 10), 13);
        }
        assert_eq!(c.stats(), (3, 1));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (block % 2 == 0): 0, 128, 256.
        c.access(0, 0);
        c.access(128, 10);
        c.access(0, 20); // refresh block 0
        c.access(256, 30); // evicts 128
        assert_eq!(c.access(0, 40), 43); // still resident
        assert_eq!(c.access(128, 50), 58); // was evicted
    }

    #[test]
    fn mshr_contention_serialises_misses() {
        let mut c = tiny();
        // Three simultaneous misses with 2 MSHRs: the third waits.
        let a = c.access(0, 0);
        let b = c.access(32, 0); // other set, also miss
        let d = c.access(64, 0); // set 0 again, third miss
        assert_eq!(a, 8);
        assert_eq!(b, 8);
        assert_eq!(d, 16); // waited for an MSHR freed at 8
    }

    #[test]
    fn touch_installs_for_later_hits() {
        let mut c = tiny();
        c.touch(0x40);
        assert_eq!(c.access(0x40, 100), 103);
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn paper_geometry() {
        let c = L1Cache::new(CacheConfig::default());
        assert_eq!(c.sets, 512);
        match c.store {
            Store::Wide(s) => assert_eq!(s.lines.len(), 1024),
            Store::Compact(_) => panic!("default store is wide"),
        }
    }

    #[test]
    fn non_pow2_geometry_takes_slow_indexing() {
        // 3 sets x 1 way x 24B: neither block size nor set count is a
        // power of two, so the division/modulo paths are exercised.
        let mut c = L1Cache::new(CacheConfig {
            size_bytes: 72,
            ways: 1,
            block_bytes: 24,
            hit_latency: 3,
            miss_latency: 8,
            mshrs: 1,
        });
        assert!(c.block_shift.is_none());
        assert!(c.set_mask.is_none());
        assert_eq!(c.access(0, 0), 8);
        assert_eq!(c.access(23, 10), 13); // same 24B block
        assert_eq!(c.access(24, 20), 28); // next block, other set
        assert_eq!(c.stats(), (1, 2));
    }

    /// The batched run must leave the cache in exactly the state the
    /// one-call-per-touch sequence would (hits/misses and LRU behaviour).
    #[test]
    fn touch_run_matches_sequential_touches() {
        let addrs: Vec<u64> = vec![0, 8, 8, 64, 0, 128, 128, 128, 256, 24];
        let mut seq = tiny();
        for &a in &addrs {
            seq.touch(a);
        }
        let mut batched = tiny();
        let mut run = addrs.clone();
        batched.touch_run(&mut run);
        assert!(run.is_empty());
        // Same residency: probe every block both caches ever saw.
        for &a in &addrs {
            let s = seq.access(a, 1000);
            let b = batched.access(a, 1000);
            assert_eq!(s, b, "addr {a}");
        }
        assert_eq!(seq.stats(), batched.stats());
    }

    /// `probe_addr` + `hit_time`/`miss_time` is exactly `access`, state
    /// and statistics included, over a pseudo-random access mix.
    #[test]
    fn split_probe_and_timing_recompose_access() {
        let mut whole = tiny();
        let mut split = tiny();
        let mut x = 0x5eed_cafe_u64;
        for i in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % 1024;
            let at = (x >> 32) % 500;
            let a = whole.access(addr, at);
            let b = if split.probe_addr(addr) {
                split.hit_time(at)
            } else {
                split.miss_time(at)
            };
            assert_eq!(a, b, "step {i}");
        }
        assert_eq!(whole.stats(), split.stats());
    }

    /// The MRU memo never reports a hit on an evicted block.
    #[test]
    fn mru_memo_survives_eviction() {
        let mut c = tiny();
        c.access(0, 0); // install block 0 (memo now block 0)
        c.access(128, 10); // set 0, other way
        c.access(256, 20); // set 0: evicts block 0 (LRU)
        assert_eq!(c.access(0, 30), 38, "evicted block must miss");
    }

    /// The compact (u32) store is indistinguishable from the wide one
    /// inside its proven bounds: identical timing and statistics over a
    /// pseudo-random access/touch mix.
    #[test]
    fn compact_store_matches_wide() {
        let cfg = CacheConfig {
            size_bytes: 512,
            ways: 2,
            block_bytes: 32,
            hit_latency: 3,
            miss_latency: 8,
            mshrs: 2,
        };
        let mut wide = L1Cache::new(cfg);
        let mut compact = L1Cache::new_bounded(cfg, 1 << 20, 100_000);
        assert!(matches!(compact.store, Store::Compact(_)));
        let mut x = 0xabcd_1234_u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (1 << 14);
            if x & 3 == 0 {
                wide.touch(addr);
                compact.touch(addr);
            } else {
                let at = i * 2;
                assert_eq!(wide.access(addr, at), compact.access(addr, at), "step {i}");
            }
        }
        assert_eq!(wide.stats(), compact.stats());
    }

    /// Bounds that do not fit 32 bits fall back to the wide store.
    #[test]
    fn oversized_bounds_fall_back_to_wide() {
        let c = L1Cache::new_bounded(CacheConfig::default(), u64::from(u32::MAX), 1);
        assert!(matches!(c.store, Store::Wide(_)));
        let c = L1Cache::new_bounded(CacheConfig::default(), 1, u64::from(u32::MAX));
        assert!(matches!(c.store, Store::Wide(_)));
    }
}
