//! Per-thread-unit L1 data cache timing model.

use crate::CacheConfig;

/// A set-associative, non-blocking L1 data cache timing model.
///
/// Tracks tags with LRU replacement and models miss-level parallelism with a
/// fixed number of MSHRs: a miss that finds all MSHRs busy waits for the
/// earliest one to free. Only timing is modelled — data comes from the
/// oracle trace.
///
/// # Examples
///
/// ```
/// use specmt_sim::{CacheConfig, L1Cache};
///
/// let mut c = L1Cache::new(CacheConfig::default());
/// let miss = c.access(0x1000, 100);
/// assert_eq!(miss, 108); // 8-cycle miss
/// let hit = c.access(0x1008, 200); // same 32-byte block
/// assert_eq!(hit, 203); // 3-cycle hit
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `tags[set * ways + way]`: block address or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// Last-use stamp per line, for LRU.
    stamps: Vec<u64>,
    stamp: u64,
    /// Next-free time per MSHR.
    mshr_free: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// Index of the smallest element (first wins ties); 0 for an empty slice.
pub(crate) fn min_index(times: &[u64]) -> usize {
    let mut best = 0;
    for i in 1..times.len() {
        if times[i] < times[best] {
            best = i;
        }
    }
    best
}

impl L1Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// Degenerate geometries (zero ways, blocks or MSHRs) are clamped to one
    /// so the timing model stays total; [`SimConfig::validate`] rejects them
    /// up front for simulation runs.
    ///
    /// [`SimConfig::validate`]: crate::SimConfig::validate
    pub fn new(cfg: CacheConfig) -> L1Cache {
        let mut cfg = cfg;
        cfg.ways = cfg.ways.max(1);
        cfg.block_bytes = cfg.block_bytes.max(1);
        cfg.mshrs = cfg.mshrs.max(1);
        let sets = (cfg.size_bytes / (cfg.ways * cfg.block_bytes)).max(1);
        L1Cache {
            sets,
            tags: vec![u64::MAX; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            stamp: 0,
            mshr_free: vec![0; cfg.mshrs],
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    /// Performs a timing access to `addr` starting at cycle `at`; returns
    /// the cycle the data is available.
    pub fn access(&mut self, addr: u64, at: u64) -> u64 {
        let block = addr / self.cfg.block_bytes as u64;
        let set = (block % self.sets as u64) as usize;
        let base = set * self.cfg.ways;
        self.stamp += 1;
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == block {
                self.stamps[base + way] = self.stamp;
                self.hits += 1;
                return at + self.cfg.hit_latency;
            }
        }
        // Miss: allocate the LRU way and an MSHR.
        self.misses += 1;
        let lru = min_index(&self.stamps[base..base + self.cfg.ways]);
        self.tags[base + lru] = block;
        self.stamps[base + lru] = self.stamp;
        let slot = min_index(&self.mshr_free);
        let free = self.mshr_free[slot];
        let start = at.max(free);
        let done = start + self.cfg.miss_latency;
        self.mshr_free[slot] = done;
        done
    }

    /// Installs the block containing `addr` without timing (used for store
    /// allocation).
    pub fn touch(&mut self, addr: u64) {
        let block = addr / self.cfg.block_bytes as u64;
        let set = (block % self.sets as u64) as usize;
        let base = set * self.cfg.ways;
        self.stamp += 1;
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == block {
                self.stamps[base + way] = self.stamp;
                return;
            }
        }
        let lru = min_index(&self.stamps[base..base + self.cfg.ways]);
        self.tags[base + lru] = block;
        self.stamps[base + lru] = self.stamp;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        // 2 sets x 2 ways x 32B = 128 bytes.
        L1Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            block_bytes: 32,
            hit_latency: 3,
            miss_latency: 8,
            mshrs: 2,
        })
    }

    #[test]
    fn spatial_locality_hits_within_block() {
        let mut c = tiny();
        assert_eq!(c.access(0, 0), 8);
        for off in (8..32).step_by(8) {
            assert_eq!(c.access(off, 10), 13);
        }
        assert_eq!(c.stats(), (3, 1));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (block % 2 == 0): 0, 128, 256.
        c.access(0, 0);
        c.access(128, 10);
        c.access(0, 20); // refresh block 0
        c.access(256, 30); // evicts 128
        assert_eq!(c.access(0, 40), 43); // still resident
        assert_eq!(c.access(128, 50), 58); // was evicted
    }

    #[test]
    fn mshr_contention_serialises_misses() {
        let mut c = tiny();
        // Three simultaneous misses with 2 MSHRs: the third waits.
        let a = c.access(0, 0);
        let b = c.access(32, 0); // other set, also miss
        let d = c.access(64, 0); // set 0 again, third miss
        assert_eq!(a, 8);
        assert_eq!(b, 8);
        assert_eq!(d, 16); // waited for an MSHR freed at 8
    }

    #[test]
    fn touch_installs_for_later_hits() {
        let mut c = tiny();
        c.touch(0x40);
        assert_eq!(c.access(0x40, 100), 103);
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn paper_geometry() {
        let c = L1Cache::new(CacheConfig::default());
        assert_eq!(c.sets, 512);
        assert_eq!(c.tags.len(), 1024);
    }
}
