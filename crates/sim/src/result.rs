//! Simulation results.

use specmt_obs::{ExpectedTotals, Metrics};

/// Aggregate statistics from one simulation run.
///
/// `cycles` against a [`SimConfig::single_threaded`] run of the same trace
/// yields the paper's speed-up numbers; the remaining fields feed the other
/// figures (active threads, thread sizes, value-prediction accuracy,
/// removal/squash accounting).
///
/// [`SimConfig::single_threaded`]: crate::SimConfig::single_threaded
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Total execution time in cycles (commit time of the last thread).
    pub cycles: u64,
    /// Committed instructions (always the full trace length).
    pub committed_instructions: u64,
    /// Threads that committed (including the initial non-speculative one).
    pub threads_committed: u64,
    /// Speculative threads spawned (successful spawns).
    pub threads_spawned: u64,
    /// Spawned threads squashed as control misspeculations (their CQIP was
    /// never reached).
    pub threads_squashed: u64,
    /// Spawn opportunities declined (no free thread unit, CQIP already
    /// active, or the pair was removed).
    pub spawns_declined: u64,
    /// Spawn opportunities declined by an adaptive gate specifically —
    /// low branch-predictor confidence or a scoreboard-demoted pair. A
    /// subset of `spawns_declined`; zero unless the spawn table carries an
    /// `AdaptivePolicy`.
    pub spawns_gated: u64,
    /// Memory-dependence violations (squash-and-restart events).
    pub violations: u64,
    /// Live-in values predicted by the realistic predictor.
    pub value_predictions: u64,
    /// Correct live-in predictions.
    pub value_hits: u64,
    /// Conditional branches predicted.
    pub branch_predictions: u64,
    /// Correct conditional-branch predictions.
    pub branch_hits: u64,
    /// L1 data-cache hits, summed over thread units.
    pub cache_hits: u64,
    /// L1 data-cache misses, summed over thread units.
    pub cache_misses: u64,
    /// Spawning pairs removed by the dynamic policies.
    pub pairs_removed: u64,
    /// Spawning pairs permanently demoted by the adaptive scoreboard (a
    /// runtime blacklist, distinct from the removal policy's
    /// `pairs_removed`); zero unless the policy sets a demote threshold.
    pub pairs_demoted: u64,
    /// Sum over committed threads of their lifetime (spawn to commit), in
    /// cycles; divided by `cycles` this is the average number of active
    /// threads (Figure 4).
    pub thread_lifetime_cycles: u64,
    /// Sum of committed thread sizes in instructions (equals
    /// `committed_instructions`; kept for clarity of the Figure 7a average).
    pub thread_size_sum: u64,
    /// Histogram of committed thread sizes: bucket `i` counts threads of
    /// `2^i ..= 2^(i+1)-1` instructions (bucket 0 holds sizes 0 and 1).
    /// Averages hide the fragmentation the paper's Figure 7a is about; the
    /// histogram (and [`SimResult::median_thread_size`]) shows it.
    pub thread_size_histogram: Vec<u64>,
    /// Spawn opportunities dropped by the fault injector.
    pub fault_dropped_spawns: u64,
    /// Successful spawns spontaneously squashed by the fault injector (also
    /// counted in `threads_squashed`).
    pub fault_forced_squashes: u64,
    /// Value-predictor guesses corrupted by the fault injector.
    pub fault_corrupted_values: u64,
    /// Total extra load latency injected as cache jitter, in cycles.
    pub fault_jitter_cycles: u64,
    /// Spawning pairs forcibly removed by the fault injector (also counted
    /// in `pairs_removed`).
    pub fault_forced_removals: u64,
    /// Metrics snapshot aggregated from the run's event stream when
    /// `SimConfig::observe` was set; `None` otherwise. Excluded from
    /// [`SimResult::observed_totals`]-style equality concerns: strip it
    /// (set to `None`) before comparing an observed run against an
    /// unobserved one.
    pub metrics: Option<Metrics>,
}

serde::impl_serde_struct!(SimResult {
    cycles,
    committed_instructions,
    threads_committed,
    threads_spawned,
    threads_squashed,
    spawns_declined,
    spawns_gated,
    violations,
    value_predictions,
    value_hits,
    branch_predictions,
    branch_hits,
    cache_hits,
    cache_misses,
    pairs_removed,
    pairs_demoted,
    thread_lifetime_cycles,
    thread_size_sum,
    thread_size_histogram,
    fault_dropped_spawns,
    fault_forced_squashes,
    fault_corrupted_values,
    fault_jitter_cycles,
    fault_forced_removals,
    metrics,
});

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Average number of simultaneously-active threads (Figure 4).
    pub fn avg_active_threads(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_lifetime_cycles as f64 / self.cycles as f64
        }
    }

    /// Average committed thread size in instructions (Figure 7a).
    pub fn avg_thread_size(&self) -> f64 {
        if self.threads_committed == 0 {
            0.0
        } else {
            self.thread_size_sum as f64 / self.threads_committed as f64
        }
    }

    /// Records one committed thread size into the histogram.
    pub(crate) fn record_thread_size(&mut self, size: u64) {
        let bucket = 64 - size.max(1).leading_zeros() as usize - 1;
        if self.thread_size_histogram.len() <= bucket {
            self.thread_size_histogram.resize(bucket + 1, 0);
        }
        self.thread_size_histogram[bucket] += 1;
    }

    /// Approximate median committed thread size (the midpoint of the median
    /// histogram bucket); zero when no threads committed.
    ///
    /// Averages are dominated by a few giant threads; the paper's
    /// Figure 7a observation — "thread size for most of the benchmarks is
    /// smaller than 32" — is about the typical thread, which this captures.
    pub fn median_thread_size(&self) -> f64 {
        let total: u64 = self.thread_size_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut seen = 0u64;
        for (bucket, &n) in self.thread_size_histogram.iter().enumerate() {
            seen += n;
            if seen * 2 >= total {
                // Midpoint of [2^bucket, 2^(bucket+1)).
                return 1.5 * (1u64 << bucket) as f64;
            }
        }
        0.0
    }

    /// Live-in value-prediction hit ratio (Figures 9a, 10a); zero when
    /// nothing was predicted.
    pub fn value_hit_ratio(&self) -> f64 {
        if self.value_predictions == 0 {
            0.0
        } else {
            self.value_hits as f64 / self.value_predictions as f64
        }
    }

    /// The totals an event-stream [`audit`](specmt_obs::audit) of this
    /// run must reproduce — the bridge between the engine's ad-hoc
    /// counters and the observability layer's conservation laws.
    pub fn observed_totals(&self) -> ExpectedTotals {
        ExpectedTotals {
            threads_spawned: self.threads_spawned,
            threads_committed: self.threads_committed,
            threads_squashed: self.threads_squashed,
            violations: self.violations,
            committed_instructions: self.committed_instructions,
            spawns_gated: self.spawns_gated,
            pairs_demoted: self.pairs_demoted,
        }
    }

    /// Conditional-branch prediction accuracy.
    pub fn branch_hit_ratio(&self) -> f64 {
        if self.branch_predictions == 0 {
            0.0
        } else {
            self.branch_hits as f64 / self.branch_predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let r = SimResult::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_active_threads(), 0.0);
        assert_eq!(r.avg_thread_size(), 0.0);
        assert_eq!(r.value_hit_ratio(), 0.0);
        assert_eq!(r.branch_hit_ratio(), 0.0);
    }

    #[test]
    fn histogram_and_median() {
        let mut r = SimResult::default();
        for size in [1u64, 2, 3, 30, 31, 33, 1000] {
            r.record_thread_size(size);
        }
        // Buckets: 1 -> b0, {2,3} -> b1, {30,31} -> b4, 33 -> b5, 1000 -> b9.
        assert_eq!(r.thread_size_histogram[0], 1);
        assert_eq!(r.thread_size_histogram[1], 2);
        assert_eq!(r.thread_size_histogram[4], 2);
        assert_eq!(r.thread_size_histogram[5], 1);
        assert_eq!(r.thread_size_histogram[9], 1);
        // Median element is the 4th of 7 -> bucket 4 -> midpoint 24.
        assert_eq!(r.median_thread_size(), 24.0);
        assert_eq!(SimResult::default().median_thread_size(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let r = SimResult {
            cycles: 100,
            committed_instructions: 250,
            threads_committed: 5,
            thread_lifetime_cycles: 300,
            thread_size_sum: 250,
            value_predictions: 10,
            value_hits: 7,
            branch_predictions: 40,
            branch_hits: 36,
            ..SimResult::default()
        };
        assert_eq!(r.ipc(), 2.5);
        assert_eq!(r.avg_active_threads(), 3.0);
        assert_eq!(r.avg_thread_size(), 50.0);
        assert_eq!(r.value_hit_ratio(), 0.7);
        assert_eq!(r.branch_hit_ratio(), 0.9);
    }
}
