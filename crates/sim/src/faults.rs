//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes a seeded, reproducible storm of hardware
//! misbehaviour for one simulation run: spontaneous thread squashes, dropped
//! spawns, value-predictor corruption, cache-latency jitter and forced
//! spawning-pair removals. Every fault decision is drawn from a single
//! splitmix64 stream owned by the engine, so the same plan over the same
//! trace produces bit-identical results — the crash (or, rather, the
//! *absence* of one) is always replayable from the seed.
//!
//! Faults only perturb *timing and policy* decisions, never the committed
//! architectural stream: a squashed child simply never detaches its window,
//! a corrupted prediction costs a forwarding stall, jitter delays a load.
//! The engine's post-run audit (see [`SimError`](crate::SimError)) therefore
//! must still hold under any plan; the chaos suite exercises exactly that.

use crate::SimError;

/// A seeded fault-injection plan.
///
/// All rates are probabilities in `[0, 1]` applied per opportunity; `0`
/// disables the corresponding fault. The default plan injects nothing.
///
/// # Examples
///
/// ```
/// use specmt_sim::FaultPlan;
///
/// let plan = FaultPlan::parse("seed=7,squash=0.05,jitter=4")?;
/// assert_eq!(plan.seed, 7);
/// assert_eq!(plan.cache_jitter, 4);
/// assert!(plan.is_active());
/// # Ok::<(), specmt_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the fault stream; same seed, same faults.
    pub seed: u64,
    /// Probability that a successful spawn is spontaneously squashed (the
    /// child burns its unit until the spawner joins, like a control
    /// misspeculation).
    pub squash_rate: f64,
    /// Probability that a spawn opportunity is dropped outright before any
    /// candidate is considered.
    pub drop_spawn_rate: f64,
    /// Probability that a realistic value-predictor guess is corrupted
    /// before it is compared against the architectural value.
    pub corrupt_value_rate: f64,
    /// Maximum extra cycles added to each load's cache latency (a uniform
    /// draw in `0..=cache_jitter`; 0 disables jitter).
    pub cache_jitter: u64,
    /// Probability that a retiring thread's pair is forcibly removed, as if
    /// a dynamic policy had condemned it.
    pub remove_pair_rate: f64,
}

serde::impl_serde_struct!(FaultPlan {
    seed,
    squash_rate,
    drop_spawn_rate,
    corrupt_value_rate,
    cache_jitter,
    remove_pair_rate,
});

impl specmt_store::Fingerprint for FaultPlan {
    fn fingerprint(&self, h: &mut specmt_store::FingerprintHasher) {
        h.struct_tag("FaultPlan");
        h.u64(self.seed);
        h.f64(self.squash_rate);
        h.f64(self.drop_spawn_rate);
        h.f64(self.corrupt_value_rate);
        h.u64(self.cache_jitter);
        h.f64(self.remove_pair_rate);
    }
}

impl FaultPlan {
    /// An inactive plan carrying only a seed (useful as a parse/merge base).
    pub fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault can actually fire.
    pub fn is_active(&self) -> bool {
        self.squash_rate > 0.0
            || self.drop_spawn_rate > 0.0
            || self.corrupt_value_rate > 0.0
            || self.cache_jitter > 0
            || self.remove_pair_rate > 0.0
    }

    /// Checks every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] for a rate outside `[0, 1]`
    /// or a non-finite rate.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, rate) in [
            ("squash", self.squash_rate),
            ("drop", self.drop_spawn_rate),
            ("corrupt", self.corrupt_value_rate),
            ("remove", self.remove_pair_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::invalid_fault_plan(format!(
                    "rate `{name}` is {rate}, expected a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Parses the CLI spec format: comma-separated `key=value` entries with
    /// keys `seed`, `squash`, `drop`, `corrupt`, `jitter` and `remove`, e.g.
    /// `seed=42,squash=0.01,drop=0.02,corrupt=0.1,jitter=3,remove=0.005`.
    /// Omitted keys stay at their inactive defaults.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] for malformed entries, unknown
    /// keys, unparsable numbers or out-of-range rates.
    pub fn parse(spec: &str) -> Result<FaultPlan, SimError> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((key, value)) = entry.split_once('=') else {
                return Err(SimError::invalid_fault_plan(format!(
                    "entry `{entry}` is not key=value"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| {
                v.parse::<f64>().map_err(|_| {
                    SimError::invalid_fault_plan(format!("`{key}={v}`: not a number"))
                })
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| {
                        SimError::invalid_fault_plan(format!(
                            "`seed={value}`: not an unsigned integer"
                        ))
                    })?;
                }
                "jitter" => {
                    plan.cache_jitter = value.parse().map_err(|_| {
                        SimError::invalid_fault_plan(format!(
                            "`jitter={value}`: not an unsigned integer"
                        ))
                    })?;
                }
                "squash" => plan.squash_rate = rate(value)?,
                "drop" => plan.drop_spawn_rate = rate(value)?,
                "corrupt" => plan.corrupt_value_rate = rate(value)?,
                "remove" => plan.remove_pair_rate = rate(value)?,
                other => {
                    return Err(SimError::invalid_fault_plan(format!(
                        "unknown key `{other}` (expected seed, squash, drop, corrupt, jitter \
                         or remove)"
                    )));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// The engine's fault decision stream: a splitmix64 generator drawing every
/// roll in a fixed order, so runs are reproducible from the plan alone.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    state: u64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            // Decorrelate nearby seeds before the first draw.
            state: plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw. A zero rate consumes no randomness so inactive
    /// fault classes never perturb the stream of active ones.
    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate
    }

    pub(crate) fn roll_drop_spawn(&mut self) -> bool {
        let r = self.plan.drop_spawn_rate;
        self.roll(r)
    }

    pub(crate) fn roll_squash(&mut self) -> bool {
        let r = self.plan.squash_rate;
        self.roll(r)
    }

    pub(crate) fn roll_corrupt_value(&mut self) -> bool {
        let r = self.plan.corrupt_value_rate;
        self.roll(r)
    }

    pub(crate) fn roll_remove_pair(&mut self) -> bool {
        let r = self.plan.remove_pair_rate;
        self.roll(r)
    }

    /// Extra load latency in `0..=cache_jitter` (0 when jitter is off).
    pub(crate) fn jitter(&mut self) -> u64 {
        if self.plan.cache_jitter == 0 {
            return 0;
        }
        self.next_u64() % (self.plan.cache_jitter + 1)
    }

    /// A non-zero delta used to corrupt a predicted value.
    pub(crate) fn corruption(&mut self) -> u64 {
        self.next_u64() | 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_valid() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        p.validate().unwrap();
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=42, squash=0.01,drop=0.02,corrupt=0.1,jitter=3,remove=0.005")
            .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.squash_rate, 0.01);
        assert_eq!(p.drop_spawn_rate, 0.02);
        assert_eq!(p.corrupt_value_rate, 0.1);
        assert_eq!(p.cache_jitter, 3);
        assert_eq!(p.remove_pair_rate, 0.005);
        assert!(p.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "seed",
            "seed=abc",
            "squash=2.0",
            "squash=-0.1",
            "squash=NaN",
            "wibble=1",
            "jitter=-3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn parse_empty_is_inactive() {
        let p = FaultPlan::parse("").unwrap();
        assert!(!p.is_active());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan {
            seed: 9,
            squash_rate: 0.5,
            cache_jitter: 7,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..1000 {
            assert_eq!(a.roll_squash(), b.roll_squash());
            assert_eq!(a.jitter(), b.jitter());
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            seed: 1,
            drop_spawn_rate: 0.25,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let hits = (0..10_000).filter(|_| inj.roll_drop_spawn()).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 3,
            cache_jitter: 5,
            ..FaultPlan::default()
        });
        for _ in 0..1000 {
            assert!(inj.jitter() <= 5);
        }
    }

    #[test]
    fn zero_rates_consume_no_randomness() {
        let active = FaultPlan {
            seed: 4,
            squash_rate: 0.5,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(active);
        let mut b = FaultInjector::new(active);
        // Interleaving disabled rolls must not shift the active stream.
        let seq_a: Vec<bool> = (0..100).map(|_| a.roll_squash()).collect();
        let seq_b: Vec<bool> = (0..100)
            .map(|_| {
                let _ = b.roll_drop_spawn();
                let _ = b.roll_remove_pair();
                b.roll_squash()
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }
}
