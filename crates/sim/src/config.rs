//! Simulator configuration.

use specmt_predict::ValuePredictorKind;
use specmt_store::{Fingerprint, FingerprintHasher};

use crate::{FaultPlan, SimError};

/// First-level data cache parameters (per thread unit).
///
/// Defaults are the paper's: 32 KB, 2-way, 32-byte blocks, 3-cycle hits,
/// 8-cycle misses, up to 4 outstanding misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss latency in cycles.
    pub miss_latency: u64,
    /// Maximum outstanding misses (MSHRs).
    pub mshrs: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            block_bytes: 32,
            hit_latency: 3,
            miss_latency: 8,
            mshrs: 4,
        }
    }
}

/// The §4.2 dynamic spawning-pair removal mechanism: a pair is cancelled
/// once its threads have executed *alone* for longer than a threshold, a
/// configurable number of times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovalPolicy {
    /// Cycles a thread must execute alone to count one occurrence
    /// (Figure 5a evaluates 50 and 200).
    pub alone_cycles: u64,
    /// Occurrences before the pair is removed (Figure 5b evaluates 1, 8 and
    /// 16; 1 removes on first sight).
    pub occurrences: u32,
    /// Reinstate a removed pair after this many cycles (`None` = removal is
    /// permanent). The paper's footnote 1 in §4.2 evaluates this variant
    /// and reports "very small improvements"; it is provided for
    /// experimentation.
    pub reinstate_after: Option<u64>,
    /// Count a thread as "alone" while at most this many companion threads
    /// are active (0 = strictly alone, the default). §4.2 also evaluates
    /// removal when a thread executes "with just a few threads instead of
    /// just one" and reports a small average improvement.
    pub max_companions: u32,
}

impl RemovalPolicy {
    /// The paper's most aggressive scheme: remove on the first 50-cycle
    /// solo.
    pub fn aggressive() -> RemovalPolicy {
        RemovalPolicy {
            alone_cycles: 50,
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        }
    }

    /// The paper's best-overall scheme: remove on the first 200-cycle solo.
    pub fn relaxed() -> RemovalPolicy {
        RemovalPolicy {
            alone_cycles: 200,
            occurrences: 1,
            reinstate_after: None,
            max_companions: 0,
        }
    }
}

/// Full simulator configuration.
///
/// [`SimConfig::paper`] reproduces §4.1 with a given thread-unit count;
/// [`SimConfig::single_threaded`] is the sequential baseline every speed-up
/// in the paper is measured against.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of thread units (1 disables speculation entirely).
    pub thread_units: usize,
    /// Instructions fetched per cycle (up to the first taken branch).
    pub fetch_width: u32,
    /// Issue width per thread unit.
    pub issue_width: usize,
    /// Reorder-buffer entries per thread unit.
    pub rob_entries: usize,
    /// Physical registers per thread unit (§4.1 lists 64): in-flight
    /// register-writing instructions are limited to
    /// `phys_regs - NUM_REGS` rename registers.
    pub phys_regs: usize,
    /// Branch misprediction redirect penalty beyond resolution, in cycles.
    pub mispredict_penalty: u64,
    /// gshare history bits (the paper uses 10).
    pub gshare_bits: u32,
    /// L1 data cache configuration.
    pub cache: CacheConfig,
    /// Live-in value predictor.
    pub value_predictor: ValuePredictorKind,
    /// Value predictor storage budget in bytes (the paper uses 16 KB).
    pub predictor_budget: usize,
    /// Thread initialisation overhead charged to every spawned thread
    /// (§4.3.2 evaluates 8 cycles).
    pub init_overhead: u64,
    /// Latency of forwarding a register or memory value between thread
    /// units (3 cycles in the paper).
    pub forward_latency: u64,
    /// Refetch penalty after a memory-dependence violation squash.
    pub squash_penalty: u64,
    /// Dynamic spawning-pair removal (§4.2), or `None` to never remove.
    pub removal: Option<RemovalPolicy>,
    /// The reassign policy (Figure 6): on a blocked or removed best CQIP,
    /// fall back to the next-ranked candidate for the same spawning point.
    pub reassign: bool,
    /// Remove pairs whose committed threads are smaller than this
    /// (Figure 7b enforces 32).
    pub min_observed_size: Option<u32>,
    /// Deterministic fault injection for chaos testing (`None` = a faultless
    /// machine, the default).
    pub faults: Option<FaultPlan>,
    /// Aggregate a [`Metrics`](specmt_obs::Metrics) snapshot from the run's
    /// event stream onto `SimResult::metrics`. Off by default; observation
    /// never changes the simulated timing or statistics (a tested
    /// invariant).
    pub observe: bool,
}

impl Fingerprint for CacheConfig {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("CacheConfig");
        h.u64(self.size_bytes as u64);
        h.u64(self.ways as u64);
        h.u64(self.block_bytes as u64);
        h.u64(self.hit_latency);
        h.u64(self.miss_latency);
        h.u64(self.mshrs as u64);
    }
}

impl Fingerprint for RemovalPolicy {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("RemovalPolicy");
        h.u64(self.alone_cycles);
        h.u64(u64::from(self.occurrences));
        self.reinstate_after.fingerprint(h);
        h.u64(u64::from(self.max_companions));
    }
}

/// The fingerprint covers every field that can alter simulated timing or
/// statistics — including `observe`, because the metrics snapshot rides on
/// the `SimResult` an entry stores, and `faults`, so chaos runs can never
/// alias a faultless entry. The value-predictor kind is hashed as a stable
/// name (it is a foreign type, so it cannot implement [`Fingerprint`]
/// itself).
impl Fingerprint for SimConfig {
    fn fingerprint(&self, h: &mut FingerprintHasher) {
        h.struct_tag("SimConfig");
        h.u64(self.thread_units as u64);
        h.u64(u64::from(self.fetch_width));
        h.u64(self.issue_width as u64);
        h.u64(self.rob_entries as u64);
        h.u64(self.phys_regs as u64);
        h.u64(self.mispredict_penalty);
        h.u64(u64::from(self.gshare_bits));
        self.cache.fingerprint(h);
        h.str(match self.value_predictor {
            ValuePredictorKind::Perfect => "perfect",
            ValuePredictorKind::LastValue => "last-value",
            ValuePredictorKind::Stride => "stride",
            ValuePredictorKind::Fcm => "fcm",
            ValuePredictorKind::Hybrid => "hybrid",
            ValuePredictorKind::None => "none",
        });
        h.u64(self.predictor_budget as u64);
        h.u64(self.init_overhead);
        h.u64(self.forward_latency);
        h.u64(self.squash_penalty);
        self.removal.fingerprint(h);
        h.bool(self.reassign);
        self.min_observed_size.fingerprint(h);
        self.faults.fingerprint(h);
        h.bool(self.observe);
    }
}

impl SimConfig {
    /// The paper's §4.1 configuration with `thread_units` units, perfect
    /// value prediction, no init overhead and no removal — the Figure 3
    /// baseline setup.
    pub fn paper(thread_units: usize) -> SimConfig {
        SimConfig {
            thread_units,
            fetch_width: 4,
            issue_width: 4,
            rob_entries: 64,
            phys_regs: 64,
            mispredict_penalty: 3,
            gshare_bits: 10,
            cache: CacheConfig::default(),
            value_predictor: ValuePredictorKind::Perfect,
            predictor_budget: specmt_predict::PAPER_BUDGET_BYTES,
            init_overhead: 0,
            forward_latency: 3,
            squash_penalty: 5,
            removal: None,
            reassign: false,
            min_observed_size: None,
            faults: None,
            observe: false,
        }
    }

    /// The sequential baseline: one thread unit, no speculation.
    pub fn single_threaded() -> SimConfig {
        SimConfig::paper(1)
    }

    /// Returns the configuration with a different value predictor.
    pub fn with_value_predictor(mut self, kind: ValuePredictorKind) -> SimConfig {
        self.value_predictor = kind;
        self
    }

    /// Returns the configuration with a thread-initialisation overhead.
    pub fn with_init_overhead(mut self, cycles: u64) -> SimConfig {
        self.init_overhead = cycles;
        self
    }

    /// Returns the configuration with a removal policy.
    pub fn with_removal(mut self, policy: RemovalPolicy) -> SimConfig {
        self.removal = Some(policy);
        self
    }

    /// Returns the configuration with a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> SimConfig {
        self.faults = Some(plan);
        self
    }

    /// Returns the configuration with metrics aggregation on or off.
    pub fn with_observe(mut self, on: bool) -> SimConfig {
        self.observe = on;
        self
    }

    /// Returns the configuration with a sequence of [`ConfigDelta`]s
    /// applied in order.
    pub fn with_deltas(mut self, deltas: &[ConfigDelta]) -> SimConfig {
        for d in deltas {
            d.apply(&mut self);
        }
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any width or size is zero (or
    /// the rename pool cannot cover the architectural file), and
    /// [`SimError::InvalidFaultPlan`] for an out-of-range fault rate.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = SimError::invalid_config;
        if self.thread_units < 1 {
            return Err(bad("need at least one thread unit"));
        }
        if self.fetch_width < 1 {
            return Err(bad("fetch width must be positive"));
        }
        if self.issue_width < 1 {
            return Err(bad("issue width must be positive"));
        }
        if self.rob_entries < 1 {
            return Err(bad("rob must hold at least one entry"));
        }
        if self.phys_regs <= specmt_isa::NUM_REGS {
            return Err(SimError::invalid_config(format!(
                "{} physical registers cannot rename beyond the {} architectural ones",
                self.phys_regs,
                specmt_isa::NUM_REGS
            )));
        }
        if self.cache.ways < 1 || self.cache.block_bytes < 8 {
            return Err(bad("cache needs >= 1 way and >= 8-byte blocks"));
        }
        if self.cache.size_bytes < self.cache.ways * self.cache.block_bytes {
            return Err(bad("cache must hold at least one set"));
        }
        if self.cache.mshrs < 1 {
            return Err(bad("cache needs at least one MSHR"));
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        Ok(())
    }
}

/// One declarative modification to a [`SimConfig`].
///
/// Experiments are naturally described as a base configuration plus small
/// per-column deltas ("the paper machine, but with a stride predictor and an
/// 8-cycle init overhead"); this type makes that delta a value the bench
/// layer's experiment specs can store, compare and replay, instead of a
/// closure.
///
/// # Examples
///
/// ```
/// use specmt_sim::{ConfigDelta, RemovalPolicy, SimConfig};
///
/// let cfg = SimConfig::paper(16).with_deltas(&[
///     ConfigDelta::InitOverhead(8),
///     ConfigDelta::Removal(Some(RemovalPolicy::relaxed())),
///     ConfigDelta::MinObservedSize(Some(32)),
/// ]);
/// assert_eq!(cfg.init_overhead, 8);
/// assert_eq!(cfg.min_observed_size, Some(32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigDelta {
    /// Set the thread-unit count.
    ThreadUnits(usize),
    /// Set the live-in value predictor.
    ValuePredictor(ValuePredictorKind),
    /// Set the value-predictor storage budget, in bytes.
    PredictorBudget(usize),
    /// Set the thread-initialisation overhead, in cycles.
    InitOverhead(u64),
    /// Set the inter-unit forward latency, in cycles.
    ForwardLatency(u64),
    /// Set (or clear) the dynamic pair-removal policy.
    Removal(Option<RemovalPolicy>),
    /// Enable or disable the reassign policy.
    Reassign(bool),
    /// Set (or clear) the minimum observed thread size.
    MinObservedSize(Option<u32>),
    /// Enable or disable event/metrics observation.
    Observe(bool),
}

impl ConfigDelta {
    /// Applies this delta to `config` in place.
    pub fn apply(&self, config: &mut SimConfig) {
        match *self {
            ConfigDelta::ThreadUnits(n) => config.thread_units = n,
            ConfigDelta::ValuePredictor(kind) => config.value_predictor = kind,
            ConfigDelta::PredictorBudget(bytes) => config.predictor_budget = bytes,
            ConfigDelta::InitOverhead(cycles) => config.init_overhead = cycles,
            ConfigDelta::ForwardLatency(cycles) => config.forward_latency = cycles,
            ConfigDelta::Removal(policy) => config.removal = policy,
            ConfigDelta::Reassign(on) => config.reassign = on,
            ConfigDelta::MinObservedSize(size) => config.min_observed_size = size,
            ConfigDelta::Observe(on) => config.observe = on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_1() {
        let c = SimConfig::paper(16);
        assert_eq!(c.thread_units, 16);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.phys_regs, 64);
        assert_eq!(c.gshare_bits, 10);
        assert_eq!(c.cache.size_bytes, 32 * 1024);
        assert_eq!(c.cache.ways, 2);
        assert_eq!(c.cache.block_bytes, 32);
        assert_eq!(c.cache.hit_latency, 3);
        assert_eq!(c.cache.miss_latency, 8);
        assert_eq!(c.cache.mshrs, 4);
        assert_eq!(c.forward_latency, 3);
        assert_eq!(c.predictor_budget, 16 * 1024);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::paper(4)
            .with_value_predictor(ValuePredictorKind::Stride)
            .with_init_overhead(8)
            .with_removal(RemovalPolicy::aggressive());
        assert_eq!(c.value_predictor, ValuePredictorKind::Stride);
        assert_eq!(c.init_overhead, 8);
        assert_eq!(c.removal.unwrap().alone_cycles, 50);
    }

    #[test]
    fn deltas_apply_in_order() {
        let cfg = SimConfig::paper(16).with_deltas(&[
            ConfigDelta::ThreadUnits(4),
            ConfigDelta::ValuePredictor(ValuePredictorKind::Stride),
            ConfigDelta::InitOverhead(8),
            ConfigDelta::InitOverhead(4), // later deltas win
            ConfigDelta::Removal(Some(RemovalPolicy::aggressive())),
            ConfigDelta::Removal(None),
            ConfigDelta::Reassign(true),
            ConfigDelta::ForwardLatency(6),
            ConfigDelta::PredictorBudget(1024),
            ConfigDelta::MinObservedSize(Some(32)),
            ConfigDelta::Observe(true),
        ]);
        assert_eq!(cfg.thread_units, 4);
        assert_eq!(cfg.value_predictor, ValuePredictorKind::Stride);
        assert_eq!(cfg.init_overhead, 4);
        assert_eq!(cfg.removal, None);
        assert!(cfg.reassign);
        assert_eq!(cfg.forward_latency, 6);
        assert_eq!(cfg.predictor_budget, 1024);
        assert_eq!(cfg.min_observed_size, Some(32));
        assert!(cfg.observe);
    }

    #[test]
    fn empty_delta_list_is_identity() {
        let base = SimConfig::paper(16);
        let same = base.clone().with_deltas(&[]);
        assert_eq!(same.thread_units, base.thread_units);
        assert_eq!(same.value_predictor, base.value_predictor);
        assert_eq!(same.init_overhead, base.init_overhead);
    }

    #[test]
    fn zero_units_invalid() {
        let mut c = SimConfig::paper(4);
        c.thread_units = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("thread unit"), "{err}");
    }

    #[test]
    fn bad_fault_plan_fails_validation() {
        let mut c = SimConfig::paper(4);
        c.faults = Some(crate::FaultPlan {
            squash_rate: 3.0,
            ..crate::FaultPlan::default()
        });
        assert!(matches!(
            c.validate(),
            Err(SimError::InvalidFaultPlan { .. })
        ));
    }
}
