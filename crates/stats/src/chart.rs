//! ASCII bar charts for terminal figure rendering.

/// A horizontal ASCII bar chart, used by the figure binaries to echo the
/// paper's bar plots in a terminal.
///
/// # Examples
///
/// ```
/// use specmt_stats::BarChart;
///
/// let mut c = BarChart::new("Speed-up", 40);
/// c.bar("ijpeg", 11.9);
/// c.bar("go", 4.3);
/// let s = c.render();
/// assert!(s.contains("ijpeg"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart with a title and a maximum bar width in characters.
    pub fn new(title: &str, width: usize) -> BarChart {
        BarChart {
            title: title.to_string(),
            width: width.max(1),
            bars: Vec::new(),
        }
    }

    /// Appends one labelled bar.
    ///
    /// Negative values are clamped to zero.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut BarChart {
        self.bars.push((label.to_string(), value.max(0.0)));
        self
    }

    /// Renders the chart; bars are scaled so the maximum value fills the
    /// width.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let max = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let n = ((value / max) * self.width as f64).round() as usize;
            out.push_str(&format!(
                "  {label:<label_w$} {bar:<width$} {value:.2}\n",
                bar = "#".repeat(n),
                width = self.width,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_bar_fills_width() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 5.0).bar("b", 10.0);
        let s = c.render();
        let b_line = s.lines().find(|l| l.trim_start().starts_with('b')).unwrap();
        assert!(b_line.contains(&"#".repeat(10)));
    }

    #[test]
    fn zero_values_render_no_hash() {
        let mut c = BarChart::new("t", 10);
        c.bar("z", 0.0).bar("x", 1.0);
        let s = c.render();
        let z_line = s.lines().find(|l| l.trim_start().starts_with('z')).unwrap();
        assert!(!z_line.contains('#'));
    }

    #[test]
    fn negative_values_are_clamped() {
        let mut c = BarChart::new("t", 10);
        c.bar("n", -3.0).bar("p", 1.0);
        assert!(c.render().contains("0.00"));
    }
}
