//! The means the paper reports.

/// Arithmetic mean; zero for an empty slice.
///
/// The paper uses arithmetic means ("Amean") for counts such as active
/// threads (Figure 4) and thread sizes (Figure 7a).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Harmonic mean; zero for an empty slice.
///
/// The paper uses harmonic means ("Hmean") for speed-ups (Figures 3, 5, 6,
/// 8, 9b, 10b).
///
/// # Panics
///
/// Panics if any value is not strictly positive — a speed-up of zero has no
/// harmonic mean.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let denom: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "harmonic mean requires positive values, got {v}");
            1.0 / v
        })
        .sum();
    values.len() as f64 / denom
}

/// Geometric mean; zero for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_of_constants_are_the_constant() {
        let v = [3.0, 3.0, 3.0];
        assert_eq!(arithmetic_mean(&v), 3.0);
        assert!((harmonic_mean(&v) - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&v) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn classic_inequality_holds() {
        let v = [1.0, 2.0, 4.0, 8.0];
        let a = arithmetic_mean(&v);
        let g = geometric_mean(&v);
        let h = harmonic_mean(&v);
        assert!(h < g && g < a, "h={h} g={g} a={a}");
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn harmonic_mean_known_value() {
        // hmean(1, 2) = 2 / (1 + 1/2) = 4/3
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
    }
}
