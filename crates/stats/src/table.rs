//! Aligned plain-text tables.

/// A simple column-aligned text table for harness output (and for the
/// markdown-ish tables in EXPERIMENTS.md).
///
/// # Examples
///
/// ```
/// use specmt_stats::Table;
///
/// let mut t = Table::new(&["bench", "speedup"]);
/// t.row(&["go", "4.3"]);
/// t.row(&["ijpeg", "12.4"]);
/// let s = t.render();
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule, columns padded to fit.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".%x-+".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>w$}", w = w));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = w));
                }
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            let mut cells = row.clone();
            cells.resize(self.header.len(), String::new());
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1.0"]);
        t.row(&["a-much-longer-name", "12.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width thanks to padding (trailing spaces trimmed
        // only by the numeric right-alignment).
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
    }

    #[test]
    fn markdown_has_header_separator() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1", "2"]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only-one"]);
        let md = t.render_markdown();
        assert!(md.contains("| only-one |  |  |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
