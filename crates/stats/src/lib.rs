//! # specmt-stats
//!
//! Small statistics and presentation helpers for the `specmt` experiment
//! harness: the means the paper reports (harmonic for speed-ups, arithmetic
//! for counts), aligned text tables, and ASCII bar charts that render the
//! paper's figures in a terminal.
//!
//! # Examples
//!
//! ```
//! use specmt_stats::{harmonic_mean, Table};
//!
//! let speedups = [2.0, 4.0];
//! assert!((harmonic_mean(&speedups) - 8.0 / 3.0).abs() < 1e-12);
//!
//! let mut t = Table::new(&["bench", "speedup"]);
//! t.row(&["ijpeg", "11.9"]);
//! assert!(t.render().contains("ijpeg"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod means;
mod table;

pub use chart::BarChart;
pub use means::{arithmetic_mean, geometric_mean, harmonic_mean};
pub use table::Table;
