//! Executor tuning knobs and the deterministic executor-level chaos plan.

use std::time::Duration;

/// Longest single backoff pause the executor will take before a retry.
const BACKOFF_CAP: Duration = Duration::from_millis(200);

/// Tuning knobs for one batch run.
///
/// The default configuration supervises but never degrades on its own: no
/// deadline, no budget, no chaos, and a small retry allowance that only
/// matters once faults are injected (a deterministic cell that panicked
/// once panics on every retry too, so retries are cheap insurance, not a
/// correctness mechanism).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker seats. `0` means one per available CPU.
    pub jobs: usize,
    /// Per-cell watchdog deadline; attempts running longer are abandoned
    /// and the cell is retried or timed out. `None` disables the watchdog
    /// deadline (the batch budget still applies if set).
    pub deadline: Option<Duration>,
    /// Whole-batch budget; when it expires, queued cells are skipped and
    /// running cells are abandoned. `None` means unbounded.
    pub budget: Option<Duration>,
    /// Re-queues allowed per cell after a fault before it degrades.
    pub max_retries: u32,
    /// First retry's backoff pause; attempt `n` waits `base * 2^(n-1)`,
    /// capped at 200 ms. Purely deterministic — no jitter.
    pub backoff_base: Duration,
    /// Executor-level fault injection, for chaos tests. `None` in normal
    /// operation.
    pub chaos: Option<ExecChaosPlan>,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            jobs: 0,
            deadline: None,
            budget: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            chaos: None,
        }
    }
}

impl ExecConfig {
    /// The actual number of worker seats: `jobs`, or the machine's
    /// available parallelism when `jobs` is 0.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// The deterministic pause before the given (1-based) retry attempt:
    /// `backoff_base * 2^(attempt-1)`, capped at 200 ms.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        self.backoff_base.saturating_mul(factor).min(BACKOFF_CAP)
    }
}

/// Executor-level chaos: which (cell, attempt) pairs panic or wedge, and
/// which attempts take their worker down with them.
///
/// Every draw is a pure function of `(seed, cell, attempt)` — never of the
/// worker seat or wall-clock — so a storm unfolds identically at any
/// `--jobs` count and any schedule, mirroring the simulator-level
/// `FaultPlan` discipline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecChaosPlan {
    /// Master seed decorrelating all draws.
    pub seed: u64,
    /// Probability an attempt panics inside the task.
    pub poison_rate: f64,
    /// Probability an attempt wedges (sleeps past any deadline).
    pub wedge_rate: f64,
    /// Probability a finished attempt kills its worker thread on the way
    /// out (the seat is replaced; the attempt's result still lands).
    pub kill_worker_rate: f64,
    /// Cells that panic on *every* attempt — guaranteed retry exhaustion.
    pub poison_cells: Vec<u64>,
    /// Cells that wedge on every attempt — guaranteed deadline exhaustion
    /// when a deadline is set.
    pub wedge_cells: Vec<u64>,
}

serde::impl_serde_struct!(ExecChaosPlan {
    seed,
    poison_rate,
    wedge_rate,
    kill_worker_rate,
    poison_cells,
    wedge_cells,
});

/// One splitmix64 scramble step.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ExecChaosPlan {
    /// A unit-interval draw for one (salt, cell, attempt) triple.
    fn draw(&self, salt: u64, cell: u64, attempt: u32) -> f64 {
        let z = mix(mix(mix(self.seed ^ salt) ^ cell) ^ u64::from(attempt));
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether this attempt of this cell panics.
    pub fn poisons(&self, cell: u64, attempt: u32) -> bool {
        self.poison_cells.contains(&cell)
            || self.draw(0xa5a5_0001, cell, attempt) < self.poison_rate
    }

    /// Whether this attempt of this cell wedges past any deadline.
    pub fn wedges(&self, cell: u64, attempt: u32) -> bool {
        self.wedge_cells.contains(&cell)
            || self.draw(0xa5a5_0002, cell, attempt) < self.wedge_rate
    }

    /// Whether the worker that ran this attempt dies after resolving it.
    /// Keyed on the attempt, not the seat, so the kill schedule is
    /// independent of which worker happened to pick the cell up.
    pub fn kills_worker(&self, cell: u64, attempt: u32) -> bool {
        self.draw(0xa5a5_0003, cell, attempt) < self.kill_worker_rate
    }

    /// Whether the plan can do anything at all.
    pub fn is_active(&self) -> bool {
        self.poison_rate > 0.0
            || self.wedge_rate > 0.0
            || self.kill_worker_rate > 0.0
            || !self.poison_cells.is_empty()
            || !self.wedge_cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ExecConfig { backoff_base: Duration::from_millis(10), ..ExecConfig::default() };
        assert_eq!(cfg.backoff(0), Duration::ZERO);
        assert_eq!(cfg.backoff(1), Duration::from_millis(10));
        assert_eq!(cfg.backoff(2), Duration::from_millis(20));
        assert_eq!(cfg.backoff(3), Duration::from_millis(40));
        assert_eq!(cfg.backoff(10), Duration::from_millis(200));
        assert_eq!(cfg.backoff(u32::MAX), Duration::from_millis(200));
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(ExecConfig { jobs: 0, ..ExecConfig::default() }.effective_jobs() >= 1);
        assert_eq!(ExecConfig { jobs: 3, ..ExecConfig::default() }.effective_jobs(), 3);
    }

    #[test]
    fn draws_are_deterministic_and_decorrelated() {
        let plan = ExecChaosPlan {
            seed: 7,
            poison_rate: 0.5,
            wedge_rate: 0.5,
            kill_worker_rate: 0.5,
            ..ExecChaosPlan::default()
        };
        for cell in 0..64u64 {
            for attempt in 0..4u32 {
                assert_eq!(plan.poisons(cell, attempt), plan.poisons(cell, attempt));
            }
        }
        // At rate 0.5 over 256 draws, poison and wedge decisions must not be
        // the mirror of each other (distinct salts decorrelate them).
        let agree = (0..256u64)
            .filter(|&c| plan.poisons(c, 0) == plan.wedges(c, 0))
            .count();
        assert!(agree > 64 && agree < 192, "poison/wedge draws correlated: {agree}/256");
    }

    #[test]
    fn pinned_cells_always_fault() {
        let plan = ExecChaosPlan {
            poison_cells: vec![3],
            wedge_cells: vec![5],
            ..ExecChaosPlan::default()
        };
        for attempt in 0..8 {
            assert!(plan.poisons(3, attempt));
            assert!(plan.wedges(5, attempt));
        }
        assert!(!plan.poisons(4, 0));
        assert!(!plan.wedges(4, 0));
        assert!(plan.is_active());
        assert!(!ExecChaosPlan::default().is_active());
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = ExecChaosPlan {
            seed: 99,
            poison_rate: 0.25,
            wedge_rate: 0.1,
            kill_worker_rate: 0.05,
            poison_cells: vec![1, 2],
            wedge_cells: vec![7],
        };
        let s = serde_json::to_string(&plan).expect("serialize");
        let back: ExecChaosPlan = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(plan, back);
    }
}
