//! The supervised batch executor: a bounded work-stealing pool with
//! per-attempt panic isolation, a watchdog thread enforcing per-cell
//! deadlines and the whole-batch budget, deterministic retries, and
//! graceful degradation into a [`BatchReport`].
//!
//! # Determinism
//!
//! Tasks are pure closures over shared immutable artifacts and every
//! value lands in its cell's slot by index, so batch *results* are
//! bit-identical at any `jobs` count and under any steal schedule. Only
//! wall-clock-dependent facts (which seat ran what, how long the batch
//! took) vary between runs.
//!
//! # Supervision model
//!
//! Each cell's slot carries a tiny state machine (`Queued` → `Running` →
//! `Resolved`) behind a mutex. Whoever locks the slot first — the worker
//! finishing the attempt, or the watchdog declaring it over-deadline —
//! claims the transition; the loser observes the state changed and
//! discards its side silently. Rust threads cannot be killed, so a
//! wedged worker is *abandoned*: its seat's abandon flag is set, a
//! replacement worker is spawned on the same seat, and the stuck thread
//! is left detached to finish (or sleep) harmlessly — it can no longer
//! resolve anything.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

use specmt_obs::{TaskEvent, TaskFault, TaskLog};

use crate::config::ExecConfig;
use crate::report::{
    BatchReport, BatchStatus, CellOutcome, CellReport, SkipReason, TaskError, TaskErrorKind,
};

/// Thread-name prefix for pool workers; the quiet panic hook keys on it.
const WORKER_PREFIX: &str = "specmt-exec-w";

/// One unit of batch work: a label for reports plus a re-runnable
/// closure. `Fn` (not `FnOnce`) because a faulted attempt must be
/// re-executable from scratch on retry.
pub struct Task<T> {
    label: String,
    run: Arc<dyn Fn() -> T + Send + Sync>,
}

impl<T> Task<T> {
    /// A task from its report label and closure.
    pub fn new(label: impl Into<String>, run: impl Fn() -> T + Send + Sync + 'static) -> Task<T> {
        Task { label: label.into(), run: Arc::new(run) }
    }

    /// The task's report label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("label", &self.label).finish_non_exhaustive()
    }
}

/// What a batch run hands back: one value slot per cell (in submission
/// order, `None` where the cell degraded) plus the full [`BatchReport`].
pub struct BatchResult<T> {
    /// Per-cell values; `values[i]` is `Some` iff `report.cells[i]`
    /// completed.
    pub values: Vec<Option<T>>,
    /// The per-cell outcome record.
    pub report: BatchReport,
}

impl<T> std::fmt::Debug for BatchResult<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchResult")
            .field("values", &format_args!("[{} cells]", self.values.len()))
            .field("report", &self.report)
            .finish()
    }
}

/// The executor: owns a configuration and an optional task-event log,
/// and runs batches with [`Executor::run_batch`]. Stateless between
/// batches — the pool is built per batch and torn down with it.
#[derive(Debug, Default)]
pub struct Executor {
    cfg: ExecConfig,
    log: Option<Arc<TaskLog>>,
}

impl Executor {
    /// An executor with the given configuration and no event log.
    pub fn new(cfg: ExecConfig) -> Executor {
        Executor { cfg, log: None }
    }

    /// Attach a task-event log; every lifecycle event of subsequent
    /// batches is recorded into it.
    pub fn with_log(mut self, log: Arc<TaskLog>) -> Executor {
        self.log = Some(log);
        self
    }

    /// The configuration this executor runs with.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Run one batch to completion (or degradation) and report every
    /// cell's outcome. Never panics on task failure and never aborts the
    /// batch: panicking, wedged, and over-budget cells degrade into
    /// `None` values with their outcome on record.
    pub fn run_batch<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> BatchResult<T> {
        let n = tasks.len();
        let jobs = self.cfg.effective_jobs().min(n).max(1);
        let started = Instant::now();
        if n == 0 {
            return BatchResult {
                values: Vec::new(),
                report: BatchReport {
                    status: BatchStatus::Complete,
                    jobs: jobs as u64,
                    cells: Vec::new(),
                    retries: 0,
                    workers_lost: 0,
                    errors: Vec::new(),
                    elapsed_ms: 0,
                },
            };
        }
        install_quiet_hook();

        let shared = Arc::new(Shared {
            tasks,
            slots: (0..n).map(|_| Slot::new()).collect(),
            seats: (0..jobs).map(|_| Seat::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            resolved: AtomicUsize::new(0),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            budget_hit: AtomicBool::new(false),
            started,
            cfg: self.cfg.clone(),
            log: self.log.clone(),
            errors: Mutex::new(Vec::new()),
            retries: AtomicU64::new(0),
            workers_lost: AtomicU64::new(0),
        });

        for cell in 0..n {
            emit(&shared, TaskEvent::Submitted { cell: cell as u64 });
            shared.seats[cell % jobs]
                .queue
                .lock()
                .expect("seat queue lock")
                .push_back(Attempt { cell, attempt: 0, delay: Duration::ZERO });
        }
        for seat in 0..jobs {
            spawn_worker(&shared, seat);
        }
        let watchdog = if shared.cfg.deadline.is_some() || shared.cfg.budget.is_some() {
            let sh = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("specmt-exec-dog".into())
                    .spawn(move || watchdog(&sh))
                    .expect("spawn watchdog"),
            )
        } else {
            None
        };

        let mut guard = shared.done_mx.lock().expect("done lock");
        while shared.resolved.load(Ordering::Acquire) < n {
            let (g, _) = shared
                .done_cv
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("done wait");
            guard = g;
        }
        drop(guard);
        if let Some(dog) = watchdog {
            dog.join().expect("watchdog never panics");
        }

        let mut values = Vec::with_capacity(n);
        let mut cells = Vec::with_capacity(n);
        let mut degraded = false;
        for (i, slot) in shared.slots.iter().enumerate() {
            let outcome = match &*slot.state.lock().expect("slot state lock") {
                CellState::Resolved { outcome } => outcome.clone(),
                _ => unreachable!("cell {i} unresolved after batch completion"),
            };
            degraded |= outcome.is_degraded();
            values.push(slot.value.lock().expect("slot value lock").take());
            cells.push(CellReport { label: shared.tasks[i].label.clone(), outcome });
        }
        let errors = std::mem::take(&mut *shared.errors.lock().expect("errors lock"));
        BatchResult {
            values,
            report: BatchReport {
                status: if degraded { BatchStatus::Degraded } else { BatchStatus::Complete },
                jobs: jobs as u64,
                cells,
                retries: shared.retries.load(Ordering::Acquire),
                workers_lost: shared.workers_lost.load(Ordering::Acquire),
                errors,
                elapsed_ms: started.elapsed().as_millis() as u64,
            },
        }
    }
}

/// A queued execution of one cell's next attempt. `delay` is the
/// deterministic backoff the claiming worker sleeps before starting.
struct Attempt {
    cell: usize,
    attempt: u32,
    delay: Duration,
}

/// Lifecycle of one cell's slot. Transitions happen under the slot's
/// state mutex, paired with their event emission, so each cell's
/// recorded event order is a valid lifecycle.
enum CellState {
    /// Waiting for the given attempt to be picked up.
    Queued { attempt: u32 },
    /// The given attempt is executing on a seat since an instant.
    Running { attempt: u32, seat: usize, since: Instant },
    /// Terminal.
    Resolved { outcome: CellOutcome },
}

struct Slot<T> {
    state: Mutex<CellState>,
    value: Mutex<Option<T>>,
}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot { state: Mutex::new(CellState::Queued { attempt: 0 }), value: Mutex::new(None) }
    }
}

/// One worker seat: its local deque and the abandon flag of whichever
/// thread currently holds the seat (replaced when the seat is re-staffed).
struct Seat {
    queue: Mutex<VecDeque<Attempt>>,
    abandon: Mutex<Arc<AtomicBool>>,
}

impl Seat {
    fn new() -> Seat {
        Seat {
            queue: Mutex::new(VecDeque::new()),
            abandon: Mutex::new(Arc::new(AtomicBool::new(false))),
        }
    }
}

struct Shared<T> {
    tasks: Vec<Task<T>>,
    slots: Vec<Slot<T>>,
    seats: Vec<Seat>,
    injector: Mutex<VecDeque<Attempt>>,
    resolved: AtomicUsize,
    done_mx: Mutex<()>,
    done_cv: Condvar,
    budget_hit: AtomicBool,
    started: Instant,
    cfg: ExecConfig,
    log: Option<Arc<TaskLog>>,
    errors: Mutex<Vec<TaskError>>,
    retries: AtomicU64,
    workers_lost: AtomicU64,
}

fn emit<T>(shared: &Shared<T>, ev: TaskEvent) {
    if let Some(log) = &shared.log {
        log.push(ev);
    }
}

/// Count one terminal resolution; wake the submitter on the last one.
fn mark_resolved<T>(shared: &Shared<T>) {
    let done = shared.resolved.fetch_add(1, Ordering::AcqRel) + 1;
    if done == shared.slots.len() {
        let _g = shared.done_mx.lock().expect("done lock");
        shared.done_cv.notify_all();
    }
}

/// Install (once per process) a panic hook that silences the default
/// "thread panicked" banner for pool worker threads — their panics are
/// caught at the isolation boundary and reported structurally through
/// `TaskError`, so the banner is pure noise during chaos storms. All
/// other threads keep the previous hook's behaviour.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let from_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !from_worker {
                prev(info);
            }
        }));
    });
}

/// Put a fresh worker thread on a seat, installing its abandon flag.
fn spawn_worker<T: Send + 'static>(shared: &Arc<Shared<T>>, seat: usize) {
    let flag = Arc::new(AtomicBool::new(false));
    *shared.seats[seat].abandon.lock().expect("seat abandon lock") = Arc::clone(&flag);
    let sh = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("{WORKER_PREFIX}{seat}"))
        .spawn(move || worker(&sh, seat, &flag))
        .expect("spawn worker");
}

/// Replace a seat's worker after a loss (deadline abandonment or chaos
/// kill), keeping the pool at full strength.
fn replace_worker<T: Send + 'static>(shared: &Arc<Shared<T>>, seat: usize) {
    shared.workers_lost.fetch_add(1, Ordering::AcqRel);
    emit(shared, TaskEvent::WorkerLost { worker: seat as u32 });
    if shared.resolved.load(Ordering::Acquire) < shared.slots.len() {
        spawn_worker(shared, seat);
    }
}

/// Pop the next attempt: own queue front, then the injector (retries),
/// then steal from siblings' backs.
fn next_attempt<T>(shared: &Shared<T>, seat: usize) -> Option<Attempt> {
    if let Some(a) = shared.seats[seat].queue.lock().expect("seat queue lock").pop_front() {
        return Some(a);
    }
    if let Some(a) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(a);
    }
    let n = shared.seats.len();
    for i in 1..n {
        let victim = (seat + i) % n;
        if let Some(a) = shared.seats[victim].queue.lock().expect("seat queue lock").pop_back() {
            return Some(a);
        }
    }
    None
}

fn worker<T: Send + 'static>(shared: &Arc<Shared<T>>, seat: usize, abandon: &Arc<AtomicBool>) {
    while !abandon.load(Ordering::Acquire)
        && shared.resolved.load(Ordering::Acquire) < shared.slots.len()
    {
        match next_attempt(shared, seat) {
            Some(att) => {
                if run_attempt(shared, seat, abandon, &att) == WorkerFate::Die {
                    return;
                }
            }
            None => std::thread::sleep(Duration::from_micros(200)),
        }
    }
}

#[derive(PartialEq)]
enum WorkerFate {
    Live,
    Die,
}

/// How long a chaos-wedged attempt sleeps: comfortably past any deadline
/// so the watchdog must abandon it.
fn wedge_duration(cfg: &ExecConfig) -> Duration {
    cfg.deadline
        .map_or(Duration::from_millis(50), |d| d * 2 + Duration::from_millis(50))
}

/// Best-effort extraction of a panic payload's message, as captured at a
/// `catch_unwind` boundary (the common `&str` and `String` payloads; a
/// placeholder otherwise).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_attempt<T: Send + 'static>(
    shared: &Arc<Shared<T>>,
    seat: usize,
    abandon: &Arc<AtomicBool>,
    att: &Attempt,
) -> WorkerFate {
    if !att.delay.is_zero() {
        std::thread::sleep(att.delay);
    }
    // Claim the attempt. A slot that moved on (skipped by the budget, or
    // this attempt superseded) is simply not ours to run.
    {
        let mut st = shared.slots[att.cell].state.lock().expect("slot state lock");
        match *st {
            CellState::Queued { attempt } if attempt == att.attempt => {
                if shared.budget_hit.load(Ordering::Acquire) {
                    // Past the batch budget nothing new starts, even if the
                    // watchdog's skip scan hasn't reached this cell yet.
                    *st = CellState::Resolved {
                        outcome: CellOutcome::Skipped { reason: SkipReason::BudgetExhausted },
                    };
                    emit(shared, TaskEvent::Skipped { cell: att.cell as u64 });
                    mark_resolved(shared);
                    return WorkerFate::Live;
                }
                *st = CellState::Running { attempt: att.attempt, seat, since: Instant::now() };
                emit(
                    shared,
                    TaskEvent::Started {
                        cell: att.cell as u64,
                        attempt: att.attempt,
                        worker: seat as u32,
                    },
                );
            }
            _ => return WorkerFate::Live,
        }
    }

    let chaos = shared.cfg.chaos.as_ref().filter(|p| p.is_active());
    // Decide a chaos kill up front and book the loss *before* resolving:
    // the moment the last cell resolves, `run_batch` may assemble the
    // report, and a loss recorded after that is silently dropped.
    let killed = chaos.is_some_and(|p| p.kills_worker(att.cell as u64, att.attempt))
        && !abandon.load(Ordering::Acquire);
    if killed {
        shared.workers_lost.fetch_add(1, Ordering::AcqRel);
        emit(shared, TaskEvent::WorkerLost { worker: seat as u32 });
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = chaos {
            if plan.wedges(att.cell as u64, att.attempt) {
                std::thread::sleep(wedge_duration(&shared.cfg));
            }
            if plan.poisons(att.cell as u64, att.attempt) {
                panic!("chaos: poisoned cell {}", att.cell);
            }
        }
        (shared.tasks[att.cell].run)()
    }));

    // Resolve — but only if the watchdog hasn't claimed the attempt away
    // from us in the meantime.
    let mut requeue = None;
    {
        let mut st = shared.slots[att.cell].state.lock().expect("slot state lock");
        let ours = matches!(
            *st,
            CellState::Running { attempt, seat: s, .. } if attempt == att.attempt && s == seat
        );
        if ours {
            match result {
                Ok(value) => {
                    *shared.slots[att.cell].value.lock().expect("slot value lock") = Some(value);
                    *st = CellState::Resolved {
                        outcome: if att.attempt == 0 {
                            CellOutcome::Ok
                        } else {
                            CellOutcome::Retried { retries: att.attempt }
                        },
                    };
                    emit(
                        shared,
                        TaskEvent::Completed {
                            cell: att.cell as u64,
                            attempt: att.attempt,
                            worker: seat as u32,
                        },
                    );
                    mark_resolved(shared);
                }
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    shared.errors.lock().expect("errors lock").push(TaskError {
                        cell: att.cell as u64,
                        label: shared.tasks[att.cell].label.clone(),
                        attempt: att.attempt,
                        kind: TaskErrorKind::Panicked { message: message.clone() },
                    });
                    emit(
                        shared,
                        TaskEvent::Faulted {
                            cell: att.cell as u64,
                            attempt: att.attempt,
                            worker: seat as u32,
                            fault: TaskFault::Panic,
                        },
                    );
                    requeue = fault_next_step(
                        shared,
                        &mut st,
                        att,
                        TaskFault::Panic,
                        CellOutcome::Panicked { attempts: att.attempt + 1, message },
                    );
                }
            }
        }
    }
    if let Some(a) = requeue {
        shared.injector.lock().expect("injector lock").push_back(a);
    }

    if killed {
        if shared.resolved.load(Ordering::Acquire) < shared.slots.len() {
            spawn_worker(shared, seat);
        }
        return WorkerFate::Die;
    }
    WorkerFate::Live
}

/// After a fault was recorded: either line up the next attempt (within
/// the retry allowance and batch budget) or resolve the cell degraded.
/// Called with the slot's state lock held; returns the attempt to push
/// onto the injector *after* the lock is released (the injector is never
/// locked inside a slot lock).
fn fault_next_step<T>(
    shared: &Shared<T>,
    st: &mut CellState,
    att: &Attempt,
    fault: TaskFault,
    exhausted: CellOutcome,
) -> Option<Attempt> {
    if att.attempt < shared.cfg.max_retries && !shared.budget_hit.load(Ordering::Acquire) {
        shared.retries.fetch_add(1, Ordering::AcqRel);
        emit(shared, TaskEvent::Retried { cell: att.cell as u64, attempt: att.attempt + 1 });
        *st = CellState::Queued { attempt: att.attempt + 1 };
        Some(Attempt {
            cell: att.cell,
            attempt: att.attempt + 1,
            delay: shared.cfg.backoff(att.attempt + 1),
        })
    } else {
        *st = CellState::Resolved { outcome: exhausted };
        emit(
            shared,
            TaskEvent::Exhausted { cell: att.cell as u64, attempts: att.attempt + 1, fault },
        );
        mark_resolved(shared);
        None
    }
}

/// The watchdog: ticks while the batch runs, abandons attempts past the
/// per-cell deadline, and on budget expiry fails running cells and skips
/// queued ones. Only spawned when a deadline or budget is configured.
fn watchdog<T: Send + 'static>(shared: &Arc<Shared<T>>) {
    let n = shared.slots.len();
    while shared.resolved.load(Ordering::Acquire) < n {
        std::thread::sleep(Duration::from_millis(2));
        let now = Instant::now();
        let budget_expired =
            shared.cfg.budget.is_some_and(|b| now.duration_since(shared.started) > b);
        if budget_expired {
            shared.budget_hit.store(true, Ordering::Release);
        }
        for cell in 0..n {
            let mut lost_seat = None;
            let mut requeue = None;
            {
                let mut st = shared.slots[cell].state.lock().expect("slot state lock");
                match *st {
                    CellState::Running { attempt, seat, since } => {
                        let over = shared.cfg.deadline.is_some_and(|d| now.duration_since(since) > d);
                        if over || budget_expired {
                            let deadline_ms = shared
                                .cfg
                                .deadline
                                .or(shared.cfg.budget)
                                .map_or(0, |d| d.as_millis() as u64);
                            shared.errors.lock().expect("errors lock").push(TaskError {
                                cell: cell as u64,
                                label: shared.tasks[cell].label.clone(),
                                attempt,
                                kind: TaskErrorKind::DeadlineExceeded { deadline_ms },
                            });
                            emit(
                                shared,
                                TaskEvent::Faulted {
                                    cell: cell as u64,
                                    attempt,
                                    worker: seat as u32,
                                    fault: TaskFault::Deadline,
                                },
                            );
                            let att = Attempt { cell, attempt, delay: Duration::ZERO };
                            requeue = fault_next_step(
                                shared,
                                &mut st,
                                &att,
                                TaskFault::Deadline,
                                CellOutcome::TimedOut { attempts: attempt + 1 },
                            );
                            lost_seat = Some(seat);
                        }
                    }
                    CellState::Queued { .. } if budget_expired => {
                        *st = CellState::Resolved {
                            outcome: CellOutcome::Skipped { reason: SkipReason::BudgetExhausted },
                        };
                        emit(shared, TaskEvent::Skipped { cell: cell as u64 });
                        mark_resolved(shared);
                    }
                    _ => {}
                }
            }
            if let Some(a) = requeue {
                shared.injector.lock().expect("injector lock").push_back(a);
            }
            if let Some(seat) = lost_seat {
                // The stuck thread can't be killed: flag it abandoned (it
                // will discard its result and exit when it wakes) and
                // re-staff the seat.
                shared.seats[seat]
                    .abandon
                    .lock()
                    .expect("seat abandon lock")
                    .store(true, Ordering::Release);
                replace_worker(shared, seat);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecChaosPlan;
    use specmt_obs::audit_batch;

    fn verify_log(log: &TaskLog, report: &BatchReport) {
        let audit = audit_batch(&log.events()).expect("stream well-formed");
        audit.verify(&report.totals()).expect("conservation laws hold");
    }

    fn square_tasks(n: usize) -> Vec<Task<u64>> {
        (0..n).map(|i| Task::new(format!("cell-{i}"), move || (i as u64) * (i as u64))).collect()
    }

    #[test]
    fn clean_batch_completes_with_values_in_order() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig { jobs: 4, ..ExecConfig::default() })
            .with_log(Arc::clone(&log));
        let out = exec.run_batch(square_tasks(16));
        assert_eq!(out.report.status, BatchStatus::Complete);
        assert_eq!(out.report.jobs, 4);
        assert!(out.report.errors.is_empty());
        for (i, v) in out.values.iter().enumerate() {
            assert_eq!(*v, Some((i as u64) * (i as u64)));
        }
        assert_eq!(out.report.cells[3].label, "cell-3");
        assert_eq!(out.report.cells[3].outcome, CellOutcome::Ok);
        verify_log(&log, &out.report);
    }

    #[test]
    fn empty_batch_is_complete() {
        let out = Executor::default().run_batch(Vec::<Task<u8>>::new());
        assert!(out.values.is_empty());
        assert_eq!(out.report.status, BatchStatus::Complete);
    }

    #[test]
    fn first_attempt_panic_is_retried_to_success() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 2,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let mut tasks = square_tasks(3);
        tasks.push(Task::new("flaky", move || {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt dies");
            }
            99u64
        }));
        let out = exec.run_batch(tasks);
        assert_eq!(out.report.status, BatchStatus::Complete);
        assert_eq!(out.values[3], Some(99));
        assert_eq!(out.report.cells[3].outcome, CellOutcome::Retried { retries: 1 });
        assert_eq!(out.report.retries, 1);
        assert_eq!(out.report.errors.len(), 1);
        assert!(matches!(out.report.errors[0].kind, TaskErrorKind::Panicked { .. }));
        verify_log(&log, &out.report);
    }

    #[test]
    fn poisoned_cell_exhausts_retries_and_degrades() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 2,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ExecChaosPlan { poison_cells: vec![1], ..ExecChaosPlan::default() }),
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let out = exec.run_batch(square_tasks(4));
        assert_eq!(out.report.status, BatchStatus::Degraded);
        assert_eq!(out.values[1], None);
        assert!(matches!(
            out.report.cells[1].outcome,
            CellOutcome::Panicked { attempts: 3, .. }
        ));
        assert_eq!(out.report.retries, 2);
        assert_eq!(out.values[0], Some(0));
        assert_eq!(out.values[2], Some(4));
        verify_log(&log, &out.report);
    }

    #[test]
    fn wedged_cell_times_out_and_pool_survives() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 2,
            deadline: Some(Duration::from_millis(30)),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ExecChaosPlan { wedge_cells: vec![0], ..ExecChaosPlan::default() }),
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let out = exec.run_batch(square_tasks(6));
        assert_eq!(out.report.status, BatchStatus::Degraded);
        assert_eq!(out.values[0], None);
        assert_eq!(out.report.cells[0].outcome, CellOutcome::TimedOut { attempts: 2 });
        assert!(out.report.workers_lost >= 2, "each abandoned attempt loses a worker");
        for i in 1..6 {
            assert_eq!(out.values[i], Some((i as u64) * (i as u64)));
        }
        verify_log(&log, &out.report);
    }

    #[test]
    fn budget_expiry_skips_queued_cells() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 1,
            budget: Some(Duration::from_millis(40)),
            max_retries: 0,
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let mut tasks = vec![Task::new("slow", || {
            std::thread::sleep(Duration::from_millis(400));
            0u64
        })];
        tasks.extend(square_tasks(5));
        let out = exec.run_batch(tasks);
        assert_eq!(out.report.status, BatchStatus::Degraded);
        assert!(matches!(out.report.cells[0].outcome, CellOutcome::TimedOut { .. }));
        let skipped = out
            .report
            .cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Skipped { .. }))
            .count();
        assert!(skipped >= 1, "budget expiry must skip still-queued cells");
        let t = out.report.totals();
        assert_eq!(t.completed + t.timed_out + t.panicked + t.skipped, t.submitted);
        verify_log(&log, &out.report);
    }

    #[test]
    fn killed_workers_are_replaced_and_batch_completes() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 3,
            chaos: Some(ExecChaosPlan { kill_worker_rate: 1.0, ..ExecChaosPlan::default() }),
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let out = exec.run_batch(square_tasks(12));
        assert_eq!(out.report.status, BatchStatus::Complete);
        assert_eq!(out.report.workers_lost, 12, "every attempt kills its worker");
        for (i, v) in out.values.iter().enumerate() {
            assert_eq!(*v, Some((i as u64) * (i as u64)));
        }
        verify_log(&log, &out.report);
    }

    #[test]
    fn values_are_identical_at_any_parallelism() {
        let run = |jobs| {
            Executor::new(ExecConfig { jobs, ..ExecConfig::default() })
                .run_batch(square_tasks(32))
                .values
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn chaos_storm_never_escapes_the_pool() {
        let log = Arc::new(TaskLog::new());
        let exec = Executor::new(ExecConfig {
            jobs: 4,
            deadline: Some(Duration::from_millis(40)),
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ExecChaosPlan {
                seed: 0xC0FFEE,
                poison_rate: 0.3,
                wedge_rate: 0.1,
                kill_worker_rate: 0.2,
                ..ExecChaosPlan::default()
            }),
            ..ExecConfig::default()
        })
        .with_log(Arc::clone(&log));
        let out = exec.run_batch(square_tasks(24));
        // Whatever the storm did, the batch returned with a full account.
        assert_eq!(out.report.cells.len(), 24);
        for (i, v) in out.values.iter().enumerate() {
            if out.report.cells[i].outcome.is_ok() {
                assert_eq!(*v, Some((i as u64) * (i as u64)));
            } else {
                assert_eq!(*v, None);
            }
        }
        verify_log(&log, &out.report);
    }
}
