//! Structured outcomes: per-cell results, task errors, and the batch
//! report callers always get back — degraded, never aborted.

use specmt_obs::BatchTotals;

/// Why a cell was skipped without ever being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipReason {
    /// The whole-batch budget expired while the cell was still queued.
    BudgetExhausted,
}

serde::impl_serde_enum!(SkipReason { BudgetExhausted });

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::BudgetExhausted => write!(f, "batch budget exhausted"),
        }
    }
}

/// The terminal outcome of one batch cell.
///
/// The first two variants carry a value in the batch result; the last
/// three are degradations — the cell's slot is `None` but the batch still
/// returns, with the outcome on record.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Succeeded on the first attempt.
    Ok,
    /// Succeeded after the given number of retries.
    Retried {
        /// Retries consumed before the successful attempt.
        retries: u32,
    },
    /// Every attempt overran the watchdog deadline (or the batch budget
    /// expired mid-attempt).
    TimedOut {
        /// Total attempts made.
        attempts: u32,
    },
    /// Every retry was consumed and the final attempt panicked.
    Panicked {
        /// Total attempts made.
        attempts: u32,
        /// The final panic's message.
        message: String,
    },
    /// Never attempted.
    Skipped {
        /// Why the cell was passed over.
        reason: SkipReason,
    },
}

serde::impl_serde_enum!(CellOutcome {
    Ok,
    Retried { retries },
    TimedOut { attempts },
    Panicked { attempts, message },
    Skipped { reason },
});

impl CellOutcome {
    /// Whether the cell produced a value (first try or after retries).
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok | CellOutcome::Retried { .. })
    }

    /// Whether the cell degraded (no value).
    pub fn is_degraded(&self) -> bool {
        !self.is_ok()
    }
}

impl std::fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellOutcome::Ok => write!(f, "ok"),
            CellOutcome::Retried { retries } => write!(f, "ok after {retries} retries"),
            CellOutcome::TimedOut { attempts } => {
                write!(f, "timed out ({attempts} attempts)")
            }
            CellOutcome::Panicked { attempts, message } => {
                write!(f, "panicked ({attempts} attempts): {message}")
            }
            CellOutcome::Skipped { reason } => write!(f, "skipped: {reason}"),
        }
    }
}

/// What one failed attempt did.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskErrorKind {
    /// The attempt panicked; the payload's message was captured at the
    /// `catch_unwind` isolation boundary.
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The attempt overran the per-cell watchdog deadline.
    DeadlineExceeded {
        /// The deadline that was missed, in milliseconds.
        deadline_ms: u64,
    },
}

serde::impl_serde_enum!(TaskErrorKind {
    Panicked { message },
    DeadlineExceeded { deadline_ms },
});

/// A structured record of one failed attempt (retried-over failures
/// included), as collected in [`BatchReport::errors`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskError {
    /// Batch index of the cell.
    pub cell: u64,
    /// The cell's label.
    pub label: String,
    /// 0-based attempt number that failed.
    pub attempt: u32,
    /// How it failed.
    pub kind: TaskErrorKind,
}

serde::impl_serde_struct!(TaskError {
    cell,
    label,
    attempt,
    kind,
});

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} `{}` attempt {}: ", self.cell, self.label, self.attempt)?;
        match &self.kind {
            TaskErrorKind::Panicked { message } => write!(f, "panicked: {message}"),
            TaskErrorKind::DeadlineExceeded { deadline_ms } => {
                write!(f, "exceeded the {deadline_ms} ms deadline")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Whether every cell of a batch completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every cell produced a value.
    Complete,
    /// At least one cell timed out, panicked out, or was skipped; the
    /// batch still returned with partial results.
    Degraded,
}

serde::impl_serde_enum!(BatchStatus { Complete, Degraded });

/// One cell's entry in the [`BatchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The task's label.
    pub label: String,
    /// How the cell ended.
    pub outcome: CellOutcome,
}

serde::impl_serde_struct!(CellReport { label, outcome });

/// The executor's account of one batch: a per-cell outcome for every
/// submitted task — callers always get partial results plus this record
/// instead of an abort.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// [`BatchStatus::Degraded`] iff any cell failed to produce a value.
    pub status: BatchStatus,
    /// Worker seats the batch ran on.
    pub jobs: u64,
    /// One entry per submitted cell, in submission order.
    pub cells: Vec<CellReport>,
    /// Total re-queues across the batch (including cells that degraded
    /// anyway).
    pub retries: u64,
    /// Worker threads lost (abandoned past a deadline or killed by chaos)
    /// and replaced.
    pub workers_lost: u64,
    /// Every failed attempt, in resolution order.
    pub errors: Vec<TaskError>,
    /// Wall-clock duration of the batch, in milliseconds.
    pub elapsed_ms: u64,
}

serde::impl_serde_struct!(BatchReport {
    status,
    jobs,
    cells,
    retries,
    workers_lost,
    errors,
    elapsed_ms,
});

impl BatchReport {
    /// Cells that produced a value.
    pub fn completed(&self) -> u64 {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count() as u64
    }

    /// Cells that degraded.
    pub fn degraded(&self) -> u64 {
        self.cells.len() as u64 - self.completed()
    }

    /// Whether any cell degraded.
    pub fn is_degraded(&self) -> bool {
        self.status == BatchStatus::Degraded
    }

    /// The first degraded cell, if any — the structured error a caller
    /// that needs a *complete* batch reports instead of unwinding.
    pub fn first_degraded(&self) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.outcome.is_degraded())
    }

    /// The totals the task-event conservation auditor
    /// ([`specmt_obs::audit_batch`]) must reproduce from the event stream
    /// alone.
    pub fn totals(&self) -> BatchTotals {
        let mut t = BatchTotals {
            submitted: self.cells.len() as u64,
            retries: self.retries,
            ..BatchTotals::default()
        };
        for c in &self.cells {
            match c.outcome {
                CellOutcome::Ok | CellOutcome::Retried { .. } => t.completed += 1,
                CellOutcome::TimedOut { .. } => t.timed_out += 1,
                CellOutcome::Panicked { .. } => t.panicked += 1,
                CellOutcome::Skipped { .. } => t.skipped += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BatchReport {
        BatchReport {
            status: BatchStatus::Degraded,
            jobs: 4,
            cells: vec![
                CellReport { label: "a".into(), outcome: CellOutcome::Ok },
                CellReport {
                    label: "b".into(),
                    outcome: CellOutcome::Retried { retries: 2 },
                },
                CellReport {
                    label: "c".into(),
                    outcome: CellOutcome::TimedOut { attempts: 3 },
                },
                CellReport {
                    label: "d".into(),
                    outcome: CellOutcome::Panicked { attempts: 1, message: "boom".into() },
                },
                CellReport {
                    label: "e".into(),
                    outcome: CellOutcome::Skipped { reason: SkipReason::BudgetExhausted },
                },
            ],
            retries: 4,
            workers_lost: 2,
            errors: vec![
                TaskError {
                    cell: 3,
                    label: "d".into(),
                    attempt: 0,
                    kind: TaskErrorKind::Panicked { message: "boom".into() },
                },
                TaskError {
                    cell: 2,
                    label: "c".into(),
                    attempt: 2,
                    kind: TaskErrorKind::DeadlineExceeded { deadline_ms: 50 },
                },
            ],
            elapsed_ms: 123,
        }
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = sample_report();
        let s = serde_json::to_string(&report).expect("serialize");
        let back: BatchReport = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(report, back);
    }

    #[test]
    fn totals_partition_the_batch() {
        let report = sample_report();
        let t = report.totals();
        assert_eq!(t.submitted, 5);
        assert_eq!(t.completed, 2);
        assert_eq!(t.timed_out, 1);
        assert_eq!(t.panicked, 1);
        assert_eq!(t.skipped, 1);
        assert_eq!(t.completed + t.timed_out + t.panicked + t.skipped, t.submitted);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.degraded(), 3);
        assert_eq!(report.first_degraded().map(|c| c.label.as_str()), Some("c"));
    }

    #[test]
    fn outcomes_classify() {
        assert!(CellOutcome::Ok.is_ok());
        assert!(CellOutcome::Retried { retries: 1 }.is_ok());
        assert!(CellOutcome::TimedOut { attempts: 1 }.is_degraded());
        assert!(
            CellOutcome::Panicked { attempts: 1, message: String::new() }.is_degraded()
        );
        assert!(
            CellOutcome::Skipped { reason: SkipReason::BudgetExhausted }.is_degraded()
        );
    }

    #[test]
    fn errors_render_their_kind() {
        let report = sample_report();
        let shown: Vec<String> = report.errors.iter().map(|e| e.to_string()).collect();
        assert!(shown[0].contains("panicked: boom"));
        assert!(shown[1].contains("50 ms deadline"));
    }
}
