//! # specmt-exec
//!
//! Supervised batch executor for parallel simulation sweeps.
//!
//! The harness runs experiment grids of hundreds of (workload × scheme ×
//! config) cells. Each cell is pure — a deterministic simulation over
//! `Arc`'d immutable artifacts — but a single panicking or wedged cell
//! must not take the whole sweep down. This crate supplies the
//! robustness layer between "a grid of closures" and "a vector of
//! results":
//!
//! * [`Executor`] — a bounded work-stealing pool ([`ExecConfig::jobs`]
//!   seats, per-seat deques plus a shared injector for retries) running
//!   one [`Task`] per cell.
//! * **Panic isolation** — every attempt runs inside `catch_unwind`; a
//!   panic becomes a structured [`TaskError`], never an abort.
//! * **Deadlines** — a watchdog thread abandons attempts that overrun
//!   the per-cell [`ExecConfig::deadline`] and enforces the whole-batch
//!   [`ExecConfig::budget`] (expiry skips still-queued cells). Abandoned
//!   worker threads are replaced; the pool never shrinks.
//! * **Deterministic retries** — faulted cells are re-queued up to
//!   [`ExecConfig::max_retries`] times with exponential backoff and no
//!   jitter; because cells are pure, a retry reproduces the original
//!   attempt's value bit-for-bit.
//! * **Graceful degradation** — [`Executor::run_batch`] always returns:
//!   a [`BatchResult`] with per-cell values (`None` where degraded) and
//!   a [`BatchReport`] recording every cell's [`CellOutcome`].
//! * **Chaos** — [`ExecChaosPlan`] injects executor-level faults
//!   (poisoned cells, wedged tasks, killed workers) as pure functions of
//!   `(seed, cell, attempt)`, mirroring the simulator's `FaultPlan`
//!   discipline, for the storm tests in `tests/chaos_faults.rs`.
//! * **Auditability** — with a [`TaskLog`](specmt_obs::TaskLog)
//!   attached, every lifecycle event streams through `specmt-obs`, and
//!   `specmt_obs::audit_batch` can verify that completed + retried +
//!   degraded cells exactly partition the submitted batch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod executor;
mod report;

pub use config::{ExecChaosPlan, ExecConfig};
pub use executor::{panic_message, BatchResult, Executor, Task};
pub use report::{
    BatchReport, BatchStatus, CellOutcome, CellReport, SkipReason, TaskError, TaskErrorKind,
};
