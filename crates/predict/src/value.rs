//! Thread live-in value predictors.

use std::fmt;

/// Identifies one predicted live-in value, exactly as the paper indexes its
/// 16 KB tables: "prediction tables are indexed by hashing 3 values, the
/// program counter of both the spawning point and the control
/// quasi-independent point and the identifier of the register being
/// predicted" (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredKey {
    /// Program counter of the spawning point.
    pub sp_pc: u32,
    /// Program counter of the control quasi-independent point.
    pub cqip_pc: u32,
    /// Architectural register index of the live-in.
    pub reg: u8,
}

impl PredKey {
    /// Mixes the three components with a murmur-style finalizer.
    ///
    /// The double multiply-xorshift matters: a single multiply only
    /// propagates bit differences upward, so components packed into high
    /// bits would never reach the low bits that index prediction tables.
    #[inline]
    pub fn hash64(self) -> u64 {
        let mut x = (self.sp_pc as u64) ^ ((self.cqip_pc as u64) << 20) ^ ((self.reg as u64) << 40);
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }
}

/// A trainable predictor for thread live-in register values.
///
/// Implementations are deterministic: the same sequence of
/// [`predict`](ValuePredictor::predict)/[`train`](ValuePredictor::train)
/// calls produces the same predictions.
pub trait ValuePredictor: fmt::Debug {
    /// Predicts the next value for `key`.
    fn predict(&mut self, key: PredKey) -> u64;
    /// Trains the predictor with the actual observed value.
    fn train(&mut self, key: PredKey, actual: u64);
    /// A short human-readable name.
    fn name(&self) -> &'static str;
}

/// Which value predictor (or idealisation) a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValuePredictorKind {
    /// Oracle: every live-in is predicted correctly (the paper's baseline
    /// idealisation).
    Perfect,
    /// Predict the last observed value (Dynamic Multithreaded Processor
    /// style).
    LastValue,
    /// Last value plus learned stride — the paper's best realistic
    /// predictor.
    Stride,
    /// Order-2 finite context method (context-based) predictor.
    Fcm,
    /// Tournament hybrid of stride and FCM with a per-key chooser — the
    /// natural next step the paper's value-prediction study (its reference 14) points
    /// to; kept as an ablation beyond the paper.
    Hybrid,
    /// No prediction: every live-in waits for its producer.
    None,
}

impl ValuePredictorKind {
    /// Instantiates the predictor with the given storage budget, or `None`
    /// for the [`Perfect`](ValuePredictorKind::Perfect) /
    /// [`None`](ValuePredictorKind::None) modes, which need no table.
    pub fn build(self, budget_bytes: usize) -> Option<Box<dyn ValuePredictor>> {
        match self {
            ValuePredictorKind::Perfect | ValuePredictorKind::None => None,
            ValuePredictorKind::LastValue => {
                Some(Box::new(LastValuePredictor::with_budget(budget_bytes)))
            }
            ValuePredictorKind::Stride => {
                Some(Box::new(StridePredictor::with_budget(budget_bytes)))
            }
            ValuePredictorKind::Fcm => Some(Box::new(FcmPredictor::with_budget(budget_bytes))),
            ValuePredictorKind::Hybrid => {
                Some(Box::new(HybridPredictor::with_budget(budget_bytes)))
            }
        }
    }
}

impl fmt::Display for ValuePredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValuePredictorKind::Perfect => "perfect",
            ValuePredictorKind::LastValue => "last-value",
            ValuePredictorKind::Stride => "stride",
            ValuePredictorKind::Fcm => "context (FCM)",
            ValuePredictorKind::Hybrid => "hybrid (stride/FCM)",
            ValuePredictorKind::None => "none",
        };
        f.write_str(s)
    }
}

fn entries_for(budget_bytes: usize, entry_bytes: usize) -> usize {
    (budget_bytes / entry_bytes).next_power_of_two().max(2) / 2 * 2
}

/// Predicts each live-in to repeat its last observed value.
///
/// Direct-mapped, untagged (aliasing is part of the model, as in real
/// hardware tables).
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    table: Vec<u64>,
    mask: u64,
}

impl LastValuePredictor {
    /// Creates a predictor using roughly `budget_bytes` of table storage
    /// (8 bytes per entry, rounded down to a power of two).
    pub fn with_budget(budget_bytes: usize) -> LastValuePredictor {
        let n = entries_for(budget_bytes, 8);
        LastValuePredictor {
            table: vec![0; n],
            mask: n as u64 - 1,
        }
    }

    #[inline]
    fn idx(&self, key: PredKey) -> usize {
        (key.hash64() & self.mask) as usize
    }
}

impl ValuePredictor for LastValuePredictor {
    fn predict(&mut self, key: PredKey) -> u64 {
        self.table[self.idx(key)]
    }

    fn train(&mut self, key: PredKey, actual: u64) {
        let i = self.idx(key);
        self.table[i] = actual;
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last: u64,
    stride: i64,
    confidence: u8,
}

/// The classic two-delta stride predictor ([Gabbay & Mendelson 96],
/// [Sazeides et al. 96]): predicts `last + stride`, replacing the stride
/// only after seeing the same new delta twice.
///
/// Entry size is 16 bytes, so the paper's 16 KB budget yields 1024 entries.
#[derive(Debug, Clone)]
pub struct StridePredictor {
    table: Vec<StrideEntry>,
    mask: u64,
}

impl StridePredictor {
    /// Creates a predictor using roughly `budget_bytes` of table storage.
    pub fn with_budget(budget_bytes: usize) -> StridePredictor {
        let n = entries_for(budget_bytes, 16);
        StridePredictor {
            table: vec![StrideEntry::default(); n],
            mask: n as u64 - 1,
        }
    }

    #[inline]
    fn idx(&self, key: PredKey) -> usize {
        (key.hash64() & self.mask) as usize
    }
}

impl ValuePredictor for StridePredictor {
    fn predict(&mut self, key: PredKey) -> u64 {
        let e = &self.table[self.idx(key)];
        e.last.wrapping_add(e.stride as u64)
    }

    fn train(&mut self, key: PredKey, actual: u64) {
        let i = self.idx(key);
        let e = &mut self.table[i];
        let delta = actual.wrapping_sub(e.last) as i64;
        if delta == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else if e.confidence > 0 {
            e.confidence -= 1;
        } else {
            e.stride = delta;
        }
        e.last = actual;
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

/// An order-2 finite-context-method (FCM) value predictor
/// ([Sazeides & Smith 97]): a first-level table maps the key to a hash of
/// its recent value history; a second-level table maps that context to the
/// predicted value.
///
/// The budget is split evenly between the two levels.
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    /// Level 1: per-key context (folded hash of the last values).
    contexts: Vec<u64>,
    l1_mask: u64,
    /// Level 2: context -> predicted value.
    values: Vec<u64>,
    l2_mask: u64,
}

impl FcmPredictor {
    /// Creates a predictor using roughly `budget_bytes` of table storage.
    pub fn with_budget(budget_bytes: usize) -> FcmPredictor {
        let l1 = entries_for(budget_bytes / 2, 8);
        let l2 = entries_for(budget_bytes / 2, 8);
        FcmPredictor {
            contexts: vec![0; l1],
            l1_mask: l1 as u64 - 1,
            values: vec![0; l2],
            l2_mask: l2 as u64 - 1,
        }
    }

    #[inline]
    fn l1_idx(&self, key: PredKey) -> usize {
        (key.hash64() & self.l1_mask) as usize
    }

    /// Shifts `value` into the order-2 context: the context keeps 32-bit
    /// digests of the last two values, so identical value *pairs* map to
    /// identical contexts (unbounded folding would never revisit one).
    #[inline]
    fn fold(context: u64, value: u64) -> u64 {
        let digest = value.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        (context << 32) | digest
    }

    #[inline]
    fn l2_idx(&self, context: u64) -> usize {
        ((context.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) >> 24) & self.l2_mask) as usize
    }
}

impl ValuePredictor for FcmPredictor {
    fn predict(&mut self, key: PredKey) -> u64 {
        let ctx = self.contexts[self.l1_idx(key)];
        self.values[self.l2_idx(ctx)]
    }

    fn train(&mut self, key: PredKey, actual: u64) {
        let i = self.l1_idx(key);
        let ctx = self.contexts[i];
        let l2 = self.l2_idx(ctx);
        self.values[l2] = actual;
        self.contexts[i] = FcmPredictor::fold(ctx, actual);
    }

    fn name(&self) -> &'static str {
        "fcm"
    }
}

/// A tournament hybrid: a stride and an FCM component share the budget and
/// a table of 2-bit saturating choosers picks which component answers each
/// key, trained towards whichever component was right.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    stride: StridePredictor,
    fcm: FcmPredictor,
    choosers: Vec<u8>,
    mask: u64,
}

impl HybridPredictor {
    /// Creates a hybrid splitting `budget_bytes` between the components
    /// (the chooser table is charged against the budget too).
    pub fn with_budget(budget_bytes: usize) -> HybridPredictor {
        let chooser_budget = budget_bytes / 8;
        let component = (budget_bytes - chooser_budget) / 2;
        let n = entries_for(chooser_budget.max(2), 1);
        HybridPredictor {
            stride: StridePredictor::with_budget(component),
            fcm: FcmPredictor::with_budget(component),
            choosers: vec![2; n], // weakly prefer stride (the paper's best)
            mask: n as u64 - 1,
        }
    }

    #[inline]
    fn chooser_idx(&self, key: PredKey) -> usize {
        (key.hash64() & self.mask) as usize
    }
}

impl ValuePredictor for HybridPredictor {
    fn predict(&mut self, key: PredKey) -> u64 {
        if self.choosers[self.chooser_idx(key)] >= 2 {
            self.stride.predict(key)
        } else {
            self.fcm.predict(key)
        }
    }

    fn train(&mut self, key: PredKey, actual: u64) {
        let s_guess = self.stride.predict(key);
        let f_guess = self.fcm.predict(key);
        let idx = self.chooser_idx(key);
        let c = &mut self.choosers[idx];
        match (s_guess == actual, f_guess == actual) {
            (true, false) => *c = (*c + 1).min(3),
            (false, true) => *c = c.saturating_sub(1),
            _ => {}
        }
        self.stride.train(key, actual);
        self.fcm.train(key, actual);
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> PredKey {
        PredKey {
            sp_pc: n,
            cqip_pc: n.wrapping_mul(7) + 1,
            reg: (n % 32) as u8,
        }
    }

    #[test]
    fn budgets_round_to_powers_of_two() {
        assert_eq!(StridePredictor::with_budget(16 * 1024).table.len(), 1024);
        assert_eq!(LastValuePredictor::with_budget(16 * 1024).table.len(), 2048);
        let f = FcmPredictor::with_budget(16 * 1024);
        assert_eq!(f.contexts.len(), 1024);
        assert_eq!(f.values.len(), 1024);
    }

    #[test]
    fn last_value_repeats() {
        let mut p = LastValuePredictor::with_budget(1024);
        p.train(key(1), 42);
        assert_eq!(p.predict(key(1)), 42);
        p.train(key(1), 43);
        assert_eq!(p.predict(key(1)), 43);
    }

    #[test]
    fn stride_learns_arithmetic_sequences() {
        let mut p = StridePredictor::with_budget(16 * 1024);
        let k = key(9);
        let mut correct = 0;
        for i in 0..20u64 {
            let actual = 1000 + 16 * i;
            if p.predict(k) == actual {
                correct += 1;
            }
            p.train(k, actual);
        }
        // After a two-observation warm-up, every prediction hits.
        assert!(correct >= 17, "stride correct {correct}/20");
    }

    #[test]
    fn stride_with_zero_stride_acts_as_last_value() {
        let mut p = StridePredictor::with_budget(16 * 1024);
        let k = key(2);
        for _ in 0..5 {
            p.train(k, 777);
        }
        assert_eq!(p.predict(k), 777);
    }

    #[test]
    fn stride_two_delta_resists_one_off_jumps() {
        let mut p = StridePredictor::with_budget(16 * 1024);
        let k = key(3);
        for i in 0..10u64 {
            p.train(k, i * 8);
        }
        // One irregular observation must not clobber the learned stride.
        p.train(k, 5_000_000);
        p.train(k, 5_000_008);
        assert_eq!(p.predict(k), 5_000_016);
    }

    #[test]
    fn fcm_learns_repeating_patterns() {
        let mut p = FcmPredictor::with_budget(16 * 1024);
        let k = key(4);
        let pattern = [3u64, 1, 4, 1, 5, 9, 2, 6];
        // Warm up two full periods.
        for _ in 0..2 {
            for &v in &pattern {
                p.train(k, v);
            }
        }
        let mut correct = 0;
        for _ in 0..2 {
            for &v in &pattern {
                if p.predict(k) == v {
                    correct += 1;
                }
                p.train(k, v);
            }
        }
        assert!(correct >= 14, "fcm correct {correct}/16");
    }

    #[test]
    fn fcm_beats_stride_on_non_arithmetic_repeats() {
        let pattern = [10u64, 99, 7, 10, 99, 7];
        let mut fcm = FcmPredictor::with_budget(16 * 1024);
        let mut stride = StridePredictor::with_budget(16 * 1024);
        let k = key(5);
        let mut fcm_ok = 0;
        let mut stride_ok = 0;
        for round in 0..20 {
            for &v in &pattern {
                if round > 2 {
                    if fcm.predict(k) == v {
                        fcm_ok += 1;
                    }
                    if stride.predict(k) == v {
                        stride_ok += 1;
                    }
                }
                fcm.train(k, v);
                stride.train(k, v);
            }
        }
        assert!(fcm_ok > stride_ok, "fcm {fcm_ok} vs stride {stride_ok}");
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let k = PredKey {
            sp_pc: 11,
            cqip_pc: 29,
            reg: 5,
        };
        assert_eq!(k.hash64(), k.hash64());
        // Nearby keys spread across the space.
        let mut lows = std::collections::HashSet::new();
        for sp in 0..64u32 {
            lows.insert(
                PredKey {
                    sp_pc: sp,
                    cqip_pc: 29,
                    reg: 5,
                }
                .hash64()
                    & 1023,
            );
        }
        assert!(lows.len() > 48, "only {} distinct low bits", lows.len());
    }

    #[test]
    fn hybrid_tracks_the_better_component() {
        // Arithmetic stream: stride wins; repeating stream: FCM wins. The
        // hybrid must approach the better component on each.
        let run = |values: &[u64], rounds: usize| -> (u64, u64, u64) {
            let mut s = StridePredictor::with_budget(16 * 1024);
            let mut f = FcmPredictor::with_budget(16 * 1024);
            let mut h = HybridPredictor::with_budget(16 * 1024);
            let k = key(42);
            let (mut sh, mut fh, mut hh) = (0u64, 0u64, 0u64);
            for round in 0..rounds {
                for &v in values {
                    if round > 2 {
                        sh += u64::from(s.predict(k) == v);
                        fh += u64::from(f.predict(k) == v);
                        hh += u64::from(h.predict(k) == v);
                    }
                    s.train(k, v);
                    f.train(k, v);
                    h.train(k, v);
                }
            }
            (sh, fh, hh)
        };
        let arithmetic: Vec<u64> = (0..16).map(|i| 100 + 8 * i).collect();
        let (s1, _, h1) = run(&arithmetic, 8);
        assert!(h1 * 10 >= s1 * 8, "hybrid {h1} far below stride {s1}");
        let repeating = [7u64, 99, 3, 7, 99, 3, 7, 99, 3];
        let (_, f2, h2) = run(&repeating, 8);
        assert!(h2 * 10 >= f2 * 7, "hybrid {h2} far below fcm {f2}");
    }

    #[test]
    fn kind_factory_matches_modes() {
        assert!(ValuePredictorKind::Perfect.build(16 * 1024).is_none());
        assert!(ValuePredictorKind::None.build(16 * 1024).is_none());
        for kind in [
            ValuePredictorKind::LastValue,
            ValuePredictorKind::Stride,
            ValuePredictorKind::Fcm,
            ValuePredictorKind::Hybrid,
        ] {
            let p = kind.build(16 * 1024).expect("table-backed predictor");
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn same_pair_different_registers_do_not_collide() {
        // Regression test: the register is packed into high bits of the
        // pre-hash word; without downward mixing every live-in of a pair
        // lands in the same table slot and predictions become garbage.
        let p = StridePredictor::with_budget(16 * 1024);
        let base = PredKey {
            sp_pc: 5,
            cqip_pc: 5,
            reg: 0,
        };
        let mut slots = std::collections::HashSet::new();
        for reg in 0..32u8 {
            slots.insert(p.idx(PredKey { reg, ..base }));
        }
        assert!(
            slots.len() >= 28,
            "only {} distinct slots for 32 regs",
            slots.len()
        );
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut p = StridePredictor::with_budget(16 * 1024);
        p.train(key(100), 1111);
        p.train(key(200), 2222);
        // Note: collisions are *possible* by design; these two keys happen
        // to map apart with the current hash (regression guard).
        assert_ne!(
            p.idx(key(100)),
            p.idx(key(200)),
            "hash regression: keys collided"
        );
    }
}
