//! # specmt-predict
//!
//! Branch and value predictors for the clustered speculative multithreaded
//! processor model, matching §4.1 and §4.3.1 of the paper:
//!
//! * [`Gshare`] — the per-thread-unit 10-bit gshare branch predictor. The
//!   paper notes predictor tables are *not* reinitialised when a new thread
//!   is assigned to a unit; the simulator keeps one instance per unit
//!   accordingly.
//! * [`SpawnConfidence`] — an 8-bit popcount confidence estimator over a
//!   unit's gshare outcomes, consulted by the adaptive `conf-gated`
//!   spawning scheme to decline spawns from control-unstable regions.
//! * [`ValuePredictor`] implementations for thread live-in values, all
//!   sized to the paper's 16 KB budget and indexed by hashing the spawning
//!   point, the control quasi-independent point and the register being
//!   predicted:
//!   [`StridePredictor`] (the paper's best performer), the context-based
//!   [`FcmPredictor`], and [`LastValuePredictor`] (the Dynamic
//!   Multithreaded Processor's scheme, kept for ablation).
//!
//! Perfect value prediction is a simulator mode, not a predictor — the
//! timing model simply treats every live-in as available (the paper's
//! "perfect value predictor" idealisation).
//!
//! # Examples
//!
//! ```
//! use specmt_predict::{PredKey, StridePredictor, ValuePredictor};
//!
//! let mut p = StridePredictor::with_budget(16 * 1024);
//! let key = PredKey { sp_pc: 10, cqip_pc: 42, reg: 3 };
//! for v in (0..10u64).map(|k| 100 + 8 * k) {
//!     p.train(key, v);
//! }
//! assert_eq!(p.predict(key), 100 + 8 * 10); // learned the stride
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod confidence;
mod gshare;
mod value;

pub use confidence::SpawnConfidence;
pub use gshare::Gshare;
pub use value::{
    FcmPredictor, LastValuePredictor, PredKey, StridePredictor, ValuePredictor, ValuePredictorKind,
};

/// The paper's value-predictor storage budget (16 KB).
pub const PAPER_BUDGET_BYTES: usize = 16 * 1024;
