//! The gshare branch direction predictor.

use specmt_isa::Pc;

/// A gshare branch predictor: a global history register XOR-folded with the
/// branch pc indexes a table of 2-bit saturating counters.
///
/// The paper's thread units use a 10-bit gshare (1024 counters) whose
/// contents persist when a new thread is assigned to the unit.
///
/// # Examples
///
/// ```
/// use specmt_isa::Pc;
/// use specmt_predict::Gshare;
///
/// let mut g = Gshare::new(10);
/// let pc = Pc(7);
/// // Once the all-taken history saturates, the hot counter trains up.
/// for _ in 0..16 {
///     let _ = g.predict(pc);
///     g.update(pc, true);
/// }
/// assert!(g.predict(pc)); // learned always-taken
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    history: u64,
    bits: u32,
    counters: Vec<u8>,
}

impl Gshare {
    /// Creates a predictor with `bits` bits of history and `2^bits`
    /// counters, initialised to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 20.
    pub fn new(bits: u32) -> Gshare {
        assert!((1..=20).contains(&bits), "history bits must be in 1..=20");
        Gshare {
            history: 0,
            bits,
            counters: vec![1; 1 << bits],
        }
    }

    /// The paper's configuration: 10 bits.
    pub fn paper() -> Gshare {
        Gshare::new(10)
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        ((pc.0 as u64 ^ self.history) & ((1 << self.bits) - 1)) as usize
    }

    /// Predicts the direction of the branch at `pc` with the current
    /// history.
    pub fn predict(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Fused [`predict`](Gshare::predict) + [`update`](Gshare::update):
    /// returns the pre-update prediction while computing the table index
    /// only once. Equivalent to calling the two in sequence.
    pub fn predict_update(&mut self, pc: Pc, taken: bool) -> bool {
        let idx = self.index(pc);
        let c = self.counters[idx];
        let pred = c >= 2;
        // Saturating 2-bit update without branching on `taken`: the branch
        // outcome is the one bit the host predictor cannot learn, so a
        // data-dependent compare chain beats an if/else here.
        let inc = u8::from(taken & (c < 3));
        let dec = u8::from(!taken & (c > 0));
        self.counters[idx] = c + inc - dec;
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.bits) - 1);
        pred
    }

    /// Trains on the resolved outcome and shifts it into the history.
    pub fn update(&mut self, pc: Pc, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.bits) - 1);
    }

    /// Number of table entries.
    pub fn table_entries(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_has_1024_entries() {
        assert_eq!(Gshare::paper().table_entries(), 1024);
    }

    #[test]
    fn learns_biased_branches() {
        let mut g = Gshare::paper();
        let pc = Pc(100);
        for _ in 0..20 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
        for _ in 0..20 {
            g.update(pc, false);
        }
        assert!(!g.predict(pc));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::paper();
        let pc = Pc(5);
        // Warm up on a strict alternation; with history in the index, the
        // two phases train distinct counters.
        let mut taken = false;
        for _ in 0..200 {
            g.update(pc, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if g.predict(pc) == taken {
                correct += 1;
            }
            g.update(pc, taken);
            taken = !taken;
        }
        assert!(correct >= 95, "only {correct}/100 correct");
    }

    /// `predict_update` is exactly `predict` followed by `update`.
    #[test]
    fn predict_update_matches_split_calls() {
        let mut fused = Gshare::paper();
        let mut split = Gshare::paper();
        let mut x = 0x1234_5678_u64;
        for _ in 0..500 {
            // xorshift: deterministic pseudo-random pcs and outcomes
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = Pc((x % 997) as u32);
            let taken = x & 1 == 0;
            let a = fused.predict_update(pc, taken);
            let b = split.predict(pc);
            split.update(pc, taken);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_bits_panics() {
        let _ = Gshare::new(0);
    }

    #[test]
    fn initial_prediction_is_not_taken() {
        let g = Gshare::paper();
        assert!(!g.predict(Pc(0)));
        assert!(!g.predict(Pc(12345)));
    }
}
