//! Branch-predictor confidence estimation for spawn gating.

/// A per-thread-unit confidence estimator over the unit's gshare outcomes:
/// an 8-bit shift register of recent prediction correctness, read as a
/// popcount *confidence level* in `0..=8`.
///
/// The adaptive `conf-gated` spawning scheme declines spawn attempts while
/// the spawning unit's level is below its threshold — a unit mispredicting
/// its recent branches is likely somewhere control-unstable, exactly where
/// a speculative spawn is most likely to be a control misspeculation
/// (Durbhakula's branch-prediction optimizations for multithreaded
/// processors).
///
/// The history starts all-ones (fully confident), matching the optimistic
/// reset of resolution counters in confidence-estimation hardware: a unit
/// that has not yet run any branches has no evidence against spawning.
///
/// # Examples
///
/// ```
/// use specmt_predict::SpawnConfidence;
///
/// let mut c = SpawnConfidence::new();
/// assert_eq!(c.level(), SpawnConfidence::MAX_LEVEL);
/// c.record(false);
/// c.record(false);
/// assert_eq!(c.level(), 6);
/// c.record(true);
/// assert_eq!(c.level(), 6); // a correct shift also ages out an old `1`
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnConfidence {
    history: u8,
}

impl SpawnConfidence {
    /// The highest (and initial) confidence level: all 8 tracked branches
    /// predicted correctly.
    pub const MAX_LEVEL: u32 = 8;

    /// A fully-confident estimator.
    pub fn new() -> SpawnConfidence {
        SpawnConfidence { history: u8::MAX }
    }

    /// Shifts one resolved branch into the history.
    #[inline]
    pub fn record(&mut self, correct: bool) {
        self.history = (self.history << 1) | u8::from(correct);
    }

    /// Correct predictions among the last 8 recorded branches.
    #[inline]
    pub fn level(&self) -> u32 {
        self.history.count_ones()
    }
}

impl Default for SpawnConfidence {
    fn default() -> SpawnConfidence {
        SpawnConfidence::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_confident() {
        assert_eq!(SpawnConfidence::new().level(), SpawnConfidence::MAX_LEVEL);
    }

    #[test]
    fn level_tracks_the_window_popcount() {
        let mut c = SpawnConfidence::new();
        for _ in 0..8 {
            c.record(false);
        }
        assert_eq!(c.level(), 0);
        c.record(true);
        assert_eq!(c.level(), 1);
        // Old outcomes age out of the 8-bit window.
        for _ in 0..8 {
            c.record(true);
        }
        assert_eq!(c.level(), SpawnConfidence::MAX_LEVEL);
    }

    #[test]
    fn mixed_history_counts_exactly() {
        let mut c = SpawnConfidence::new();
        for correct in [true, false, true, false, false, true, true, false] {
            c.record(correct);
        }
        assert_eq!(c.level(), 4);
    }
}
